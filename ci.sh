#!/bin/sh
# Local CI: everything must pass before merging.
# `./ci.sh nightly` additionally runs the time-budgeted stress-fuzz
# walk (see the end of this file).
set -eux

# Panic-free policy for the library crates: no `.unwrap(` or `panic!(`
# in non-test code (everything before the first `#[cfg(test)]` block).
# Failures must flow through the `AllocError` taxonomy instead.
# `.expect("documented invariant")` remains allowed.
for f in crates/core/src/*.rs crates/igraph/src/*.rs \
         crates/analysis/src/*.rs crates/ir/src/*.rs \
         crates/serve/src/*.rs; do
    awk '/#\[cfg\(test\)\]/{exit} /\.unwrap\(|panic!\(/{print FILENAME": "FNR": "$0; bad=1} END{exit bad}' "$f" || {
        echo "panic-free gate: forbidden .unwrap()/panic! in library code ($f)" >&2
        exit 1
    }
done

cargo build --release --workspace
cargo test -q
cargo clippy --workspace -- -D warnings

# The adversarial degradation corpus: 200+ seeded hostile programs must
# never panic the pipeline — every allocation either succeeds (possibly
# via recorded ladder degradations) or fails with a structured error,
# and degraded code stays semantics-preserving and sanitizer-clean.
cargo test -q --test degradation

# The evaluation harness must produce a report that passes its own
# structural validation (coverage, checksums, the paper's headline).
# The committed BENCH_EVAL.json is the full sweep (bench bin `eval`);
# CI re-derives a smoke report next to it in target/ and checks both.
./target/release/regbal eval --smoke --out target/BENCH_EVAL_SMOKE.json
./target/release/regbal eval --validate target/BENCH_EVAL_SMOKE.json
./target/release/regbal eval --validate BENCH_EVAL.json

# The smoke documents must cover all five strategies — in particular
# the scratchpad tier (`balanced-scratch`), whose cells `--validate`
# holds to the scratch-accounting rules (scratch_spills <= spills, and
# only scratch-capable strategies may use the spad).
grep -q '"balanced-scratch"' target/BENCH_EVAL_SMOKE.json
grep -q '"scratch_spills"' target/BENCH_EVAL_SMOKE.json

# The same smoke sweep under the register-clobber sanitizer: every
# shipped strategy — the scratchpad tier included — must run with zero
# sanitizer reports (the command exits non-zero on any violation or
# warning; spad slot clobbers are violations), and the instrumented
# document must still validate.
./target/release/regbal eval --smoke --sanitize --out target/BENCH_EVAL_SANITIZE.json
./target/release/regbal eval --validate target/BENCH_EVAL_SANITIZE.json
grep -q '"balanced-scratch"' target/BENCH_EVAL_SANITIZE.json

# Deterministic merge: the sharded, compile-cached sweep must emit the
# same bytes as the serial one — same config and seed, any worker
# count. Smoke reports carry no timing member, so `cmp` is exact.
./target/release/regbal eval --smoke --workers 1 --out target/BENCH_EVAL_W1.json
./target/release/regbal eval --smoke --workers 4 --out target/BENCH_EVAL_W4.json
cmp target/BENCH_EVAL_W1.json target/BENCH_EVAL_W4.json

# Device smoke gate: the 4- and 16-PU device scenarios (command
# processor + ring workers) under the reference slice loop, the serial
# event core and the threaded event core, with the clobber sanitizer on
# the Ladder-compiled runs. The command exits non-zero on any report
# divergence between cores, any digest mismatch, any stalled PU or any
# sanitizer finding.
./target/release/regbal device --smoke --sanitize --out target/BENCH_DEVICE_SMOKE.json

# Serve gate: the resident server must answer a replayed 100-request
# seeded trace with (a) a second pass served entirely from the
# cross-request cache, (b) responses byte-identical to one-shot
# `regbal alloc --json`, (c) zero sanitizer violations when the served
# allocations run on the simulator, and (d) the same response bytes at
# any worker count — over both the replay harness and a real stdio
# pipe. `--verify` fails on any served/one-shot divergence; `replay`
# itself fails if any warm pass misses.
./target/release/regbal serve --gen-trace target/serve_trace.json \
    --requests 100 --lines target/serve_requests.txt
./target/release/regbal serve --replay target/serve_trace.json \
    --passes 2 --workers 1 --verify --sanitize \
    --responses target/serve_responses_w1.txt
./target/release/regbal serve --replay target/serve_trace.json \
    --passes 2 --workers 4 \
    --responses target/serve_responses_w4.txt
cmp target/serve_responses_w1.txt target/serve_responses_w4.txt
cat target/serve_requests.txt target/serve_requests.txt \
    | ./target/release/regbal serve --stdio --workers 1 > target/serve_stdio_w1.txt
cat target/serve_requests.txt target/serve_requests.txt \
    | ./target/release/regbal serve --stdio --workers 4 > target/serve_stdio_w4.txt
cmp target/serve_stdio_w1.txt target/serve_stdio_w4.txt

# Concurrent-connection gate: the trace's kernels are partitioned
# across 3 TCP clients with disjoint content hashes, served at once by
# one shared server; each client's transcript must be byte-identical to
# serving its script alone (the command exits non-zero on the first
# divergent response). The populated --cache-dir then proves the
# restart-warm contract: a second server over the same directory must
# answer its first repeated request with `"cached": true`.
rm -rf target/serve_cache
./target/release/regbal serve --check-concurrent target/serve_trace.json \
    --clients 3 --workers 2 --cache-dir target/serve_cache --metrics

# Chaos gate: the same trace replayed under three distinct seeded fault
# plans — failed/short/unrenamed disk writes, corrupt frames on read,
# reader stalls and mid-line client disconnects. Each run must answer
# every admitted request with the fault-free baseline document, answer
# every torn half-line with an in-band `bad-json` error, and then pass
# both a fault-free healing pass over the surviving cache directory and
# `--verify` against one-shot `regbal alloc --json` (the command exits
# non-zero on any lost request, divergence, panic or deadlock).
n=0
for spec in \
    "seed=101,write_fail=250,write_short=150,read_corrupt=250,disconnect=200" \
    "seed=202,rename_fail=300,read_corrupt=300,disconnect=300" \
    "seed=303,write_fail=400,write_short=200,disconnect=150,reader_stall=100"; do
    n=$((n + 1))
    rm -rf "target/serve_chaos_$n"
    ./target/release/regbal serve --replay target/serve_trace.json \
        --faults "$spec" --cache-dir "target/serve_chaos_$n" --verify
done

# GC gate: the trace replayed twice over a byte-capped on-disk cache.
# The warm pass must still be answered entirely from the resident
# tiers (replay itself fails on any warm miss), and after the run the
# CLI re-counts the directory from the filesystem: it must sit at or
# under the cap, or the command exits non-zero.
rm -rf target/serve_gc
./target/release/regbal serve --replay target/serve_trace.json \
    --passes 2 --cache-dir target/serve_gc --cache-dir-cap 32768

# Nightly: the time-budgeted stress-fuzz walk. Seeded adversarial
# bundles stream through the full ladder contract (no panics, confined
# validated rewrites, preserved semantics, sanitizer-clean, no hangs);
# any failing case is minimized (fewer threads, smaller file, simpler
# class — while the failure still reproduces) and appended to the
# committed regression corpus, which `cargo test` replays forever
# after. The closing --minimize pass keeps the whole corpus minimal:
# on a healthy corpus it is the identity.
if [ "${1:-}" = "nightly" ]; then
    ./target/release/regbal fuzz --seconds "${FUZZ_SECONDS:-300}" \
        --archive tests/fuzz_regressions.txt
    ./target/release/regbal fuzz --minimize tests/fuzz_regressions.txt
fi
