#!/bin/sh
# Local CI: everything must pass before merging.
set -eux

cargo build --release --workspace
cargo test -q
cargo clippy --workspace -- -D warnings

# The evaluation harness must produce a report that passes its own
# structural validation (coverage, checksums, the paper's headline).
# The committed BENCH_EVAL.json is the full sweep (bench bin `eval`);
# CI re-derives a smoke report next to it in target/ and checks both.
./target/release/regbal eval --smoke --out target/BENCH_EVAL_SMOKE.json
./target/release/regbal eval --validate target/BENCH_EVAL_SMOKE.json
./target/release/regbal eval --validate BENCH_EVAL.json

# The same smoke sweep under the register-clobber sanitizer: every
# shipped strategy must run with zero sanitizer reports (the command
# exits non-zero on any violation or warning), and the instrumented
# document must still validate.
./target/release/regbal eval --smoke --sanitize --out target/BENCH_EVAL_SANITIZE.json
./target/release/regbal eval --validate target/BENCH_EVAL_SANITIZE.json
