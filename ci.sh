#!/bin/sh
# Local CI: everything must pass before merging.
set -eux

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
