//! Event-driven chip core vs the reference interleaving, end to end:
//! the serial event core and the threaded event core must reproduce the
//! granularity-1 slice loop's per-PU reports **exactly** — cycles,
//! per-thread statistics, traces and memory — on cross-PU handshakes,
//! CSB-dense benchmark kernels, devices with halted and empty PUs, and
//! at every OS-thread count.

use regbal_ir::{parse_func, Func, MemSpace};
use regbal_sim::device::{ChipCore, PKT_BASE};
use regbal_sim::{Chip, Device, DeviceSpec, RunReport, SimConfig};
use regbal_workloads::{build_worker, expected_total_digest, fill_packets, Kernel, Workload};

/// A producer that bumps a shared SRAM head and a consumer that spins
/// on it — every iteration is a cross-PU store-then-load handshake, so
/// any batch that runs past a store another PU should have seen first
/// diverges immediately.
fn handshake_stages() -> Vec<Func> {
    let rx = parse_func(
        "
func rx {
bb0:
    v0 = mov 512
    v1 = mov 24
    v2 = mov 3
    jump push
push:
    v3 = load sram[v0+0]
    store sram[v3+64], v2
    v3 = add v3, 4
    store sram[v0+0], v3
    v2 = mul v2, 3
    v2 = and v2, 255
    v1 = sub v1, 1
    iter_end
    bne v1, 0, push, done
done:
    halt
}",
    )
    .unwrap();
    let tx = parse_func(
        "
func tx {
bb0:
    v0 = mov 512
    v1 = mov 24
    v2 = mov 0
    jump wait
wait:
    v3 = load sram[v0+0]
    v4 = load sram[v0+4]
    beq v3, v4, wait, pop
pop:
    v5 = load sram[v4+64]
    v2 = add v2, v5
    v4 = add v4, 4
    store sram[v0+4], v4
    store scratch[v0+0], v2
    v1 = sub v1, 1
    iter_end
    bne v1, 0, wait, done
done:
    halt
}",
    )
    .unwrap();
    vec![rx, tx]
}

fn handshake_chip() -> Chip {
    let mut chip = Chip::new(SimConfig::default(), 2);
    chip.memory_mut().write_word(MemSpace::Sram, 512, 512);
    chip.memory_mut().write_word(MemSpace::Sram, 516, 512);
    for (pu, f) in handshake_stages().into_iter().enumerate() {
        chip.add_thread(pu, f);
    }
    chip
}

/// Runs the same chip construction under the reference loop, the serial
/// event core and the threaded core at several thread counts, asserting
/// every run's reports and memory equal the reference's.
fn assert_cores_identical(
    build: impl Fn() -> Chip,
    cycles: u64,
    thread_counts: &[usize],
) -> Vec<RunReport> {
    let mut reference = build();
    let ref_reports = reference.run(cycles, 1);
    let ref_mem = (
        reference.memory().read_bytes(MemSpace::Scratch, 0, 4096),
        reference.memory().read_bytes(MemSpace::Sram, 0, 4096),
    );

    let mut event = build();
    let event_reports = event.run_event(cycles);
    assert_eq!(
        event_reports, ref_reports,
        "serial event core diverged from the reference interleaving"
    );
    assert_eq!(
        event.memory().read_bytes(MemSpace::Scratch, 0, 4096),
        ref_mem.0
    );

    for &threads in thread_counts {
        let mut par = build();
        let par_reports = par.run_event_threads(cycles, threads);
        assert_eq!(
            par_reports, ref_reports,
            "event core at {threads} OS thread(s) diverged from the reference"
        );
        assert_eq!(
            par.memory().read_bytes(MemSpace::Scratch, 0, 4096),
            ref_mem.0,
            "scratch diverged at {threads} OS thread(s)"
        );
        assert_eq!(
            par.memory().read_bytes(MemSpace::Sram, 0, 4096),
            ref_mem.1,
            "sram diverged at {threads} OS thread(s)"
        );
    }
    ref_reports
}

/// Cross-PU store visibility: the flow-controlled handshake forces a
/// batch boundary at every shared store/load pair.
#[test]
fn cross_pu_handshake_is_identical_across_cores() {
    let reports = assert_cores_identical(handshake_chip, 3_000_000, &[1, 4, 8]);
    assert!(reports.iter().all(|r| r.threads.iter().all(|t| t.halted)));
}

/// The handshake under a cycle budget that strands both PUs mid-flight:
/// partial progress must also be identical (batches stop exactly at the
/// budget in every core).
#[test]
fn truncated_run_is_identical_across_cores() {
    for budget in [0, 1, 97, 1_000, 14_401] {
        assert_cores_identical(handshake_chip, budget, &[1, 4, 8]);
    }
}

/// CSB-dense pipelines: benchmark kernels whose main loops context
/// switch every few instructions (`reed` is the suite's CSB-heaviest;
/// `md5` carries bursts; `drr` does read-modify-write chains), four
/// threads per PU across three PUs.
#[test]
fn csb_heavy_kernels_are_identical_across_cores() {
    let build = || {
        let mut chip = Chip::new(SimConfig::default(), 3);
        let mut slot = 0;
        for (pu, kernel) in [Kernel::Reed, Kernel::Md5, Kernel::Drr].into_iter().enumerate() {
            for _ in 0..4 {
                let w = Workload::new(kernel, slot, 6);
                w.prepare(chip.memory_mut(), 1234 + slot as u64);
                chip.add_thread(pu, w.func.clone());
                slot += 1;
            }
        }
        chip
    };
    let reports = assert_cores_identical(build, 4_000_000, &[1, 4, 8]);
    assert!(reports.iter().all(|r| r.threads.iter().all(|t| t.halted)));
}

/// Halted-PU edges: a PU that halts on its first instruction, a PU with
/// no threads at all, and a live spinner must coexist in the heap
/// without the dead PUs disturbing the schedule.
#[test]
fn halted_and_empty_pus_are_identical_across_cores() {
    let build = || {
        let mut chip = Chip::new(SimConfig::default(), 3);
        chip.add_thread(0, parse_func("func dead {\nbb0:\n halt\n}").unwrap());
        // PU 1 left without threads.
        chip.add_thread(
            2,
            parse_func(
                "func spin {\nbb0:\n v0 = mov 64\n jump l\nl:\n v1 = load sram[v0+0]\n v1 = add v1, 1\n store sram[v0+0], v1\n iter_end\n jump l\n}",
            )
            .unwrap(),
        );
        chip
    };
    assert_cores_identical(build, 20_000, &[1, 4, 8]);
}

/// The full device — command processor, 8 worker PUs, 16 rings — is
/// byte-identical across the reference loop and the event cores at
/// 1/4/8 OS threads, and drains every packet to the model digest.
#[test]
fn device_reports_identical_across_os_thread_counts() {
    let spec = DeviceSpec {
        pus: 8,
        threads_per_pu: 2,
        queue_capacity: 4,
        packets: 96,
    };
    let run = |core: ChipCore| {
        let mut device = Device::new(spec);
        fill_packets(device.chip_mut().memory_mut(), PKT_BASE, spec.packets, 11);
        device.add_cp(spec.command_processor());
        for pu in 0..spec.pus {
            for t in 0..spec.threads_per_pu {
                device.add_worker(pu, build_worker(&spec, spec.ring(pu, t)));
            }
        }
        let reports = device.run(core, 10_000_000);
        assert!(device.all_halted(), "device must drain");
        (reports, device.total_digest(), device.total_processed())
    };
    let expected = {
        let mut probe =
            regbal_sim::Memory::new(0, 0, spec.sim_config().sdram_size, 0);
        fill_packets(&mut probe, PKT_BASE, spec.packets, 11);
        expected_total_digest(&probe, spec.packets)
    };

    let reference = run(ChipCore::Reference { granularity: 1 });
    assert_eq!(reference.1, expected, "device digest must match the model");
    assert_eq!(reference.2, u64::from(spec.packets));
    assert_eq!(run(ChipCore::Event), reference);
    for threads in [1, 4, 8] {
        assert_eq!(run(ChipCore::EventThreads { threads }), reference);
    }
}
