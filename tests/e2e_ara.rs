//! End-to-end asymmetric allocation: the paper's mixed-thread
//! scenarios, allocated with the Fig. 8 inter-thread algorithm, must be
//! observationally identical to the reference and register-safe.

mod common;

use common::{run_reference, run_threads};
use regbal_core::allocate_threads;
use regbal_sim::SimConfig;
use regbal_workloads::{Kernel, Workload};

const PACKETS: u32 = 4;

fn ara_roundtrip(kernels: [Kernel; 4], nreg: usize) {
    let workloads: Vec<Workload> = kernels
        .iter()
        .enumerate()
        .map(|(slot, &k)| Workload::new(k, slot, PACKETS))
        .collect();
    let funcs: Vec<_> = workloads.iter().map(|w| w.func.clone()).collect();
    let alloc = allocate_threads(&funcs, nreg)
        .unwrap_or_else(|e| panic!("{kernels:?} @ {nreg}: {e}"));
    assert!(alloc.total_registers() <= nreg);

    let physical = alloc.rewrite_funcs(&funcs);
    let layout = alloc.layout();
    let config = SimConfig {
        private_ranges: (0..4).map(|t| layout.private_range(t)).collect(),
        ..SimConfig::default()
    };

    let (ref_out, _) = run_reference(&workloads, PACKETS as u64);
    let (phys_out, report) = run_threads(&physical, &workloads, PACKETS as u64, config);
    assert!(
        report.violations.is_empty(),
        "{kernels:?}: violations {:?}",
        &report.violations[..report.violations.len().min(3)]
    );
    assert_eq!(ref_out, phys_out, "{kernels:?} diverged");
}

/// Paper Table 3, scenario 1.
#[test]
fn scenario1_md5_fir2dim() {
    ara_roundtrip(
        [Kernel::Md5, Kernel::Md5, Kernel::Fir2dim, Kernel::Fir2dim],
        128,
    );
}

/// Paper Table 3, scenario 2.
#[test]
fn scenario2_l2l3fwd_md5() {
    ara_roundtrip(
        [Kernel::L2l3fwdRx, Kernel::L2l3fwdTx, Kernel::Md5, Kernel::Md5],
        128,
    );
}

/// Paper Table 3, scenario 3.
#[test]
fn scenario3_wraps_fir2dim_frag() {
    ara_roundtrip(
        [Kernel::WrapsRx, Kernel::WrapsTx, Kernel::Fir2dim, Kernel::Frag],
        128,
    );
}

/// The same scenarios under a scaled-down register file, which forces
/// real balancing work (splits and sharing).
#[test]
fn scenario1_tight() {
    ara_roundtrip(
        [Kernel::Md5, Kernel::Md5, Kernel::Fir2dim, Kernel::Fir2dim],
        72,
    );
}

#[test]
fn scenario3_tight() {
    ara_roundtrip(
        [Kernel::WrapsRx, Kernel::WrapsTx, Kernel::Fir2dim, Kernel::Frag],
        72,
    );
}

/// Balancing gives the hungry thread more private registers than the
/// lean ones — the core claim of the paper.
#[test]
fn balancing_favors_the_hungry_thread() {
    let workloads: Vec<Workload> = [Kernel::Md5, Kernel::Md5, Kernel::Fir2dim, Kernel::Fir2dim]
        .iter()
        .enumerate()
        .map(|(slot, &k)| Workload::new(k, slot, PACKETS))
        .collect();
    let funcs: Vec<_> = workloads.iter().map(|w| w.func.clone()).collect();
    let alloc = allocate_threads(&funcs, 96).unwrap();
    let md5_total = alloc.threads[0].pr() + alloc.threads[0].sr();
    let fir_total = alloc.threads[2].pr() + alloc.threads[2].sr();
    assert!(
        md5_total > fir_total,
        "md5 R {md5_total} should exceed fir2dim R {fir_total}"
    );
    // md5's demand is mostly *internal* (the message block between
    // switches), so it is satisfied through shared registers.
    assert!(alloc.threads[0].sr() > alloc.threads[0].pr());
}

/// An impossible budget must be rejected, not mis-allocated.
#[test]
fn infeasible_budget_errors() {
    let w = Workload::new(Kernel::Md5, 0, PACKETS);
    let funcs = vec![w.func.clone(), w.func.clone(), w.func.clone(), w.func];
    let err = allocate_threads(&funcs, 8).unwrap_err();
    match err {
        regbal_core::AllocError::Infeasible { needed, available } => {
            assert_eq!(available, 8);
            assert!(needed > 8);
        }
        other => panic!("unexpected error {other}"),
    }
}
