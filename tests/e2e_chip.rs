//! Multi-PU end to end: a two-stage packet pipeline across two
//! micro-engines (paper Fig. 2a), with each stage's code produced by
//! the balancing allocator, must drain identically to the reference.

use regbal_core::allocate_threads;
use regbal_ir::{parse_func, Func, MemSpace};
use regbal_sim::{Chip, SimConfig};

fn stage_rx() -> Func {
    parse_func(
        "
func rx {
bb0:
    v0 = mov 512
    v1 = mov 6
    v2 = mov 3
    jump push
push:
    v3 = load sram[v0+0]
    store sram[v3+64], v2
    v3 = add v3, 4
    store sram[v0+0], v3
    v2 = mul v2, 3
    v2 = and v2, 255
    v1 = sub v1, 1
    iter_end
    bne v1, 0, push, done
done:
    halt
}",
    )
    .unwrap()
}

fn stage_tx() -> Func {
    parse_func(
        "
func tx {
bb0:
    v0 = mov 512
    v1 = mov 6
    v2 = mov 0
    jump wait
wait:
    v3 = load sram[v0+0]
    v4 = load sram[v0+4]
    beq v3, v4, wait, pop
pop:
    v5 = load sram[v4+64]
    v2 = add v2, v5
    v4 = add v4, 4
    store sram[v0+4], v4
    store scratch[v0+0], v2
    v1 = sub v1, 1
    iter_end
    bne v1, 0, wait, done
done:
    halt
}",
    )
    .unwrap()
}

fn run_pipeline(stages: &[Func]) -> u32 {
    let mut chip = Chip::new(SimConfig::default(), stages.len());
    chip.memory_mut().write_word(MemSpace::Sram, 512, 512);
    chip.memory_mut().write_word(MemSpace::Sram, 516, 512);
    for (pu, f) in stages.iter().enumerate() {
        chip.add_thread(pu, f.clone());
    }
    let reports = chip.run(3_000_000, 8);
    assert!(
        reports.iter().all(|r| r.threads.iter().all(|t| t.halted)),
        "pipeline must drain"
    );
    chip.memory().read_word(MemSpace::Scratch, 512)
}

#[test]
fn allocated_pipeline_matches_reference_across_pus() {
    let stages = vec![stage_rx(), stage_tx()];
    let physical: Vec<Func> = stages
        .iter()
        .map(|s| {
            let alloc = allocate_threads(std::slice::from_ref(s), 12).unwrap();
            alloc.rewrite_funcs(std::slice::from_ref(s)).remove(0)
        })
        .collect();
    let reference = run_pipeline(&stages);
    let allocated = run_pipeline(&physical);
    assert_eq!(reference, allocated);
    // 3 + 9 + 27 + 81 + 243 + 729&255... the exact value matters less
    // than the equality, but it must be nonzero work.
    assert_ne!(reference, 0);
}

#[test]
fn chip_interleaving_granularity_does_not_change_results() {
    let stages = [stage_rx(), stage_tx()];
    let run_at = |granularity: u64| {
        let mut chip = Chip::new(SimConfig::default(), 2);
        chip.memory_mut().write_word(MemSpace::Sram, 512, 512);
        chip.memory_mut().write_word(MemSpace::Sram, 516, 512);
        for (pu, f) in stages.iter().enumerate() {
            chip.add_thread(pu, f.clone());
        }
        chip.run(3_000_000, granularity);
        chip.memory().read_word(MemSpace::Scratch, 512)
    };
    // The hand-shake is flow-controlled, so the final sum is invariant
    // to the interleaving slice size (timing is not, values are).
    assert_eq!(run_at(1), run_at(64));
    assert_eq!(run_at(1), run_at(1024));
}

#[test]
fn chip_run_with_zero_cycles_returns_immediately() {
    let mut chip = Chip::new(SimConfig::default(), 2);
    chip.add_thread(0, stage_rx());
    chip.add_thread(1, stage_tx());
    let reports = chip.run(0, 8);
    assert_eq!(reports.len(), 2);
    for r in &reports {
        assert_eq!(r.cycles, 0);
        assert!(r.threads.iter().all(|t| t.instructions == 0));
    }
    assert!(!chip.pu(0).all_halted(), "no cycle budget, no progress");
}

#[test]
fn chip_run_on_already_halted_pus_returns_immediately() {
    let mut chip = Chip::new(SimConfig::default(), 2);
    chip.memory_mut().write_word(MemSpace::Sram, 512, 512);
    chip.memory_mut().write_word(MemSpace::Sram, 516, 512);
    chip.add_thread(0, stage_rx());
    chip.add_thread(1, stage_tx());
    let first = chip.run(3_000_000, 8);
    assert!((0..2).all(|pu| chip.pu(pu).all_halted()));
    let drained = chip.memory().read_word(MemSpace::Scratch, 512);

    // A second run must not execute anything or disturb memory, even
    // with a fresh cycle budget far beyond the PUs' local clocks.
    let second = chip.run(30_000_000, 8);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.cycles, b.cycles, "halted PU clocks must not advance");
        for (ta, tb) in a.threads.iter().zip(&b.threads) {
            assert_eq!(ta.instructions, tb.instructions);
            assert_eq!(ta.iterations, tb.iterations);
        }
    }
    assert_eq!(chip.memory().read_word(MemSpace::Scratch, 512), drained);
}
