//! Inter-procedural end to end: a module with shared subroutines is
//! inlined (paper §3.2's inter-procedural construction), allocated for
//! four threads and simulated — output must match the virtual-register
//! reference.

use regbal_core::allocate_sra;
use regbal_ir::{inline_module, parse_module, MemSpace};
use regbal_sim::{SimConfig, Simulator, StopWhen};

/// A little protocol handler split into subroutines: the checksum
/// helper is called from two places and communicates through shared
/// registers (v1 in, v2 out), exactly like microcode subroutines.
fn module_src(base: u32) -> String {
    format!(
        "
func main {{
bb0:
    v0 = mov {base}
    v3 = mov 4            ; packets
    jump loop
loop:
    v1 = load sram[v0+0]
    call fold
    store scratch[v0+0], v2
    v1 = load sram[v0+4]
    call fold
    store scratch[v0+4], v2
    v0 = add v0, 8
    v3 = sub v3, 1
    iter_end
    bne v3, 0, loop, done
done:
    halt
}}
func fold {{
bb0:
    v2 = shr v1, 16
    v2 = xor v2, v1
    v2 = and v2, 65535
    halt
}}
"
    )
}

fn run(funcs: &[regbal_ir::Func], bases: &[u32]) -> Vec<u8> {
    let mut sim = Simulator::new(SimConfig::default());
    for (i, &b) in bases.iter().enumerate() {
        for w in 0..16u32 {
            sim.memory_mut()
                .write_word(MemSpace::Sram, b + w * 4, 0x1234_5678 ^ (b + w) ^ i as u32);
        }
    }
    for f in funcs {
        sim.add_thread(f.clone());
    }
    let report = sim.run(StopWhen::Iterations(u64::MAX));
    assert!(report.threads.iter().all(|t| t.halted));
    let mut out = Vec::new();
    for &b in bases {
        out.extend(sim.memory().read_bytes(MemSpace::Scratch, b, 64));
    }
    out
}

#[test]
fn inlined_module_allocates_and_matches_reference() {
    let bases = [0x100u32, 0x500, 0x900, 0xD00];
    let threads: Vec<regbal_ir::Func> = bases
        .iter()
        .map(|&b| {
            let module = parse_module(&module_src(b)).unwrap();
            inline_module(&module, "main").unwrap()
        })
        .collect();

    // All four structurally identical: symmetric allocation applies.
    let sra = allocate_sra(&threads[0], 4, 24).expect("fits in 24 registers");
    let physical = sra.to_multi().rewrite_funcs(&threads);

    let reference = run(&threads, &bases);
    let allocated = run(&physical, &bases);
    assert_eq!(reference, allocated);
}

#[test]
fn subroutine_register_communication_survives_allocation() {
    // The helper's input (v1) and output (v2) cross the call boundary
    // in registers. After inlining + allocation, the value chain must
    // still hold: checked by the exact-output test above, plus here by
    // a spot check of one folded word.
    let base = 0x100u32;
    let module = parse_module(&module_src(base)).unwrap();
    let main = inline_module(&module, "main").unwrap();
    let sra = allocate_sra(&main, 1, 24).unwrap();
    let physical = sra.to_multi().rewrite_funcs(std::slice::from_ref(&main));

    let mut sim = Simulator::new(SimConfig::default());
    let word = 0xDEAD_BEEFu32;
    sim.memory_mut().write_word(MemSpace::Sram, base, word);
    sim.add_thread(physical[0].clone());
    sim.run(StopWhen::Iterations(u64::MAX));
    let expected = ((word >> 16) ^ word) & 0xffff;
    assert_eq!(sim.memory().read_word(MemSpace::Scratch, base), expected);
}
