//! The seeded differential harness of the dynamic register-clobber
//! sanitizer: take a correct multi-thread allocation from
//! `regbal-core`, deliberately mis-color one boundary fragment into
//! the shared bank (the exact bug class the paper's whole safety
//! argument forbids), run the rewritten code, and assert the sanitizer
//! diagnoses every injected clobber with the right register, both
//! threads, and the context-switch boundary — while the memory output
//! demonstrably diverges from the virtual-register reference.
//!
//! Two crafted scenarios, 12 injections total (≥ 10 required):
//!
//! * scenario A — one `ctx`, one boundary value, register file of 4
//!   forcing `PR = [1, 1], SR = 2`: 2 threads × 2 shared colors;
//! * scenario B — two `ctx`s, two injectable boundary values, file of
//!   6 forcing `PR = [2, 2], SR = 2`: 2 threads × 2 values × 2 colors.

use regbal_core::verify::{check_thread, VerifyError};
use regbal_core::{allocate_threads, MultiAllocation, NodeId, ThreadAlloc};
use regbal_ir::{parse_func, BlockId, Func, Inst, MemSpace, VReg};
use regbal_sim::{
    RunReport, SanitizerConfig, SanitizerReport, SimConfig, Simulator, StopWhen,
};

/// Scenario A: `v0` crosses the `ctx` (register file of 4 forces
/// `PR = [1, 1], SR = 2`). Every region keeps three values
/// simultaneously live, so every region of every thread colors — and
/// therefore *writes* — the whole palette, both shared slots included.
/// That guarantees the other thread overwrites the injected slot
/// between the victim's context switch and its read, whichever thread
/// is corrupted and whichever shared color is forced.
fn scenario_a(out: u32) -> Func {
    parse_func(&format!(
        "func a{out} {{
bb0:
    v0 = mov 41
    v1 = mov 100
    v2 = add v1, v1
    v2 = xor v2, v1
    ctx
    v3 = add v0, 1
    v1 = mov {out}
    v2 = xor v3, v3
    v2 = xor v2, v2
    store scratch[v1+0], v3
    iter_end
    halt
}}"
    ))
    .unwrap()
}

/// Scenario B: `v0` crosses the first `ctx`, `v5` crosses both (file
/// of 6 forces `PR = [2, 2], SR = 2`). As in scenario A, every region
/// sustains full-palette pressure (four co-live values), so both
/// shared slots are rewritten by every region of every thread.
fn scenario_b(out: u32) -> Func {
    parse_func(&format!(
        "func b{out} {{
bb0:
    v0 = mov 13
    v5 = mov 29
    v1 = mov 50
    v2 = add v1, 3
    v2 = xor v2, v1
    ctx
    v3 = add v0, 2
    v1 = mov 60
    v2 = add v1, 4
    v2 = xor v2, v1
    ctx
    v4 = add v5, v3
    v1 = mov {out}
    v2 = add v1, 7
    v6 = xor v4, v4
    v6 = xor v6, v1
    v2 = sub v2, 7
    store scratch[v2+0], v4
    iter_end
    halt
}}"
    ))
    .unwrap()
}

/// The sanitizer configuration of an allocation: bank layout plus the
/// fragment-ownership tags.
fn sanitizer_config(multi: &MultiAllocation) -> SanitizerConfig {
    let layout = multi.layout();
    let mut cfg = SanitizerConfig::with_layout(
        (0..multi.threads.len())
            .map(|t| layout.private_range(t))
            .collect(),
        Some(layout.shared_range()),
    );
    for (t, r, label) in multi.fragment_tags() {
        cfg.fragments.insert((t, r), label);
    }
    cfg
}

/// Runs `funcs` as the threads of one PU and returns the per-thread
/// outputs (the word each stores at its `out` address) and the report.
fn run(funcs: &[Func], outs: &[u32], sanitize: Option<SanitizerConfig>) -> (Vec<u32>, RunReport) {
    let mut sim = Simulator::new(SimConfig::default());
    if let Some(cfg) = sanitize {
        sim.enable_sanitizer(cfg);
    }
    for f in funcs {
        sim.add_thread(f.clone());
    }
    let report = sim.run(StopWhen::Cycles(200_000));
    assert!(report.threads.iter().all(|t| t.halted), "threads finish");
    let words = outs
        .iter()
        .map(|&o| sim.memory().read_word(MemSpace::Scratch, o))
        .collect();
    (words, report)
}

/// The boundary fragment of `v` (panics if the allocator split `v`
/// into several — these scenarios are small enough that it never does,
/// and the injection bookkeeping relies on it).
fn boundary_node(alloc: &ThreadAlloc, v: VReg) -> NodeId {
    let nodes: Vec<NodeId> = alloc
        .node_ids()
        .filter(|&id| alloc.node_vreg(id) == v)
        .collect();
    assert_eq!(nodes.len(), 1, "{v} must be a single fragment");
    assert!(alloc.node_is_boundary(nodes[0]), "{v} must be boundary");
    nodes[0]
}

/// Whether the instruction at `pc` in `func` is a context-switch
/// boundary (`ctx` or a blocking memory operation).
fn is_csb_inst(func: &Func, pc: regbal_sim::Pc) -> bool {
    let block = func.block(BlockId(pc.block));
    match block.insts.get(pc.inst as usize) {
        Some(inst) => matches!(
            inst,
            Inst::Ctx
                | Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::LoadBurst { .. }
                | Inst::StoreBurst { .. }
        ),
        None => false, // terminators are never CSBs
    }
}

/// Injects one mis-coloring — boundary value `victim` of thread
/// `thread` forced into shared color index `color_idx` — and asserts
/// the full diagnosis.
fn inject_and_check(
    make: fn(u32) -> Func,
    outs: &[u32],
    nreg: usize,
    thread: usize,
    victim: VReg,
    color_idx: usize,
) {
    let funcs: Vec<Func> = outs.iter().map(|&o| make(o)).collect();
    let (ref_out, _) = run(&funcs, outs, None);

    let mut multi = allocate_threads(&funcs, nreg).unwrap();
    let alloc = &mut multi.threads[thread].alloc;
    assert!(alloc.sr() >= 2, "scenario must force two shared colors");
    let node = boundary_node(alloc, victim);
    let shared_color = alloc.shared_palette()[color_idx];
    alloc.force_color(node, shared_color);

    // The static verifier flags the corruption...
    match check_thread(&multi.threads[thread].alloc) {
        Err(VerifyError::SharedBoundary { vreg, color }) => {
            assert_eq!((vreg, color), (victim, shared_color));
        }
        other => panic!("verifier must reject the injection, got {other:?}"),
    }

    // ...and the sanitizer catches it at run time with the full triple.
    let layout = multi.layout();
    let expected_reg = layout.color_map(thread, &multi.threads[thread].alloc)[&shared_color].0;
    assert!(
        layout.shared_range().contains(&expected_reg),
        "the forced color must land in the shared bank"
    );
    let physical = multi.rewrite_funcs(&funcs);
    let (bad_out, report) = run(&physical, outs, Some(sanitizer_config(&multi)));

    assert_ne!(
        ref_out, bad_out,
        "t{thread} {victim}->shared {shared_color}: the clobber must corrupt output"
    );
    let clobbers: Vec<&SanitizerReport> = report
        .sanitizer
        .iter()
        .filter(|r| matches!(r, SanitizerReport::SharedClobber { .. }))
        .collect();
    assert!(
        !clobbers.is_empty(),
        "t{thread} {victim}->shared {shared_color}: sanitizer must fire, got {:?}",
        report.sanitizer
    );
    for c in &clobbers {
        let SanitizerReport::SharedClobber {
            reg,
            reader,
            writer,
            csb_pc,
            write_cycle,
            cycle,
            ..
        } = c
        else {
            unreachable!()
        };
        assert_eq!(*reg, expected_reg, "clobbered register");
        assert_eq!(*reader, thread, "the corrupted thread observes the loss");
        assert_ne!(*writer, thread, "another thread did the overwriting");
        assert!(
            is_csb_inst(&physical[*reader], *csb_pc),
            "csb_pc {csb_pc} must name a context-switch instruction"
        );
        assert!(write_cycle < cycle, "write precedes the read");
    }
}

#[test]
fn scenario_a_catches_all_four_injections() {
    let outs = [0u32, 8];
    for thread in 0..2 {
        for color_idx in 0..2 {
            inject_and_check(scenario_a, &outs, 4, thread, VReg(0), color_idx);
        }
    }
}

#[test]
fn scenario_b_catches_all_eight_injections() {
    let outs = [16u32, 24];
    for thread in 0..2 {
        for victim in [VReg(0), VReg(5)] {
            for color_idx in 0..2 {
                inject_and_check(scenario_b, &outs, 6, thread, victim, color_idx);
            }
        }
    }
}

#[test]
fn clean_allocations_run_sanitizer_silent() {
    for (make, outs, nreg) in [
        (scenario_a as fn(u32) -> Func, [0u32, 8], 4),
        (scenario_b as fn(u32) -> Func, [16u32, 24], 6),
    ] {
        let funcs: Vec<Func> = outs.iter().map(|&o| make(o)).collect();
        let multi = allocate_threads(&funcs, nreg).unwrap();
        let physical = multi.rewrite_funcs(&funcs);
        let (ref_out, _) = run(&funcs, &outs, None);
        let (phys_out, report) = run(&physical, &outs, Some(sanitizer_config(&multi)));
        assert_eq!(ref_out, phys_out, "correct allocation is output-faithful");
        assert!(
            report.sanitizer.is_empty(),
            "correct allocation must be report-free, got {:?}",
            report.sanitizer
        );
    }
}
