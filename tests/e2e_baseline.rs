//! End-to-end tests of the Chaitin spilling baseline (the fixed
//! 32-register-partition compiler the paper compares against), plus the
//! head-to-head behaviour the paper's Table 3 rests on: under a tight
//! partition the baseline spills (extra context switches), while the
//! balancing allocator stays spill-free.

mod common;

use common::{run_reference, run_threads};
use regbal_core::chaitin::{allocate, ChaitinConfig};
use regbal_ir::MemSpace;
use regbal_sim::SimConfig;
use regbal_workloads::{Kernel, Workload};

const PACKETS: u32 = 4;

fn chaitin_roundtrip(kernel: Kernel, k: usize) {
    let workloads: Vec<Workload> = (0..4).map(|s| Workload::new(kernel, s, PACKETS)).collect();
    let physical: Vec<_> = workloads
        .iter()
        .enumerate()
        .map(|(t, w)| {
            let mut cfg = ChaitinConfig::fixed_partition(t);
            cfg.k = k;
            cfg.phys_base = (t * k) as u32;
            // Disjoint spill areas per thread.
            cfg.spill_base = 0x4_0000 + (t as i64) * 0x1000;
            allocate(&w.func, &cfg)
                .unwrap_or_else(|e| panic!("{} k={k}: {e}", kernel.name()))
                .func
        })
        .collect();

    let config = SimConfig {
        private_ranges: (0..4u32).map(|t| t * k as u32..(t + 1) * k as u32).collect(),
        ..SimConfig::default()
    };
    let (ref_out, _) = run_reference(&workloads, PACKETS as u64);
    let (phys_out, report) = run_threads(&physical, &workloads, PACKETS as u64, config);
    assert!(report.violations.is_empty(), "{}", kernel.name());
    assert_eq!(ref_out, phys_out, "{} k={k}", kernel.name());
}

#[test]
fn baseline_all_kernels_at_32() {
    for k in Kernel::ALL {
        chaitin_roundtrip(k, 32);
    }
}

#[test]
fn baseline_md5_with_spills() {
    // A 12-register partition forces md5 to spill; results must still
    // be exact.
    chaitin_roundtrip(Kernel::Md5, 12);
}

#[test]
fn baseline_wraps_with_spills() {
    chaitin_roundtrip(Kernel::WrapsRx, 12);
}

/// The paper's core performance mechanism: spilling inflates context
/// switches (each spill op is a memory access), while the balancing
/// allocator keeps the CTX count at the spill-free level and pays only
/// cheap moves.
#[test]
fn spills_inflate_ctx_count_sharing_does_not() {
    let w = Workload::new(Kernel::Md5, 0, PACKETS);
    let base_ctx = w.func.num_ctx_insts();

    let mut cfg = ChaitinConfig::fixed_partition(0);
    cfg.k = 12;
    let spilled = allocate(&w.func, &cfg).unwrap();
    assert!(spilled.spilled > 0, "16 registers must force md5 to spill");
    assert!(
        spilled.func.num_ctx_insts() > base_ctx,
        "spill code adds context switches"
    );

    let funcs = vec![w.func.clone(); 4];
    let shared = regbal_core::allocate_threads(&funcs, 4 * 16).expect("sharing fits 64 registers");
    let rewritten = shared.rewrite_funcs(&funcs);
    assert_eq!(
        rewritten[0].num_ctx_insts(),
        base_ctx,
        "the balancing allocator never spills here"
    );
    // It may pay some moves instead, which are 1-cycle ALU ops.
    assert!(rewritten[0].num_insts() >= w.func.num_insts());
}

/// Spill slots must not leak between threads: two spilled threads with
/// disjoint spill areas stay correct.
#[test]
fn spill_areas_are_disjoint() {
    let w0 = Workload::new(Kernel::Md5, 0, 2);
    let w1 = Workload::new(Kernel::Md5, 1, 2);
    let physical: Vec<_> = [&w0, &w1]
        .iter()
        .enumerate()
        .map(|(t, w)| {
            let mut cfg = ChaitinConfig::fixed_partition(t);
            cfg.k = 12;
            cfg.phys_base = (t * 12) as u32;
            cfg.spill_base = 0x4_0000 + (t as i64) * 0x1000;
            allocate(&w.func, &cfg).unwrap().func
        })
        .collect();
    let workloads = vec![w0, w1];
    let (ref_out, _) = run_reference(&workloads, 2);
    let (phys_out, report) = run_threads(&physical, &workloads, 2, SimConfig::default());
    assert!(report.violations.is_empty());
    assert_eq!(ref_out, phys_out);
}

/// Sanity: the spill area lives in SRAM well away from any kernel
/// table (tables sit below 0x8000 * slots).
#[test]
fn spill_base_clear_of_tables() {
    for t in 0..4 {
        let cfg = ChaitinConfig::fixed_partition(t);
        assert_eq!(cfg.spill_space, MemSpace::Sram);
        assert!(cfg.spill_base >= 0x1_0000);
    }
}
