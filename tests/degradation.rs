//! Adversarial stress suite for the allocation fallback ladder.
//!
//! A corpus of 200+ seeded random functions — context-switch-saturated,
//! clique-heavy, and loop-carried — is pushed through
//! [`regbal_core::allocate_ladder`] at register files down to `Nreg=8`.
//! The contract under test:
//!
//! * the pipeline never panics: every request either allocates
//!   (possibly after recorded [`Degradation`]s) or returns a structured
//!   [`LadderError`] carrying the full trail;
//! * every successful allocation rewrites to fully physical, validated
//!   code confined to the register file;
//! * degraded code is semantics-preserving (memory snapshots equal the
//!   virtual-register reference) and sanitizer-clean;
//! * every run terminates within a fixed cycle budget.
//!
//! The file also holds the capped-vs-uncapped engine differential
//! property: the deterministic iteration budget is a pure restriction —
//! invisible when not hit, a structured `IterationCapHit` when starved.

mod common;

use proptest::prelude::*;
use regbal_core::{
    allocate_ladder, allocate_ladder_with, allocate_threads_stats, allocate_threads_with,
    AllocError, EngineConfig, IterationBudget, LadderConfig, LadderStep,
};
use regbal_ir::{Func, MemSpace, Reg, Terminator};
use regbal_sim::{SanitizerConfig, SimConfig, Simulator, StopWhen};
use regbal_workloads::stress::{stress_bundle, StressConfig, STRESS_SLOT_BYTES};

/// Cycle budget for one stress bundle; generously above what any
/// generated program needs, so hitting it means a hang.
const CYCLE_BUDGET: u64 = 2_000_000;

/// Runs `funcs` as threads to completion and snapshots each thread's
/// scratch window; also reports clobber-class sanitizer violations when
/// instrumented.
fn run_snapshot(funcs: &[Func], sanitize: bool) -> (Vec<Vec<u8>>, usize) {
    let mut sim = Simulator::new(SimConfig::default());
    if sanitize {
        sim.enable_sanitizer(SanitizerConfig::default());
    }
    for f in funcs {
        sim.add_thread(f.clone());
    }
    let report = sim.run(StopWhen::Cycles(CYCLE_BUDGET));
    assert!(
        report.threads.iter().all(|t| t.halted),
        "a thread failed to terminate within {CYCLE_BUDGET} cycles"
    );
    let snaps = (0..funcs.len())
        .map(|t| {
            sim.memory()
                .read_bytes(MemSpace::Scratch, t as u32 * STRESS_SLOT_BYTES, 0x240)
        })
        .collect();
    (snaps, report.sanitizer_violations().count())
}

/// Every register in `f` must be physical and inside the file.
fn assert_confined(f: &Func, nreg: usize) {
    assert_eq!(f.max_vreg(), None, "`{}` still has virtual registers", f.name);
    let check = |r: Reg| {
        if let Reg::Phys(p) = r {
            assert!(
                (p.0 as usize) < nreg,
                "`{}` uses r{} outside a {nreg}-register file",
                f.name,
                p.0
            );
        }
    };
    for (_, _, inst) in f.iter_insts() {
        inst.defs().for_each(check);
        inst.uses().for_each(check);
    }
    for b in &f.blocks {
        if let Terminator::Branch { lhs, rhs, .. } = &b.term {
            check(*lhs);
            if let regbal_ir::Operand::Reg(r) = rhs {
                check(*r);
            }
        }
    }
}

/// Aggregate evidence from one corpus class.
#[derive(Default)]
struct CorpusStats {
    funcs: usize,
    degraded_allocations: usize,
    degradations: usize,
    structured_failures: usize,
    settled: std::collections::BTreeMap<&'static str, usize>,
}

/// Pushes one bundle through the ladder and checks the full contract.
/// The engine gets a deliberately tight iteration budget: on hopeless
/// rungs the corpus is adversarial enough to grind for a long time, and
/// falling through on `IterationCapHit` is precisely the behaviour the
/// ladder exists to provide.
fn exercise(funcs: &[Func], nreg: usize, stats: &mut CorpusStats) {
    stats.funcs += funcs.len();
    let config = LadderConfig {
        engine: EngineConfig {
            max_iterations: IterationBudget::Fixed(500),
            ..EngineConfig::default()
        },
        ..LadderConfig::default()
    };
    let result = std::panic::catch_unwind(|| allocate_ladder_with(funcs, nreg, &config))
        .expect("the allocation pipeline must never panic");
    let alloc = match result {
        Ok(alloc) => alloc,
        Err(err) => {
            // Even total failure is structured: the trail covers every
            // rung down to spill-all, and the terminal error survives.
            stats.structured_failures += 1;
            assert_eq!(err.degradations.len(), 4, "full trail: {err}");
            assert_eq!(err.degradations[0].from, LadderStep::Balanced);
            assert_eq!(err.degradations[3].to, LadderStep::SpillAll);
            return;
        }
    };
    *stats.settled.entry(alloc.step.name()).or_default() += 1;
    // Budget retries are bookkept consistently: every retry doubles a
    // non-zero cap, and a recovered retry means the ladder never
    // degraded *past* that rung.
    for r in &alloc.retries {
        assert!(r.cap > 0, "retry of a zero budget: {r:?}");
        assert_eq!(r.retry_cap, r.cap * 2, "retry must double the budget");
        if r.recovered {
            assert!(alloc.step <= r.step, "recovered rung {r:?} yet settled lower");
        }
    }
    if alloc.degraded_count() > 0 {
        stats.degraded_allocations += 1;
        stats.degradations += alloc.degraded_count();
        assert_eq!(alloc.degradations[0].from, LadderStep::Balanced);
        assert_eq!(
            alloc.degradations.last().unwrap().to,
            alloc.step,
            "the trail ends at the settled rung"
        );
    }
    let physical = alloc.rewrite().expect("a settled ladder result rewrites");
    assert_eq!(physical.len(), funcs.len());
    for f in &physical {
        f.validate().expect("rewritten function is structurally valid");
        assert_confined(f, nreg);
    }
    // Degraded code must still be *correct* code: byte-identical
    // observable memory and zero clobber-class sanitizer reports.
    let (reference, _) = run_snapshot(funcs, false);
    let (compiled, violations) = run_snapshot(&physical, true);
    assert_eq!(reference, compiled, "degraded rewrite changed semantics");
    assert_eq!(violations, 0, "degraded rewrite clobbered a register");
}

/// Class (a): small CSB-saturated programs, two threads sharing the
/// paper's tightest file. The balanced rung is hopeless here; the
/// ladder must degrade, not die.
#[test]
fn csb_dense_corpus_survives_nreg_8() {
    let mut stats = CorpusStats::default();
    for seed in 0..40u64 {
        let funcs = stress_bundle(seed, 2, StressConfig::csb_dense());
        exercise(&funcs, 8, &mut stats);
    }
    assert_eq!(stats.funcs, 80);
    assert!(
        stats.degraded_allocations > 0,
        "an adversarial corpus at Nreg=8 must force degradations: {:?}",
        stats.settled
    );
}

/// Class (b): wide interference cliques, two threads on twelve
/// registers — each thread's clique alone would fill the file.
#[test]
fn clique_corpus_survives_nreg_12() {
    let mut stats = CorpusStats::default();
    for seed in 100..136u64 {
        let funcs = stress_bundle(seed, 2, StressConfig::clique());
        exercise(&funcs, 12, &mut stats);
    }
    assert_eq!(stats.funcs, 72);
    assert!(
        stats.degraded_allocations > 0,
        "12-wide cliques cannot balance into 12 registers: {:?}",
        stats.settled
    );
}

/// Class (c): loop-carried mixed programs swept across tight and
/// comfortable files — the same bundle must survive everywhere.
#[test]
fn mixed_loop_corpus_survives_a_file_sweep() {
    let mut stats = CorpusStats::default();
    for seed in 200..226u64 {
        let funcs = stress_bundle(seed, 2, StressConfig::mixed());
        for nreg in [12, 24] {
            exercise(&funcs, nreg, &mut stats);
        }
        stats.funcs -= funcs.len(); // count distinct functions once
    }
    assert_eq!(stats.funcs, 52);
    assert!(
        stats.settled.contains_key("balanced")
            || stats.settled.contains_key("balanced-spill"),
        "comfortable files should settle high on the ladder: {:?}",
        stats.settled
    );
}

/// The observable outcome of one engine run, for bit-exact comparison.
fn fingerprint(
    alloc: &regbal_core::MultiAllocation,
) -> (Vec<(usize, usize, usize)>, usize) {
    (
        alloc
            .threads
            .iter()
            .map(|t| (t.pr(), t.sr(), t.moves()))
            .collect(),
        alloc.total_registers(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The iteration budget is a pure restriction of the engine
    /// (satellite of the degradation work): with a cap at least as
    /// large as the iterations actually needed, the allocation is
    /// bit-identical to the uncapped run; with a cap strictly below,
    /// the failure is a structured `IterationCapHit` — never a panic,
    /// never a silently different allocation.
    #[test]
    fn capped_engine_is_a_pure_restriction(seed in any::<u64>()) {
        let funcs = stress_bundle(seed, 3, StressConfig::mixed());
        // A file one short of the threads' unreduced demand forces at
        // least one greedy reduction step on most seeds.
        let Ok(relaxed) = allocate_ladder(&funcs, 256) else { return Ok(()) };
        let nreg = relaxed.registers_used().saturating_sub(1).max(3);

        let uncapped = allocate_threads_stats(&funcs, nreg, EngineConfig::uncapped());
        let Ok((reference, stats)) = uncapped else {
            // Infeasible is fine here; the ladder corpus above covers it.
            return Ok(());
        };
        let exact_cap = EngineConfig {
            max_iterations: IterationBudget::Fixed(stats.iterations),
            ..EngineConfig::default()
        };
        let capped = allocate_threads_with(&funcs, nreg, exact_cap)
            .expect("a cap of exactly the needed iterations must not fire");
        prop_assert_eq!(fingerprint(&reference), fingerprint(&capped));

        if stats.iterations > 0 {
            let starved = EngineConfig {
                max_iterations: IterationBudget::Fixed(stats.iterations - 1),
                ..EngineConfig::default()
            };
            let err = allocate_threads_with(&funcs, nreg, starved)
                .expect_err("a cap below the needed iterations must fire");
            prop_assert!(
                matches!(err, AllocError::IterationCapHit { cap, .. } if cap + 1 == stats.iterations),
                "unexpected error: {err}"
            );
        }
    }
}
