//! Replays the archived fuzz regression corpus.
//!
//! `tests/fuzz_regressions.txt` holds one line per case that the
//! `regbal fuzz` walk (CI's nightly mode, or any manual run with
//! `--archive`) ever found failing, plus a pinned starter set. Each
//! line re-runs the full ladder contract via [`regbal::fuzz`]: once a
//! case is archived, it can never silently regress.

use regbal::fuzz::FuzzCase;

#[test]
fn every_archived_fuzz_case_still_passes() {
    let corpus = include_str!("fuzz_regressions.txt");
    let mut replayed = 0usize;
    for line in corpus.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let case = FuzzCase::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        case.check()
            .unwrap_or_else(|e| panic!("archived case regressed: {line}: {e}"));
        replayed += 1;
    }
    assert!(replayed >= 4, "the starter corpus must be present");
}
