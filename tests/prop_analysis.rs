//! Property tests cross-validating the dataflow analyses against
//! independent reference implementations, on random programs.

mod common;

use common::gen::{random_program, GenConfig};
use proptest::prelude::*;
use regbal_analysis::{Point, ProgramInfo};
use regbal_igraph::{build_big, build_big_naive, build_gig, build_gig_naive, build_iigs};
use regbal_ir::{Func, Reg, VReg};

/// Reference liveness: for each register independently, mark every
/// point from which a use is reachable without an intervening
/// definition (simple backward BFS per use — quadratic but obviously
/// correct).
fn reference_live_in(func: &Func, info: &ProgramInfo, v: VReg) -> Vec<bool> {
    let np = info.pmap.num_points();
    let mut live = vec![false; np];
    let uses_v = |p: Point| info.pmap.slot(func, p).uses().contains(&Reg::Virt(v));
    let defs_v = |p: Point| {
        info.pmap
            .slot(func, p)
            .defs_vreg()
            .contains(&v)
    };
    let mut stack: Vec<Point> = info.pmap.points().filter(|&p| uses_v(p)).collect();
    for &p in &stack {
        live[p.index()] = true;
    }
    while let Some(p) = stack.pop() {
        for &q in info.pmap.preds(p) {
            // v is live-in at p, so it is live-out at q; it is live-in
            // at q unless q defines it.
            if !defs_v(q) && !live[q.index()] {
                live[q.index()] = true;
                stack.push(q);
            }
        }
    }
    live
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dataflow liveness fixpoint equals the per-register BFS.
    #[test]
    fn liveness_matches_reference(seed in any::<u64>()) {
        let f = random_program(seed, 0, GenConfig::default());
        let info = ProgramInfo::compute(&f);
        for vi in 0..info.num_vregs() {
            let v = VReg(vi as u32);
            let reference = reference_live_in(&f, &info, v);
            for p in info.pmap.points() {
                prop_assert_eq!(
                    info.liveness.live_in(p).contains(vi),
                    reference[p.index()],
                    "v{} at {:?}", vi, p
                );
            }
        }
    }

    /// Bitset-row interference construction equals the pairwise
    /// reference, edge for edge, on arbitrary programs.
    #[test]
    fn bulk_graph_construction_matches_naive(seed in any::<u64>()) {
        let f = random_program(seed, 0, GenConfig::default());
        let info = ProgramInfo::compute(&f);
        prop_assert_eq!(build_gig(&info), build_gig_naive(&info), "GIG diverges");
        prop_assert_eq!(build_big(&info), build_big_naive(&info), "BIG diverges");
    }

    /// Paper Claim 2: internal nodes of different non-switch regions
    /// never interfere.
    #[test]
    fn claim2_holds(seed in any::<u64>()) {
        let f = random_program(seed, 0, GenConfig::default());
        let info = ProgramInfo::compute(&f);
        let gig = build_gig(&info);
        let iigs = build_iigs(&info, &gig);
        for (i, a) in iigs.iter().enumerate() {
            for b in iigs.iter().skip(i + 1) {
                for &ma in &a.members {
                    for &mb in &b.members {
                        prop_assert!(
                            !gig.has_edge(ma, mb),
                            "internal v{} (region {:?}) interferes with v{} (region {:?})",
                            ma, a.region, mb, b.region
                        );
                    }
                }
            }
        }
    }

    /// Live-across sets never contain the registers a CSB defines, and
    /// boundary classification covers exactly the registers that appear
    /// in some live-across set or are live at entry.
    #[test]
    fn boundary_classification_is_exact(seed in any::<u64>()) {
        let f = random_program(seed, 0, GenConfig::default());
        let info = ProgramInfo::compute(&f);
        let mut expected = regbal_ir::BitSet::new(info.num_vregs());
        for (p, across) in info.csbs.iter() {
            for d in info.liveness.defs_at(p) {
                prop_assert!(!across.contains(d.index()));
            }
            expected.union_with(across);
        }
        expected.union_with(info.liveness.live_in(info.pmap.entry()));
        prop_assert_eq!(&expected, &info.boundary);
    }

    /// RegPmax upper-bounds every point's live count and is attained.
    #[test]
    fn pressure_is_tight(seed in any::<u64>()) {
        let f = random_program(seed, 0, GenConfig::default());
        let info = ProgramInfo::compute(&f);
        let mut seen = 0usize;
        for p in info.pmap.points() {
            let before = info.liveness.live_in(p).count();
            prop_assert!(before <= info.pressure.regp_max);
            seen = seen.max(before);
        }
        prop_assert!(seen <= info.pressure.regp_max);
        // The bound is attained at some point (in/out side).
        prop_assert!(info.pressure.regp_max == 0 || seen + 1 >= 1);
    }

    /// Parse/print round-trip on arbitrary generated programs.
    #[test]
    fn assembly_roundtrips(seed in any::<u64>()) {
        let f = random_program(seed, 0x400, GenConfig::default());
        let printed = f.to_string();
        let reparsed = regbal_ir::parse_func(&printed).expect("printer output parses");
        prop_assert_eq!(f, reparsed);
    }
}
