//! Property tests: for arbitrary structured programs, the allocators
//! must produce verified, semantics-preserving code.

mod common;

use common::gen::{random_program, GenConfig};
use proptest::prelude::*;
use regbal_core::chaitin::{self, ChaitinConfig};
use regbal_core::{
    allocate_sra, allocate_threads_with, estimate_bounds, force_min_bounds, EngineConfig,
    MultiAllocation,
};
use regbal_analysis::ProgramInfo;
use regbal_ir::{Func, MemSpace};
use regbal_sim::{SimConfig, Simulator, StopWhen};

const SLOT_STRIDE: u32 = 0x400;

/// Runs `funcs` as threads and snapshots each thread's memory window.
fn run_snapshot(funcs: &[Func]) -> Vec<Vec<u8>> {
    let mut sim = Simulator::new(SimConfig::default());
    for f in funcs {
        sim.add_thread(f.clone());
    }
    let report = sim.run(StopWhen::Iterations(u64::MAX));
    assert!(report.threads.iter().all(|t| t.halted), "must terminate");
    (0..funcs.len())
        .map(|t| sim.memory().read_bytes(MemSpace::Scratch, t as u32 * SLOT_STRIDE, 0x240))
        .collect()
}

fn variants(seed: u64, config: GenConfig, n: usize) -> Vec<Func> {
    (0..n)
        .map(|slot| random_program(seed, slot as u32 * SLOT_STRIDE, config))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SRA end to end: allocate four structurally identical threads,
    /// rewrite, and compare memory output with the reference run.
    #[test]
    fn sra_preserves_semantics(seed in any::<u64>()) {
        let config = GenConfig::default();
        let funcs = variants(seed, config, 4);
        let est = estimate_bounds(&ProgramInfo::compute(&funcs[0]));
        // A file tight enough to force sharing but guaranteed feasible.
        let nreg = 4 * est.bounds.max_pr + (est.bounds.max_r - est.bounds.max_pr);
        let sra = allocate_sra(&funcs[0], 4, nreg).expect("trivially feasible");
        let physical = sra.to_multi().rewrite_funcs(&funcs);
        prop_assert_eq!(run_snapshot(&funcs), run_snapshot(&physical));
    }

    /// Squeezing to the minimum bound still preserves semantics, with
    /// every invariant checked.
    #[test]
    fn min_bound_allocation_preserves_semantics(seed in any::<u64>()) {
        let config = GenConfig { blocks: 4, pool: 6, block_len: 6, outer_loop: false };
        let funcs = variants(seed, config, 2);
        let t = match force_min_bounds(&funcs[0]) {
            Ok(t) => t,
            Err(_) => return Ok(()), // stuck reductions are allowed, not wrong
        };
        regbal_core::verify::check_thread(&t.alloc).expect("verified");
        let multi = regbal_core::MultiAllocation {
            threads: vec![t.clone(), t],
            nreg: 256,
            degradations: Vec::new(),
        };
        let physical = multi.rewrite_funcs(&funcs);
        prop_assert_eq!(run_snapshot(&funcs), run_snapshot(&physical));
    }

    /// The Chaitin baseline with a tiny bank spills but stays correct.
    #[test]
    fn chaitin_with_spills_preserves_semantics(seed in any::<u64>()) {
        let config = GenConfig { blocks: 4, pool: 7, block_len: 6, outer_loop: false };
        let funcs = variants(seed, config, 2);
        let physical: Vec<Func> = funcs
            .iter()
            .enumerate()
            .map(|(t, f)| {
                let cfg = ChaitinConfig {
                    k: 5,
                    phys_base: (t * 5) as u32,
                    spill_space: MemSpace::Sram,
                    spill_base: 0x1_0000 + (t as i64) * 0x1000,
                };
                chaitin::allocate(f, &cfg).expect("k=5 converges").func
            })
            .collect();
        prop_assert_eq!(run_snapshot(&funcs), run_snapshot(&physical));
    }

    /// Bound ordering invariants hold for arbitrary programs.
    #[test]
    fn bounds_are_ordered(seed in any::<u64>()) {
        let f = random_program(seed, 0, GenConfig::default());
        let b = estimate_bounds(&ProgramInfo::compute(&f)).bounds;
        prop_assert!(b.min_pr <= b.max_pr);
        prop_assert!(b.min_r <= b.max_r);
        prop_assert!(b.max_pr <= b.max_r);
        prop_assert!(b.min_pr <= b.min_r);
    }

    /// The reduction engine's outputs always pass the independent
    /// verifier, at every step of the zero-cost frontier walk.
    #[test]
    fn frontier_is_always_verified(seed in any::<u64>()) {
        let f = random_program(seed, 0, GenConfig { blocks: 4, pool: 6, block_len: 6, outer_loop: false });
        let t = regbal_core::zero_cost_frontier(&f);
        regbal_core::verify::check_thread(&t.alloc).expect("verified");
        prop_assert_eq!(t.moves(), 0, "the frontier is move-free by definition");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Looped programs: every pool value is loop-carried (live around
    /// the back edge), so splits land on back edges — the hardest
    /// rewrite path. Semantics must still be exact.
    #[test]
    fn looped_sra_preserves_semantics(seed in any::<u64>()) {
        let config = GenConfig { blocks: 4, pool: 6, block_len: 6, outer_loop: true };
        let funcs = variants(seed, config, 2);
        let est = estimate_bounds(&ProgramInfo::compute(&funcs[0]));
        let nreg = 2 * est.bounds.max_pr + (est.bounds.max_r - est.bounds.max_pr);
        let sra = allocate_sra(&funcs[0], 2, nreg).expect("trivially feasible");
        let physical = sra.to_multi().rewrite_funcs(&funcs);
        prop_assert_eq!(run_snapshot(&funcs), run_snapshot(&physical));
    }

    /// Looped programs squeezed to the minimum bound (forcing back-edge
    /// moves) stay correct.
    #[test]
    fn looped_min_bound_preserves_semantics(seed in any::<u64>()) {
        let config = GenConfig { blocks: 3, pool: 5, block_len: 5, outer_loop: true };
        let funcs = variants(seed, config, 2);
        let t = match force_min_bounds(&funcs[0]) {
            Ok(t) => t,
            Err(_) => return Ok(()),
        };
        regbal_core::verify::check_thread(&t.alloc).expect("verified");
        let multi = regbal_core::MultiAllocation {
            threads: vec![t.clone(), t],
            nreg: 256,
            degradations: Vec::new(),
        };
        let physical = multi.rewrite_funcs(&funcs);
        prop_assert_eq!(run_snapshot(&funcs), run_snapshot(&physical));
    }

    /// The hybrid spill fallback on random programs with a tiny file.
    #[test]
    fn hybrid_spill_preserves_semantics(seed in any::<u64>()) {
        let config = GenConfig { blocks: 3, pool: 6, block_len: 5, outer_loop: true };
        let funcs = variants(seed, config, 2);
        let Ok(hybrid) = regbal_core::allocate_threads_with_spill(&funcs, 10) else {
            return Ok(()); // genuinely impossible budgets may remain
        };
        let physical = hybrid.rewrite();
        prop_assert_eq!(run_snapshot(&hybrid.funcs), run_snapshot(&physical));
        // The observable outputs of the spilled programs equal the
        // originals' too (spilling is semantics-preserving).
        prop_assert_eq!(run_snapshot(&funcs), run_snapshot(&hybrid.funcs));
    }
}

/// The observable outcome of one engine run, for bit-exact comparison.
fn fingerprint(alloc: &MultiAllocation) -> (Vec<(usize, usize, usize)>, usize) {
    (
        alloc
            .threads
            .iter()
            .map(|t| (t.pr(), t.sr(), t.moves()))
            .collect(),
        alloc.total_registers(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The memoized and parallel engines are bit-identical to the naive
    /// engine: same per-thread (PR, SR, moves), same total, and the
    /// same error on infeasible budgets — across heterogeneous random
    /// multi-thread programs and a sweep of register budgets chosen to
    /// force real greedy iterations.
    #[test]
    fn memoized_engine_matches_naive(seed in any::<u64>()) {
        let config = GenConfig { blocks: 4, pool: 6, block_len: 6, outer_loop: false };
        // Heterogeneous threads: a different derived seed per thread.
        let funcs: Vec<Func> = (0..4)
            .map(|t| {
                let tseed = seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                random_program(tseed, t as u32 * SLOT_STRIDE, config)
            })
            .collect();
        let bounds: Vec<_> = funcs
            .iter()
            .map(|f| estimate_bounds(&ProgramInfo::compute(f)).bounds)
            .collect();
        // The engine starts at the upper bounds; budgets below that
        // demand drive the greedy loop, down into infeasible territory.
        let upper = bounds.iter().map(|b| b.max_pr).sum::<usize>()
            + bounds.iter().map(|b| b.max_r - b.max_pr).max().unwrap_or(0);
        let lower = bounds.iter().map(|b| b.min_pr).sum::<usize>();
        let budgets = [
            lower.max(1),
            (lower + upper) / 2,
            upper.saturating_sub(1),
            upper,
        ];
        let fast_configs = [
            EngineConfig { memoize: true, parallel: false, ..EngineConfig::default() },
            EngineConfig::default(),
        ];
        for nreg in budgets {
            let naive = allocate_threads_with(&funcs, nreg, EngineConfig::naive());
            for cfg in fast_configs {
                let fast = allocate_threads_with(&funcs, nreg, cfg);
                match (&naive, &fast) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(
                            fingerprint(a), fingerprint(b),
                            "allocations diverge: {:?} nreg={}", cfg, nreg
                        );
                    }
                    (Err(ea), Err(eb)) => {
                        prop_assert_eq!(ea, eb, "errors diverge: {:?} nreg={}", cfg, nreg);
                    }
                    _ => prop_assert!(
                        false,
                        "feasibility diverges at {:?} nreg={}: naive={:?} fast={:?}",
                        cfg, nreg, naive.is_ok(), fast.is_ok()
                    ),
                }
            }
        }
    }

    /// Same differential on loop-carried programs (back-edge splits are
    /// the costliest candidates, exercising cost tie-breaks).
    #[test]
    fn memoized_engine_matches_naive_looped(seed in any::<u64>()) {
        let config = GenConfig { blocks: 3, pool: 5, block_len: 5, outer_loop: true };
        let funcs: Vec<Func> = (0..3)
            .map(|t| {
                let tseed = seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                random_program(tseed, t as u32 * SLOT_STRIDE, config)
            })
            .collect();
        let bounds: Vec<_> = funcs
            .iter()
            .map(|f| estimate_bounds(&ProgramInfo::compute(f)).bounds)
            .collect();
        let upper = bounds.iter().map(|b| b.max_pr).sum::<usize>()
            + bounds.iter().map(|b| b.max_r - b.max_pr).max().unwrap_or(0);
        for nreg in [upper.saturating_sub(3), upper.saturating_sub(1)] {
            let naive = allocate_threads_with(&funcs, nreg.max(1), EngineConfig::naive());
            let fast = allocate_threads_with(&funcs, nreg.max(1), EngineConfig::default());
            match (&naive, &fast) {
                (Ok(a), Ok(b)) => prop_assert_eq!(fingerprint(a), fingerprint(b)),
                (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                _ => prop_assert!(false, "feasibility diverges at nreg={}", nreg),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The dual-bank diagnostic never panics on allocator output, and
    /// any assignment it produces is internally consistent (paired
    /// operands land in opposite banks).
    #[test]
    fn bank_diagnostics_are_total(seed in any::<u64>()) {
        let config = GenConfig { blocks: 4, pool: 6, block_len: 6, outer_loop: false };
        let funcs = variants(seed, config, 2);
        let est = estimate_bounds(&ProgramInfo::compute(&funcs[0]));
        let nreg = 2 * est.bounds.max_pr + (est.bounds.max_r - est.bounds.max_pr);
        let sra = allocate_sra(&funcs[0], 2, nreg).expect("feasible");
        let physical = sra.to_multi().rewrite_funcs(&funcs);
        if let Ok(banks) = regbal_core::banks::assign_banks(&physical) {
            for f in &physical {
                for (_, _, inst) in f.iter_insts() {
                    if let regbal_ir::Inst::Bin {
                        lhs: regbal_ir::Reg::Phys(a),
                        rhs: regbal_ir::Operand::Reg(regbal_ir::Reg::Phys(b)),
                        ..
                    } = inst
                    {
                        if a != b {
                            prop_assert_ne!(banks.bank_of(a.0), banks.bank_of(b.0));
                        }
                    }
                }
            }
        }
        // A conflict (odd cycle) is a legitimate outcome, not a failure.
    }
}
