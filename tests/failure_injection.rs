//! Failure injection: deliberately corrupt a correct allocation and
//! confirm that the safety machinery — the static verifier and the
//! simulator watchdog — catches it.

mod common;

use common::slot_variants;
use regbal_core::allocate_sra;
use regbal_ir::{Func, MemSpace, PReg, Reg};
use regbal_sim::{RunReport, SimConfig, Simulator, StopWhen};
use regbal_workloads::{Kernel, Workload};

/// Runs with a hard cycle budget: corrupted programs may loop forever
/// (e.g. a clobbered loop counter), which is itself part of the failure
/// being demonstrated.
fn run_bounded(funcs: &[Func], workloads: &[Workload], config: SimConfig) -> (Vec<u8>, RunReport) {
    let mut sim = Simulator::new(config);
    for w in workloads {
        w.prepare(sim.memory_mut(), 0xBEEF + w.slot as u64);
    }
    for f in funcs {
        sim.add_thread(f.clone());
    }
    let report = sim.run(StopWhen::Cycles(1_000_000));
    let mut out = Vec::new();
    for w in workloads {
        let (addr, len) = w.output_region();
        out.extend(sim.memory().read_bytes(MemSpace::Scratch, addr, len));
    }
    (out, report)
}

/// Rewrites one physical register into another everywhere in thread
/// `t`'s code — the kind of bug a broken allocator would produce.
fn clobber(func: &mut regbal_ir::Func, from: u32, to: u32) {
    let swap = |r: Reg| match r {
        Reg::Phys(p) if p.0 == from => Reg::Phys(PReg(to)),
        other => other,
    };
    for block in &mut func.blocks {
        for inst in &mut block.insts {
            inst.map_uses(swap);
            inst.map_defs(swap);
        }
        block.term.map_uses(swap);
    }
}

#[test]
fn watchdog_catches_private_bank_intrusion() {
    let workloads = slot_variants(Kernel::Frag, 4, 4);
    let sra = allocate_sra(&workloads[0].func, 4, 64).unwrap();
    let multi = sra.to_multi();
    let funcs: Vec<_> = workloads.iter().map(|w| w.func.clone()).collect();
    let mut physical = multi.rewrite_funcs(&funcs);

    let layout = multi.layout();
    // Redirect one of thread 1's private registers into thread 0's
    // private bank.
    let own = layout.private_range(1).start;
    let foreign = layout.private_range(0).start;
    clobber(&mut physical[1], own, foreign);

    let config = SimConfig {
        private_ranges: (0..4).map(|t| layout.private_range(t)).collect(),
        ..SimConfig::default()
    };
    let (_, report) = run_bounded(&physical, &workloads, config);
    assert!(
        report.violations.iter().any(|v| v.writer == 1 && v.owner == 0),
        "the watchdog must flag thread 1 writing thread 0's bank"
    );
}

#[test]
fn shared_register_held_across_a_switch_corrupts_results() {
    // Move a *private* live-across value of thread 0 into a shared
    // register. Another thread will clobber it while thread 0 is
    // switched out, and the output must diverge from the reference —
    // demonstrating why the paper forbids exactly this.
    let workloads = slot_variants(Kernel::Frag, 4, 4);
    let sra = allocate_sra(&workloads[0].func, 4, 64).unwrap();
    assert!(sra.pr() > 0 && sra.sr() > 0, "needs both banks");
    let multi = sra.to_multi();
    let funcs: Vec<_> = workloads.iter().map(|w| w.func.clone()).collect();
    let mut physical = multi.rewrite_funcs(&funcs);

    let layout = multi.layout();
    let private = layout.private_range(0).start; // holds live-across values
    let shared = layout.shared_range().start;
    clobber(&mut physical[0], private, shared);

    let (ref_out, _) = run_bounded(&funcs, &workloads, SimConfig::default());
    let (bad_out, _) = run_bounded(&physical, &workloads, SimConfig::default());
    assert_ne!(
        ref_out, bad_out,
        "a live-across value in a shared register must be observably clobbered"
    );
}

#[test]
fn static_verifier_rejects_broken_palettes() {
    use regbal_core::verify::{check_thread, VerifyError};
    use regbal_core::{LiveMap, ThreadAlloc};
    use regbal_analysis::ProgramInfo;

    let f = regbal_ir::parse_func(
        "func f {\nbb0:\n v0 = mov 1\n ctx\n v1 = add v0, 1\n store scratch[v1+0], v0\n halt\n}",
    )
    .unwrap();
    let info = ProgramInfo::compute(&f);
    let live = std::sync::Arc::new(LiveMap::compute(&info));

    // v0 is boundary; a coloring that parks it in the shared palette
    // (color 1 with max_pr = 1 means color >= pr) must be rejected at
    // construction time.
    let bad = std::panic::catch_unwind(|| {
        ThreadAlloc::new(live.clone(), &[Some(1), Some(0)], 1, 2)
    });
    assert!(bad.is_err(), "boundary node with shared color must panic");

    // And a correct one passes the verifier.
    let good = ThreadAlloc::new(live, &[Some(0), Some(1)], 1, 2);
    assert_eq!(check_thread(&good), Ok(()));
    let _ = VerifyError::PaletteOverlap(0); // exercise the type
}
