//! Seeded random structured-program generator for property tests.
//!
//! Generated programs are acyclic (branches only jump forward), define
//! every register before use (a preamble initialises the whole pool),
//! confine memory traffic to a per-slot scratch window, and end by
//! dumping the pool to memory — so two executions are comparable by
//! memory snapshot and always terminate.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use regbal_ir::{BinOp, BlockId, Cond, Func, FuncBuilder, MemSpace, Operand, UnOp, VReg};

/// Tunable size knobs for the generator.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of non-preamble blocks (≥ 1).
    pub blocks: usize,
    /// Register pool size (≥ 2).
    pub pool: usize,
    /// Maximum instructions per block.
    pub block_len: usize,
    /// Wrap the whole body in a bounded counting loop (exercises
    /// back-edge liveness and split moves on loop edges).
    pub outer_loop: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            blocks: 5,
            pool: 8,
            block_len: 8,
            outer_loop: false,
        }
    }
}

/// Builds a random program. The same `seed` and `config` always produce
/// the same structure; `slot_base` only changes the memory-window base
/// immediate, so programs for different slots are structurally
/// identical (as the SRA rewrite requires).
pub fn random_program(seed: u64, slot_base: u32, config: GenConfig) -> Func {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = FuncBuilder::new("prop");

    let body: Vec<BlockId> = (0..config.blocks).map(|_| b.new_block()).collect();
    let dump = b.new_block();

    // Preamble: define the pool, the memory base register, and (for
    // looped programs) the trip counter.
    let base = b.imm(slot_base as i64);
    let pool: Vec<VReg> = (0..config.pool)
        .map(|i| b.imm(rng.random_range(0..1000) + i as i64))
        .collect();
    let trips = b.imm(3);
    b.jump(body[0]);

    for (bi, &block) in body.iter().enumerate() {
        b.switch_to(block);
        let n = rng.random_range(1..=config.block_len);
        for _ in 0..n {
            let pick = |rng: &mut StdRng| pool[rng.random_range(0..config.pool)];
            match rng.random_range(0..12u32) {
                0..=5 => {
                    let op = BinOp::ALL[rng.random_range(0..BinOp::ALL.len())];
                    let dst = pick(&mut rng);
                    let lhs = pick(&mut rng);
                    let rhs = if rng.random_bool(0.5) {
                        Operand::from(pick(&mut rng))
                    } else {
                        Operand::Imm(rng.random_range(0..64))
                    };
                    b.bin_to(op, dst, lhs, rhs);
                }
                6 => {
                    let op = UnOp::ALL[rng.random_range(0..UnOp::ALL.len())];
                    let dst = pick(&mut rng);
                    let src = Operand::from(pick(&mut rng));
                    b.un_to(op, dst, src);
                }
                7 => {
                    let dst = pick(&mut rng);
                    b.load_to(dst, MemSpace::Scratch, base, rng.random_range(0..64) * 4);
                }
                8 => {
                    let src = pick(&mut rng);
                    b.store(MemSpace::Scratch, base, rng.random_range(0..64) * 4, src);
                }
                9 => {
                    // A small burst exercises multi-def instructions.
                    let n = rng.random_range(2..=4.min(config.pool));
                    let mut dsts: Vec<VReg> = Vec::new();
                    while dsts.len() < n {
                        let v = pick(&mut rng);
                        if !dsts.contains(&v) {
                            dsts.push(v);
                        }
                    }
                    b.emit(regbal_ir::Inst::LoadBurst {
                        dsts: dsts.into_iter().map(regbal_ir::Reg::Virt).collect(),
                        base: regbal_ir::Reg::Virt(base),
                        offset: rng.random_range(0..32) * 4,
                        space: MemSpace::Scratch,
                    });
                }
                10 => b.ctx(),
                _ => b.nop(),
            }
        }
        // Forward-only control flow keeps the program terminating.
        let next = |rng: &mut StdRng| {
            if bi + 1 < config.blocks {
                body[rng.random_range(bi + 1..config.blocks)]
            } else {
                dump
            }
        };
        if rng.random_bool(0.5) && bi + 1 < config.blocks {
            let cond = Cond::ALL[rng.random_range(0..Cond::ALL.len())];
            let lhs = pool[rng.random_range(0..config.pool)];
            let taken = next(&mut rng);
            let fall = next(&mut rng);
            b.branch(cond, lhs, Operand::Imm(rng.random_range(0..32)), taken, fall);
        } else {
            b.jump(next(&mut rng));
        }
    }

    // Dump: make every pool value observable. With an outer loop, the
    // dump doubles as the loop latch: pool values are live around the
    // back edge, so every register is loop-carried.
    b.switch_to(dump);
    for (i, &v) in pool.iter().enumerate() {
        b.store(MemSpace::Scratch, base, 0x200 + (i as i64) * 4, v);
    }
    b.iter_end();
    if config.outer_loop {
        let exit = b.new_block();
        b.sub_to(trips, trips, Operand::Imm(1));
        b.branch(Cond::Ne, trips, Operand::Imm(0), body[0], exit);
        b.switch_to(exit);
        b.store(MemSpace::Scratch, base, 0x1f0, trips);
        b.halt();
    } else {
        b.halt();
    }
    b.build().expect("generated program must be valid")
}
