//! Shared helpers for the cross-crate integration tests.
#![allow(dead_code)] // each test binary uses a different subset

pub mod gen;

use regbal_ir::{Func, MemSpace};
use regbal_sim::{RunReport, SimConfig, Simulator, StopWhen};
use regbal_workloads::Workload;

/// Builds `n` instances of the same kernel bound to slots `0..n`.
pub fn slot_variants(kernel: regbal_workloads::Kernel, n: usize, packets: u32) -> Vec<Workload> {
    (0..n).map(|s| Workload::new(kernel, s, packets)).collect()
}

/// Runs the given per-thread functions against the given workloads'
/// memory images **to completion** (every thread halts, so the output
/// does not depend on where an iteration-count stop lands in the
/// interleaving) and returns the concatenated output regions plus the
/// run report.
pub fn run_threads(
    funcs: &[Func],
    workloads: &[Workload],
    packets: u64,
    config: SimConfig,
) -> (Vec<u8>, RunReport) {
    assert_eq!(funcs.len(), workloads.len());
    let _ = packets;
    let mut sim = Simulator::new(config);
    for w in workloads {
        w.prepare(sim.memory_mut(), 0xBEEF + w.slot as u64);
    }
    for f in funcs {
        sim.add_thread(f.clone());
    }
    let report = sim.run(StopWhen::Iterations(u64::MAX));
    assert!(
        report.threads.iter().all(|t| t.halted),
        "a thread failed to halt within the cycle budget"
    );
    let mut out = Vec::new();
    for w in workloads {
        let (addr, len) = w.output_region();
        out.extend(sim.memory().read_bytes(MemSpace::Scratch, addr, len));
    }
    (out, report)
}

/// Reference semantics: every thread runs its virtual-register program.
pub fn run_reference(workloads: &[Workload], packets: u64) -> (Vec<u8>, RunReport) {
    let funcs: Vec<Func> = workloads.iter().map(|w| w.func.clone()).collect();
    run_threads(&funcs, workloads, packets, SimConfig::default())
}
