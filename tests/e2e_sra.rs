//! End-to-end symmetric allocation: four threads of the same kernel,
//! allocated by the paper's algorithm, must compute exactly what the
//! virtual-register reference computes — with zero watchdog violations.

mod common;

use common::{run_reference, run_threads, slot_variants};
use regbal_core::allocate_sra;
use regbal_sim::SimConfig;
use regbal_workloads::Kernel;

const NTHD: usize = 4;
const NREG: usize = 128;
const PACKETS: u32 = 5;

fn sra_roundtrip(kernel: Kernel) {
    let workloads = slot_variants(kernel, NTHD, PACKETS);
    let sra = allocate_sra(&workloads[0].func, NTHD, NREG)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    assert!(
        sra.total_registers() <= NREG,
        "{}: {} registers",
        kernel.name(),
        sra.total_registers()
    );

    let multi = sra.to_multi();
    let funcs: Vec<_> = workloads.iter().map(|w| w.func.clone()).collect();
    let physical = multi.rewrite_funcs(&funcs);
    for f in &physical {
        assert_eq!(f.num_vregs, 0, "{}: leftover virtual registers", kernel.name());
    }

    let layout = multi.layout();
    let config = SimConfig {
        private_ranges: (0..NTHD).map(|t| layout.private_range(t)).collect(),
        ..SimConfig::default()
    };

    let (ref_out, ref_report) = run_reference(&workloads, PACKETS as u64);
    let (phys_out, phys_report) = run_threads(&physical, &workloads, PACKETS as u64, config);

    assert!(
        phys_report.violations.is_empty(),
        "{}: register-safety violations {:?}",
        kernel.name(),
        &phys_report.violations[..phys_report.violations.len().min(3)]
    );
    assert_eq!(
        ref_out,
        phys_out,
        "{}: allocated build diverged from reference",
        kernel.name()
    );
    for t in 0..NTHD {
        assert_eq!(
            ref_report.threads[t].iterations, phys_report.threads[t].iterations,
            "{}: thread {t} iteration mismatch",
            kernel.name()
        );
    }
}

#[test]
fn sra_md5() {
    sra_roundtrip(Kernel::Md5);
}

#[test]
fn sra_fir2dim() {
    sra_roundtrip(Kernel::Fir2dim);
}

#[test]
fn sra_frag() {
    sra_roundtrip(Kernel::Frag);
}

#[test]
fn sra_crc() {
    sra_roundtrip(Kernel::Crc);
}

#[test]
fn sra_drr() {
    sra_roundtrip(Kernel::Drr);
}

#[test]
fn sra_reed() {
    sra_roundtrip(Kernel::Reed);
}

#[test]
fn sra_url() {
    sra_roundtrip(Kernel::Url);
}

#[test]
fn sra_l2l3fwd_rx() {
    sra_roundtrip(Kernel::L2l3fwdRx);
}

#[test]
fn sra_l2l3fwd_tx() {
    sra_roundtrip(Kernel::L2l3fwdTx);
}

#[test]
fn sra_wraps_rx() {
    sra_roundtrip(Kernel::WrapsRx);
}

#[test]
fn sra_wraps_tx() {
    sra_roundtrip(Kernel::WrapsTx);
}

/// A tight register file forces sharing and splitting; the result must
/// still be exact.
#[test]
fn sra_md5_tight_file() {
    let workloads = slot_variants(Kernel::Md5, NTHD, 3);
    let bounds = regbal_core::estimate_bounds(&regbal_analysis::ProgramInfo::compute(
        &workloads[0].func,
    ))
    .bounds;
    // Choose a file size between the trivial demand and the floor.
    let floor = NTHD * bounds.min_pr + bounds.min_r.saturating_sub(bounds.min_pr);
    let trivial = NTHD * bounds.max_pr + (bounds.max_r - bounds.max_pr);
    let nreg = floor + (trivial - floor) / 3;
    let sra = match allocate_sra(&workloads[0].func, NTHD, nreg) {
        Ok(s) => s,
        Err(e) => panic!("tight allocation failed at nreg={nreg}: {e}"),
    };
    assert!(sra.total_registers() <= nreg);

    let multi = sra.to_multi();
    let funcs: Vec<_> = workloads.iter().map(|w| w.func.clone()).collect();
    let physical = multi.rewrite_funcs(&funcs);
    let layout = multi.layout();
    let config = SimConfig {
        private_ranges: (0..NTHD).map(|t| layout.private_range(t)).collect(),
        ..SimConfig::default()
    };
    let (ref_out, _) = run_reference(&workloads, 3);
    let (phys_out, report) = run_threads(&physical, &workloads, 3, config);
    assert!(report.violations.is_empty());
    assert_eq!(ref_out, phys_out);
}
