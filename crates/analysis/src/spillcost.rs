//! Static spill costs: which virtual register is cheapest to evict.
//!
//! The cost of spilling a value is the memory traffic the spill code
//! adds: one store after each definition and one load before each use.
//! A static occurrence inside a loop executes once per trip, so
//! occurrences are weighted by `WEIGHT_BASE ^ loop_depth` — the classic
//! Chaitin/Briggs estimate, here with loop depth recovered from the
//! CFG's natural loops (back edges found via dominators).
//!
//! Ordering is fully deterministic: ties on cost break on the register
//! id, ascending, so every consumer (the spill loop of `regbal-core`,
//! the scratchpad packer of the ladder) evicts candidates in one
//! reproducible order.

use regbal_ir::{BlockId, Func, Reg};

/// Per-occurrence weight multiplier per loop-nesting level.
const WEIGHT_BASE: u64 = 10;

/// Loop depths deeper than this saturate (keeps the weights far from
/// `u64` overflow even on adversarial CFGs).
const MAX_DEPTH: u32 = 8;

/// Per-virtual-register static spill costs of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillCosts {
    costs: Vec<u64>,
    depths: Vec<u32>,
}

impl SpillCosts {
    /// Computes the costs for `func`.
    ///
    /// # Panics
    ///
    /// Panics if `func` fails [`Func::validate`].
    pub fn compute(func: &Func) -> SpillCosts {
        func.validate().expect("spill costs require a valid function");
        let depths = loop_depths(func);
        let reachable = func.reachable();
        let mut costs = vec![0u64; func.num_vregs as usize];
        let mut bump = |r: Reg, weight: u64| {
            if let Reg::Virt(v) = r {
                costs[v.index()] = costs[v.index()].saturating_add(weight);
            }
        };
        for (bid, block) in func.iter_blocks() {
            if !reachable[bid.index()] {
                // Dead code never executes its spill code either.
                continue;
            }
            let weight = WEIGHT_BASE.pow(depths[bid.index()].min(MAX_DEPTH));
            for inst in &block.insts {
                for r in inst.defs() {
                    bump(r, weight);
                }
                for r in inst.uses() {
                    bump(r, weight);
                }
            }
            for r in block.term.uses() {
                bump(r, weight);
            }
        }
        SpillCosts { costs, depths }
    }

    /// The spill cost of virtual register `v` (0 for a register with no
    /// occurrences — nothing to spill).
    pub fn cost(&self, v: u32) -> u64 {
        self.costs.get(v as usize).copied().unwrap_or(0)
    }

    /// The loop-nesting depth of `block` (0 outside any loop).
    pub fn loop_depth(&self, block: BlockId) -> u32 {
        self.depths.get(block.index()).copied().unwrap_or(0)
    }

    /// Number of virtual registers covered.
    pub fn num_vregs(&self) -> usize {
        self.costs.len()
    }

    /// The deterministic eviction key of `v`: candidates are evicted in
    /// ascending `(cost, id)` order.
    pub fn key(&self, v: u32) -> (u64, u32) {
        (self.cost(v), v)
    }
}

/// Loop depth per block: the number of natural-loop bodies containing
/// it. Back edges are CFG edges whose target dominates their source;
/// each back edge `t -> h` contributes the standard natural-loop body
/// (every block that reaches `t` without passing through `h`, plus `h`).
fn loop_depths(func: &Func) -> Vec<u32> {
    let n = func.num_blocks();
    let preds = func.predecessors();
    let reachable = func.reachable();
    let idom = dominators(func, &preds, &reachable);
    let mut depth = vec![0u32; n];
    for (bid, block) in func.iter_blocks() {
        if !reachable[bid.index()] {
            continue;
        }
        for succ in block.term.successors() {
            if dominates(&idom, succ, bid) {
                for b in natural_loop(&preds, succ, bid) {
                    depth[b.index()] += 1;
                }
            }
        }
    }
    depth
}

/// Immediate dominators by the iterative Cooper–Harvey–Kennedy scheme
/// over a reverse-postorder walk. `idom[i]` is `usize::MAX` for
/// unreachable blocks; the entry dominates itself.
fn dominators(func: &Func, preds: &[Vec<BlockId>], reachable: &[bool]) -> Vec<usize> {
    let n = func.num_blocks();
    // Reverse postorder over reachable blocks.
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 unvisited, 1 open, 2 done
    let mut stack = vec![(func.entry, false)];
    while let Some((b, expanded)) = stack.pop() {
        let i = b.index();
        if expanded {
            state[i] = 2;
            order.push(b);
            continue;
        }
        if state[i] != 0 {
            continue;
        }
        state[i] = 1;
        stack.push((b, true));
        for succ in func.block(b).term.successors() {
            if state[succ.index()] == 0 {
                stack.push((succ, false));
            }
        }
    }
    order.reverse();
    let mut rpo_num = vec![usize::MAX; n];
    for (k, b) in order.iter().enumerate() {
        rpo_num[b.index()] = k;
    }

    let mut idom = vec![usize::MAX; n];
    idom[func.entry.index()] = func.entry.index();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let mut new = usize::MAX;
            for &p in &preds[b.index()] {
                if !reachable[p.index()] || idom[p.index()] == usize::MAX {
                    continue;
                }
                new = if new == usize::MAX {
                    p.index()
                } else {
                    intersect(&idom, &rpo_num, new, p.index())
                };
            }
            if new != usize::MAX && idom[b.index()] != new {
                idom[b.index()] = new;
                changed = true;
            }
        }
    }
    idom
}

/// The nearest common dominator of two blocks (by walking idom chains
/// in reverse-postorder height).
fn intersect(idom: &[usize], rpo_num: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo_num[a] > rpo_num[b] {
            a = idom[a];
        }
        while rpo_num[b] > rpo_num[a] {
            b = idom[b];
        }
    }
    a
}

/// Whether `a` dominates `b` (both reachable).
fn dominates(idom: &[usize], a: BlockId, b: BlockId) -> bool {
    let target = a.index();
    let mut cur = b.index();
    if idom[cur] == usize::MAX {
        return false;
    }
    loop {
        if cur == target {
            return true;
        }
        let up = idom[cur];
        if up == cur {
            return false; // reached the entry
        }
        cur = up;
    }
}

/// The body of the natural loop of back edge `tail -> head`.
fn natural_loop(preds: &[Vec<BlockId>], head: BlockId, tail: BlockId) -> Vec<BlockId> {
    let mut body = vec![head];
    let mut seen = vec![false; preds.len()];
    seen[head.index()] = true;
    let mut stack = Vec::new();
    if !seen[tail.index()] {
        seen[tail.index()] = true;
        body.push(tail);
        stack.push(tail);
    }
    while let Some(b) = stack.pop() {
        for &p in &preds[b.index()] {
            if !seen[p.index()] {
                seen[p.index()] = true;
                body.push(p);
                stack.push(p);
            }
        }
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::parse_func;

    #[test]
    fn straight_line_counts_occurrences() {
        // v0: def + 2 uses = 3; v1: def + 1 use = 2; v2: def = 1.
        let f = parse_func(
            "func f {\nbb0:\n v0 = mov 1\n v1 = add v0, 2\n v2 = add v0, 3\n store scratch[v1+0], v2\n halt\n}",
        )
        .unwrap();
        let c = SpillCosts::compute(&f);
        assert_eq!(c.cost(0), 3);
        assert_eq!(c.cost(1), 2);
        assert_eq!(c.cost(2), 2);
        assert_eq!(c.loop_depth(regbal_ir::BlockId(0)), 0);
    }

    #[test]
    fn loop_bodies_weigh_more() {
        // v0 lives in the loop (depth 1), v1 only outside (depth 0):
        // the cheap candidate must be v1 even though it has more
        // occurrences at depth 0.
        let f = parse_func(
            "func f {\nbb0:\n v0 = mov 0\n v1 = mov 1\n v1 = add v1, 1\n v1 = add v1, 1\n jump bb1\nbb1:\n v0 = add v0, 1\n iter_end\n bltu v0, 10, bb1, bb2\nbb2:\n store scratch[v1+0], v0\n halt\n}",
        )
        .unwrap();
        let c = SpillCosts::compute(&f);
        assert_eq!(c.loop_depth(regbal_ir::BlockId(1)), 1);
        assert_eq!(c.loop_depth(regbal_ir::BlockId(0)), 0);
        assert_eq!(c.loop_depth(regbal_ir::BlockId(2)), 0);
        // v0: 1 (def bb0) + 10*(def+use) + 10*(branch use) + 1 (store use)
        assert_eq!(c.cost(0), 1 + 20 + 10 + 1);
        // v1: 5 defs/uses at depth 0 + store base use.
        assert_eq!(c.cost(1), 6);
        assert!(c.key(1) < c.key(0));
    }

    #[test]
    fn nested_loops_compound_the_weight() {
        let f = parse_func(
            "func f {\nbb0:\n v0 = mov 0\n jump bb1\nbb1:\n v1 = mov 0\n jump bb2\nbb2:\n v1 = add v1, 1\n bltu v1, 4, bb2, bb3\nbb3:\n v0 = add v0, 1\n bltu v0, 4, bb1, bb4\nbb4:\n halt\n}",
        )
        .unwrap();
        let c = SpillCosts::compute(&f);
        assert_eq!(c.loop_depth(regbal_ir::BlockId(2)), 2);
        assert_eq!(c.loop_depth(regbal_ir::BlockId(1)), 1);
        assert_eq!(c.loop_depth(regbal_ir::BlockId(3)), 1);
        // v1 in the inner loop: def@1 (10) + def+use@2 (200) + 2
        // branch uses... exact arithmetic: bb1 def = 10; bb2 def+use =
        // 200; bb2 branch use = 100. Total 310.
        assert_eq!(c.cost(1), 10 + 200 + 100);
    }

    #[test]
    fn ties_break_on_register_id() {
        let f = parse_func(
            "func f {\nbb0:\n v1 = mov 1\n v0 = mov 2\n store scratch[v0+0], v1\n halt\n}",
        )
        .unwrap();
        let c = SpillCosts::compute(&f);
        assert_eq!(c.cost(0), c.cost(1));
        assert!(c.key(0) < c.key(1), "equal costs must order by id");
    }

    #[test]
    fn unreachable_blocks_are_ignored() {
        let f = parse_func(
            "func f {\nbb0:\n v0 = mov 1\n halt\nbb1:\n v0 = add v0, 1\n jump bb1\n}",
        )
        .unwrap();
        let c = SpillCosts::compute(&f);
        // Only the reachable def counts; the dead self-loop must not
        // inflate the cost (or crash the dominator walk).
        assert_eq!(c.cost(0), 1);
    }

    #[test]
    fn out_of_range_queries_are_zero() {
        let f = parse_func("func f {\nbb0:\n v0 = mov 1\n halt\n}").unwrap();
        let c = SpillCosts::compute(&f);
        assert_eq!(c.num_vregs(), 1);
        assert_eq!(c.cost(99), 0);
        assert_eq!(c.loop_depth(regbal_ir::BlockId(99)), 0);
    }
}
