//! Non-Switch Regions (NSRs) and boundary/internal node classification.
//!
//! A *non-switch region* is a maximal connected sub-graph of the CFG
//! containing no context-switch instruction (paper §3.1). NSRs are
//! delimited by CSBs and by program entry/exit. We construct them at
//! program-point granularity — blocks containing a CSB are split
//! logically, exactly like BB5/BB7 in the paper's Figure 4, without
//! mutating the IR.

use crate::csb::Csbs;
use crate::liveness::Liveness;
use crate::points::{Point, PointMap};
use regbal_ir::{BitSet, Func};
use std::fmt;

/// Identifier of a non-switch region (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

impl RegionId {
    /// Dense index of the region.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nsr{}", self.0)
    }
}

/// The non-switch regions of a function.
#[derive(Debug, Clone)]
pub struct Nsr {
    region_of: Vec<Option<RegionId>>,
    sizes: Vec<usize>,
}

impl Nsr {
    /// Builds the regions: connected components (treating the CFG as
    /// undirected) of the non-CSB program points.
    pub fn compute(func: &Func, pmap: &PointMap, csbs: &Csbs) -> Nsr {
        let np = pmap.num_points();
        let mut uf = UnionFind::new(np);
        for p in pmap.points() {
            if csbs.is_csb(p) {
                continue;
            }
            for &s in pmap.succs(p) {
                if !csbs.is_csb(s) {
                    uf.union(p.index(), s.index());
                }
            }
        }
        let _ = func;
        // Densely number the component roots of non-CSB points.
        let mut root_to_region: Vec<Option<RegionId>> = vec![None; np];
        let mut region_of: Vec<Option<RegionId>> = vec![None; np];
        let mut sizes: Vec<usize> = Vec::new();
        for p in pmap.points() {
            if csbs.is_csb(p) {
                continue;
            }
            let root = uf.find(p.index());
            let region = *root_to_region[root].get_or_insert_with(|| {
                sizes.push(0);
                RegionId((sizes.len() - 1) as u32)
            });
            sizes[region.index()] += 1;
            region_of[p.index()] = Some(region);
        }
        Nsr { region_of, sizes }
    }

    /// The region of a point; `None` for CSB points (they are region
    /// boundaries).
    pub fn region_of(&self, p: Point) -> Option<RegionId> {
        self.region_of[p.index()]
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.sizes.len()
    }

    /// Region sizes in program points.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Average region size in points (0.0 when there are no regions).
    pub fn avg_size(&self) -> f64 {
        if self.sizes.is_empty() {
            0.0
        } else {
            self.sizes.iter().sum::<usize>() as f64 / self.sizes.len() as f64
        }
    }

    /// Classifies virtual registers as boundary nodes: live across some
    /// CSB, or live at program entry (a value a thread expects in a
    /// register before it first runs can never share).
    pub fn boundary_vregs(
        &self,
        func: &Func,
        liveness: &Liveness,
        csbs: &Csbs,
        pmap: &PointMap,
    ) -> BitSet {
        let _ = func;
        let mut boundary = BitSet::new(liveness.num_vregs());
        for (_, across) in csbs.iter() {
            boundary.union_with(across);
        }
        boundary.union_with(liveness.live_in(pmap.entry()));
        boundary
    }

    /// The set of regions each virtual register is live in (considering
    /// live-in points and definition points; CSB points contribute
    /// nothing). Internal nodes are live in at most one region —
    /// the paper's Claim 2 rests on this.
    pub fn vreg_regions(&self, liveness: &Liveness, pmap: &PointMap) -> Vec<BitSet> {
        let nv = liveness.num_vregs();
        let mut regions = vec![BitSet::new(self.num_regions()); nv];
        for p in pmap.points() {
            let Some(region) = self.region_of(p) else {
                continue;
            };
            for v in liveness.live_in(p).iter() {
                regions[v].insert(region.index());
            }
            for d in liveness.defs_at(p) {
                regions[d.index()].insert(region.index());
            }
        }
        regions
    }
}

/// Minimal union-find with path halving and union by size.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::parse_func;

    fn analyze(src: &str) -> (regbal_ir::Func, PointMap, Liveness, Csbs, Nsr) {
        let f = parse_func(src).unwrap();
        let pm = PointMap::new(&f);
        let lv = Liveness::compute(&f, &pm);
        let cs = Csbs::compute(&f, &pm, &lv);
        let nsr = Nsr::compute(&f, &pm, &cs);
        (f, pm, lv, cs, nsr)
    }

    #[test]
    fn straight_line_split_by_ctx() {
        // p0 nop | p1 ctx | p2 nop | p3 halt  → two regions {p0}, {p2,p3}
        let (_, pm, _, _, nsr) = analyze("func f {\nbb0:\n nop\n ctx\n nop\n halt\n}");
        assert_eq!(nsr.num_regions(), 2);
        assert!(nsr.region_of(Point(1)).is_none());
        assert_eq!(nsr.region_of(Point(2)), nsr.region_of(Point(3)));
        assert_ne!(nsr.region_of(Point(0)), nsr.region_of(Point(2)));
        let _ = pm;
    }

    #[test]
    fn split_block_parts_can_rejoin_like_paper_bb7() {
        // A loop whose body contains a CSB: the part after the CSB flows
        // back to the part before it through the loop backedge, so both
        // sides of the split block join the same region (paper Fig. 4,
        // BB7).
        let (_, _, _, _, nsr) = analyze(
            "func f {\nbb0:\n v0 = mov 4\n jump bb1\nbb1:\n v0 = sub v0, 1\n ctx\n bne v0, 0, bb1, bb2\nbb2:\n halt\n}",
        );
        // p2 (sub) is reachable from p4 (branch) via the backedge, so the
        // two halves of the split loop body merge; the exit block hangs
        // off the branch directly, giving a single region overall.
        assert_eq!(nsr.region_of(Point(2)), nsr.region_of(Point(4)));
        assert_eq!(nsr.num_regions(), 1);
        assert!(nsr.region_of(Point(3)).is_none(), "the ctx is a boundary");
    }

    #[test]
    fn frag_like_example_has_three_regions() {
        // Mirrors the shape of the paper's Figure 4: an IP-checksum loop
        // with reads (CSBs) in the loop and a ctx before the exit code.
        let src = "
func frag {
bb0:
    v0 = mov 0        ; sum
    v1 = mov 256      ; buf
    v2 = mov 16       ; len
    jump bb1
bb1:
    bne v2, 0, bb2, bb3
bb2:
    v3 = load sram[v1+0]   ; read tmp1 (CSB)
    v0 = add v0, v3
    v1 = add v1, 4
    v2 = sub v2, 1
    ctx
    jump bb1
bb3:
    v4 = load sram[v1+0]   ; read tmp2 (CSB)
    v0 = add v0, v4
    store scratch[v1+0], v0
    halt
}";
        let (_, _, lv, cs, nsr) = analyze(src);
        assert_eq!(cs.len(), 4, "two loads, one ctx, one store");
        // Regions: entry+loop-head, loop tail between load and ctx
        // (which rejoins the head through bb1), and the exit tail.
        assert!(nsr.num_regions() >= 2);
        let regions = nsr.vreg_regions(&lv, &crate::PointMap::new(&parse_func(src).unwrap()));
        // tmp1 (v3) and tmp2 (v4) are internal to single regions.
        assert_eq!(regions[3].count(), 1);
        assert_eq!(regions[4].count(), 1);
    }

    #[test]
    fn boundary_classification() {
        let (f, pm, lv, cs, nsr) = analyze(
            "func f {\nbb0:\n v0 = mov 1\n ctx\n v1 = add v0, 1\n store scratch[v1+0], v0\n halt\n}",
        );
        let b = nsr.boundary_vregs(&f, &lv, &cs, &pm);
        assert!(b.contains(0), "v0 live across ctx");
        assert!(!b.contains(1), "v1 internal");
    }

    #[test]
    fn entry_live_values_are_boundary() {
        let (f, pm, lv, cs, nsr) =
            analyze("func f {\nbb0:\n v1 = add v0, 1\n store scratch[v1+0], v1\n halt\n}");
        let b = nsr.boundary_vregs(&f, &lv, &cs, &pm);
        assert!(b.contains(0), "use-before-def value live at entry");
        assert!(!b.contains(1));
    }

    #[test]
    fn internal_nodes_live_in_single_region() {
        let (_, pm, lv, cs, nsr) = analyze(
            "func f {\nbb0:\n v0 = mov 1\n v1 = add v0, 1\n ctx\n v2 = mov 2\n store scratch[v2+0], v2\n halt\n}",
        );
        let regions = nsr.vreg_regions(&lv, &pm);
        for (v, r) in regions.iter().enumerate().take(3) {
            assert!(r.count() <= 1, "v{v} spans regions");
        }
        let _ = cs;
    }

    #[test]
    fn avg_size_and_sizes() {
        let (_, _, _, _, nsr) = analyze("func f {\nbb0:\n nop\n ctx\n nop\n nop\n halt\n}");
        assert_eq!(nsr.num_regions(), 2);
        let mut sz = nsr.sizes().to_vec();
        sz.sort_unstable();
        assert_eq!(sz, vec![1, 3]);
        assert!((nsr.avg_size() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_csb_means_one_region() {
        let (_, _, _, cs, nsr) = analyze("func f {\nbb0:\n v0 = mov 1\n v0 = add v0, 1\n halt\n}");
        assert!(cs.is_empty());
        assert_eq!(nsr.num_regions(), 1);
    }
}
