//! Dense numbering of program points.

use regbal_ir::{BlockId, Func, Inst, Reg, Terminator, VReg};
use std::fmt;

/// A program point: one instruction slot of the function, including
/// block terminators. Points are numbered densely in block order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point(pub u32);

impl Point {
    /// Dense index of the point.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// What occupies a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot<'a> {
    /// A body instruction.
    Inst(&'a Inst),
    /// The block terminator.
    Term(&'a Terminator),
}

impl Slot<'_> {
    /// The registers defined at this slot (terminators never define
    /// registers; burst loads define several).
    pub fn defs(&self) -> Vec<Reg> {
        match self {
            Slot::Inst(i) => i.defs().collect(),
            Slot::Term(_) => Vec::new(),
        }
    }

    /// The virtual registers defined at this slot.
    pub fn defs_vreg(&self) -> Vec<VReg> {
        match self {
            Slot::Inst(i) => i.defs().filter_map(Reg::as_virt).collect(),
            Slot::Term(_) => Vec::new(),
        }
    }

    /// The registers used at this slot.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Slot::Inst(i) => i.uses().collect(),
            Slot::Term(t) => t.uses().collect(),
        }
    }

    /// Whether the slot holds a context-switch instruction. Terminators
    /// never context-switch.
    pub fn is_ctx_switch(&self) -> bool {
        matches!(self, Slot::Inst(i) if i.is_ctx_switch())
    }
}

/// Point numbering for one function, with point-level CFG relations.
#[derive(Debug, Clone)]
pub struct PointMap {
    /// First point of each block (index = block id); one extra sentinel
    /// entry holding the total number of points.
    block_start: Vec<u32>,
    /// Owning block of each point.
    block_of: Vec<BlockId>,
    /// Point-level successors.
    succs: Vec<Vec<Point>>,
    /// Point-level predecessors.
    preds: Vec<Vec<Point>>,
    entry: Point,
}

impl PointMap {
    /// Numbers the points of `func` and records successor/predecessor
    /// relations.
    pub fn new(func: &Func) -> PointMap {
        let mut block_start = Vec::with_capacity(func.num_blocks() + 1);
        let mut block_of = Vec::new();
        let mut next = 0u32;
        for (id, block) in func.iter_blocks() {
            block_start.push(next);
            for _ in 0..block.len() {
                block_of.push(id);
            }
            next += block.len() as u32;
        }
        block_start.push(next);
        let n = next as usize;

        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, block) in func.iter_blocks() {
            let start = block_start[id.index()];
            let term = start + block.len() as u32 - 1;
            for p in start..term {
                succs[p as usize].push(Point(p + 1));
                preds[(p + 1) as usize].push(Point(p));
            }
            for succ in block.term.successors() {
                let sp = Point(block_start[succ.index()]);
                succs[term as usize].push(sp);
                preds[sp.index()].push(Point(term));
            }
        }
        let entry = Point(block_start[func.entry.index()]);
        PointMap {
            block_start,
            block_of,
            succs,
            preds,
            entry,
        }
    }

    /// Total number of points.
    pub fn num_points(&self) -> usize {
        self.block_of.len()
    }

    /// The first point executed by the function.
    pub fn entry(&self) -> Point {
        self.entry
    }

    /// The point of instruction `idx` in `block`; `idx == insts.len()`
    /// addresses the terminator.
    ///
    /// # Panics
    ///
    /// Panics if the location is out of range.
    pub fn point(&self, block: BlockId, idx: usize) -> Point {
        let p = self.block_start[block.index()] + idx as u32;
        assert!(
            p < self.block_start[block.index() + 1],
            "instruction index {idx} out of range for {block}"
        );
        Point(p)
    }

    /// Inverse of [`point`](Self::point): the block and instruction index
    /// of a point.
    pub fn location(&self, p: Point) -> (BlockId, usize) {
        let block = self.block_of[p.index()];
        (block, (p.0 - self.block_start[block.index()]) as usize)
    }

    /// The block containing a point.
    pub fn block_of(&self, p: Point) -> BlockId {
        self.block_of[p.index()]
    }

    /// Whether the point is the terminator of its block.
    pub fn is_terminator(&self, p: Point) -> bool {
        let b = self.block_of[p.index()];
        p.0 + 1 == self.block_start[b.index() + 1]
    }

    /// The slot (instruction or terminator) at a point.
    pub fn slot<'f>(&self, func: &'f Func, p: Point) -> Slot<'f> {
        let (block, idx) = self.location(p);
        let b = func.block(block);
        if idx < b.insts.len() {
            Slot::Inst(&b.insts[idx])
        } else {
            Slot::Term(&b.term)
        }
    }

    /// Successor points (fallthrough within a block, branch targets for
    /// terminators).
    pub fn succs(&self, p: Point) -> &[Point] {
        &self.succs[p.index()]
    }

    /// Predecessor points.
    pub fn preds(&self, p: Point) -> &[Point] {
        &self.preds[p.index()]
    }

    /// Iterates over all points.
    pub fn points(&self) -> impl Iterator<Item = Point> {
        (0..self.num_points() as u32).map(Point)
    }

    /// The half-open point range of a block.
    pub fn block_points(&self, block: BlockId) -> impl Iterator<Item = Point> {
        (self.block_start[block.index()]..self.block_start[block.index() + 1]).map(Point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::parse_func;

    fn sample() -> Func {
        parse_func(
            "func f {\nbb0:\n v0 = mov 1\n bne v0, 0, bb1, bb2\nbb1:\n ctx\n jump bb2\nbb2:\n halt\n}",
        )
        .unwrap()
    }

    #[test]
    fn numbering_and_location() {
        let f = sample();
        let pm = PointMap::new(&f);
        assert_eq!(pm.num_points(), 5);
        assert_eq!(pm.point(BlockId(0), 0), Point(0));
        assert_eq!(pm.point(BlockId(0), 1), Point(1)); // terminator
        assert_eq!(pm.point(BlockId(1), 0), Point(2));
        assert_eq!(pm.location(Point(3)), (BlockId(1), 1));
        assert_eq!(pm.block_of(Point(4)), BlockId(2));
        assert_eq!(pm.entry(), Point(0));
    }

    #[test]
    fn terminator_detection() {
        let f = sample();
        let pm = PointMap::new(&f);
        assert!(!pm.is_terminator(Point(0)));
        assert!(pm.is_terminator(Point(1)));
        assert!(pm.is_terminator(Point(3)));
        assert!(pm.is_terminator(Point(4)));
    }

    #[test]
    fn successor_relations() {
        let f = sample();
        let pm = PointMap::new(&f);
        assert_eq!(pm.succs(Point(0)), &[Point(1)]);
        // branch: taken bb1 (point 2), fallthrough bb2 (point 4)
        assert_eq!(pm.succs(Point(1)), &[Point(2), Point(4)]);
        assert_eq!(pm.succs(Point(3)), &[Point(4)]);
        assert!(pm.succs(Point(4)).is_empty());
        assert_eq!(pm.preds(Point(4)), &[Point(1), Point(3)]);
        assert!(pm.preds(Point(0)).is_empty());
    }

    #[test]
    fn slot_access() {
        let f = sample();
        let pm = PointMap::new(&f);
        assert!(matches!(pm.slot(&f, Point(0)), Slot::Inst(_)));
        assert!(matches!(pm.slot(&f, Point(1)), Slot::Term(_)));
        assert!(pm.slot(&f, Point(2)).is_ctx_switch());
        assert!(!pm.slot(&f, Point(1)).is_ctx_switch());
        assert_eq!(pm.slot(&f, Point(0)).defs_vreg(), vec![VReg(0)]);
        assert_eq!(pm.slot(&f, Point(1)).uses().len(), 1);
    }

    #[test]
    fn block_points_ranges() {
        let f = sample();
        let pm = PointMap::new(&f);
        let b1: Vec<_> = pm.block_points(BlockId(1)).collect();
        assert_eq!(b1, vec![Point(2), Point(3)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn point_out_of_range_panics() {
        let f = sample();
        let pm = PointMap::new(&f);
        pm.point(BlockId(0), 5);
    }
}
