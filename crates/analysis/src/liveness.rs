//! Backward liveness dataflow over virtual registers.

use crate::points::{Point, PointMap};
use regbal_ir::{BitSet, Func, VReg};

/// Per-point live-variable sets.
///
/// `live_in(p)` holds the virtual registers whose value may still be
/// read on some path starting at `p` (before `p` executes); `live_out(p)`
/// the same after `p` executes. Only virtual registers participate —
/// functions already rewritten to physical registers have empty sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<BitSet>,
    live_out: Vec<BitSet>,
    defs: Vec<Vec<VReg>>,
    num_vregs: usize,
}

impl Liveness {
    /// Runs the backward fixpoint over the points of `func`.
    pub fn compute(func: &Func, pmap: &PointMap) -> Liveness {
        let nv = func.num_vregs as usize;
        let np = pmap.num_points();
        let mut uses: Vec<BitSet> = Vec::with_capacity(np);
        let mut defs_bs: Vec<BitSet> = Vec::with_capacity(np);
        let mut defs: Vec<Vec<VReg>> = Vec::with_capacity(np);
        for p in pmap.points() {
            let slot = pmap.slot(func, p);
            let mut u = BitSet::new(nv);
            for r in slot.uses() {
                if let Some(v) = r.as_virt() {
                    u.insert(v.index());
                }
            }
            let mut d = BitSet::new(nv);
            let dv = slot.defs_vreg();
            for &v in &dv {
                d.insert(v.index());
            }
            uses.push(u);
            defs_bs.push(d);
            defs.push(dv);
        }

        let mut live_in = vec![BitSet::new(nv); np];
        let mut live_out = vec![BitSet::new(nv); np];
        // Iterate to fixpoint; visiting points in reverse order converges
        // quickly for the mostly-forward CFGs we build.
        let mut changed = true;
        while changed {
            changed = false;
            for pi in (0..np).rev() {
                let p = Point(pi as u32);
                let mut out = BitSet::new(nv);
                for &s in pmap.succs(p) {
                    out.union_with(&live_in[s.index()]);
                }
                let mut inn = out.clone();
                inn.difference_with(&defs_bs[pi]);
                inn.union_with(&uses[pi]);
                if out != live_out[pi] {
                    live_out[pi] = out;
                    changed = true;
                }
                if inn != live_in[pi] {
                    live_in[pi] = inn;
                    changed = true;
                }
            }
        }
        Liveness {
            live_in,
            live_out,
            defs,
            num_vregs: nv,
        }
    }

    /// Virtual registers live immediately before `p`.
    pub fn live_in(&self, p: Point) -> &BitSet {
        &self.live_in[p.index()]
    }

    /// Virtual registers live immediately after `p`.
    pub fn live_out(&self, p: Point) -> &BitSet {
        &self.live_out[p.index()]
    }

    /// The virtual registers defined at `p` (several for burst loads).
    pub fn defs_at(&self, p: Point) -> &[VReg] {
        &self.defs[p.index()]
    }

    /// Number of virtual registers in the universe of the sets.
    pub fn num_vregs(&self) -> usize {
        self.num_vregs
    }

    /// Whether `v`'s value survives `p` (it is live-out and not freshly
    /// defined at `p`).
    pub fn survives(&self, p: Point, v: VReg) -> bool {
        self.live_out[p.index()].contains(v.index()) && !self.defs[p.index()].contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::parse_func;

    fn analyze(src: &str) -> (regbal_ir::Func, PointMap, Liveness) {
        let f = parse_func(src).unwrap();
        let pm = PointMap::new(&f);
        let lv = Liveness::compute(&f, &pm);
        (f, pm, lv)
    }

    #[test]
    fn straight_line_liveness() {
        // p0: v0 = mov 1;  p1: v1 = add v0, 2;  p2: store [v1], v0;  p3: halt
        let (_, _, lv) = analyze(
            "func f {\nbb0:\n v0 = mov 1\n v1 = add v0, 2\n store scratch[v1+0], v0\n halt\n}",
        );
        assert!(lv.live_in(Point(0)).is_empty());
        assert_eq!(lv.live_out(Point(0)).iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(lv.live_in(Point(2)).iter().collect::<Vec<_>>(), vec![0, 1]);
        assert!(lv.live_out(Point(2)).is_empty());
        assert_eq!(lv.defs_at(Point(1)), &[VReg(1)]);
        assert!(lv.defs_at(Point(2)).is_empty());
    }

    #[test]
    fn loop_carried_value_is_live_around_backedge() {
        let (_, pm, lv) = analyze(
            "func f {\nbb0:\n v0 = mov 8\n jump bb1\nbb1:\n v0 = sub v0, 1\n bne v0, 0, bb1, bb2\nbb2:\n halt\n}",
        );
        // v0 live on the backedge: live_out of the branch point.
        let branch = pm.point(regbal_ir::BlockId(1), 1);
        assert!(lv.live_out(branch).contains(0));
        // and live into bb1.
        let head = pm.point(regbal_ir::BlockId(1), 0);
        assert!(lv.live_in(head).contains(0));
    }

    #[test]
    fn dead_def_not_live_out() {
        let (_, _, lv) = analyze("func f {\nbb0:\n v0 = mov 1\n nop\n halt\n}");
        assert!(lv.live_out(Point(0)).is_empty());
        assert!(!lv.survives(Point(0), VReg(0)));
    }

    #[test]
    fn branch_only_liveness() {
        // value used only on one side of a diamond
        let (_, pm, lv) = analyze(
            "func f {\nbb0:\n v0 = mov 1\n v1 = mov 2\n beq v1, 0, bb1, bb2\nbb1:\n store scratch[v0+0], v0\n jump bb3\nbb2:\n jump bb3\nbb3:\n halt\n}",
        );
        let bb2 = pm.point(regbal_ir::BlockId(2), 0);
        assert!(!lv.live_in(bb2).contains(0), "v0 dead on else path");
        let bb1 = pm.point(regbal_ir::BlockId(1), 0);
        assert!(lv.live_in(bb1).contains(0));
    }

    #[test]
    fn survives_distinguishes_redefinition() {
        // v0 redefined at p1 while old value dead after.
        let (_, _, lv) = analyze(
            "func f {\nbb0:\n v0 = mov 1\n v0 = add v0, 1\n store scratch[v0+0], v0\n halt\n}",
        );
        assert!(lv.live_out(Point(1)).contains(0));
        assert!(!lv.survives(Point(1), VReg(0)), "fresh def, not survival");
        // At p0 the def is also fresh: live-out, but nothing survives.
        assert!(lv.live_out(Point(0)).contains(0));
        assert!(!lv.survives(Point(0), VReg(0)));
        // At p2 (store) the value is consumed and survives nothing.
        assert!(lv.survives(Point(2), VReg(0)) == lv.live_out(Point(2)).contains(0));
    }

    #[test]
    fn use_before_def_is_live_at_entry() {
        let (_, pm, lv) = analyze("func f {\nbb0:\n v1 = add v0, 1\n halt\n}");
        assert!(lv.live_in(pm.entry()).contains(0));
    }

    #[test]
    fn physical_regs_ignored() {
        let (_, _, lv) =
            analyze("func f {\nbb0:\n r0 = mov 1\n r1 = add r0, 2\n halt\n}");
        assert_eq!(lv.num_vregs(), 0);
        assert!(lv.live_in(Point(1)).is_empty());
    }
}
