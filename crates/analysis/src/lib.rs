//! Dataflow analyses for the `regbal` register allocator.
//!
//! Everything the allocator of `regbal-core` needs to know about a
//! thread's program is computed here:
//!
//! * [`PointMap`] — a dense numbering of *program points* (one per
//!   instruction, including block terminators) with CFG successor /
//!   predecessor relations at point granularity;
//! * [`Liveness`] — per-point live-in/live-out sets of virtual registers;
//! * [`Pressure`] — the paper's lower bounds `RegPmax` (maximum number of
//!   co-live values anywhere) and `RegPCSBmax` (maximum number of values
//!   live **across** any context-switch boundary);
//! * [`Csbs`] — the context-switch boundary points and the set of values
//!   live across each;
//! * [`Nsr`] — the *Non-Switch Regions*: maximal connected pieces of the
//!   CFG containing no context switch (paper §3.1), plus the
//!   boundary/internal classification of every virtual register
//!   (paper §3.2);
//! * [`SpillCosts`] — per-virtual-register static spill costs
//!   (loop-depth-weighted occurrence counts with a deterministic
//!   register-id tie-break), the eviction order of the spill loop and
//!   the scratchpad packer in `regbal-core`.
//!
//! The [`ProgramInfo`] bundle computes all of the above in one call.
//!
//! # Example
//!
//! ```
//! use regbal_ir::parse_func;
//! use regbal_analysis::ProgramInfo;
//!
//! let f = parse_func(
//!     "func f {\nbb0:\n v0 = mov 1\n ctx\n v1 = add v0, 2\n store scratch[v1+0], v0\n halt\n}",
//! )?;
//! let info = ProgramInfo::compute(&f);
//! // v0 is live across the `ctx` boundary, v1 is internal.
//! assert!(info.boundary.contains(0));
//! assert!(!info.boundary.contains(1));
//! # Ok::<(), regbal_ir::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csb;
mod liveness;
mod nsr;
mod points;
mod pressure;
mod spillcost;

pub use csb::Csbs;
pub use liveness::Liveness;
pub use nsr::{Nsr, RegionId};
pub use points::{Point, PointMap, Slot};
pub use pressure::Pressure;
pub use spillcost::SpillCosts;

use regbal_ir::{BitSet, Func};

/// All per-program analysis results bundled together.
///
/// This is the input to interference-graph construction
/// (`regbal-igraph`) and to the allocators (`regbal-core`).
#[derive(Debug, Clone)]
pub struct ProgramInfo {
    /// Program-point numbering and CFG relations.
    pub pmap: PointMap,
    /// Per-point liveness sets.
    pub liveness: Liveness,
    /// Context-switch boundaries and live-across sets.
    pub csbs: Csbs,
    /// Non-switch regions and per-point region assignment.
    pub nsr: Nsr,
    /// Virtual registers classified as *boundary nodes* (live across at
    /// least one CSB, or live at program entry). Everything else is an
    /// *internal node*.
    pub boundary: BitSet,
    /// Register-pressure bounds.
    pub pressure: Pressure,
}

impl ProgramInfo {
    /// Runs every analysis on `func`.
    ///
    /// # Panics
    ///
    /// Panics if `func` fails [`Func::validate`].
    pub fn compute(func: &Func) -> ProgramInfo {
        func.validate().expect("analyses require a valid function");
        assert!(
            func.iter_insts().all(|(_, _, i)| !i.is_call()),
            "subroutine calls must be inlined (regbal_ir::inline_module) before analysis"
        );
        let pmap = PointMap::new(func);
        let liveness = Liveness::compute(func, &pmap);
        let csbs = Csbs::compute(func, &pmap, &liveness);
        let nsr = Nsr::compute(func, &pmap, &csbs);
        let boundary = nsr.boundary_vregs(func, &liveness, &csbs, &pmap);
        let pressure = Pressure::compute(func, &pmap, &liveness, &csbs);
        ProgramInfo {
            pmap,
            liveness,
            csbs,
            nsr,
            boundary,
            pressure,
        }
    }

    /// Number of virtual registers in the analysed function.
    pub fn num_vregs(&self) -> usize {
        self.liveness.num_vregs()
    }
}
