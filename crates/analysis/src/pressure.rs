//! Register-pressure bounds: the paper's `RegPmax` and `RegPCSBmax`.

use crate::csb::Csbs;
use crate::liveness::Liveness;
use crate::points::PointMap;
use regbal_ir::Func;

/// The two lower bounds of paper §5:
///
/// * `MinR  = RegPmax` — the maximum number of co-live values at any
///   program point; no allocation can use fewer total registers.
/// * `MinPR = RegPCSBmax` — the maximum number of values live across a
///   single CSB; by Lemma 1 this many *private* registers suffice if
///   enough move instructions are inserted around each CSB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pressure {
    /// `RegPmax`: maximum co-live values at any point.
    pub regp_max: usize,
    /// `RegPCSBmax`: maximum values live across any single CSB
    /// (including the program entry, where entry-live values behave
    /// like live-across values).
    pub regp_csb_max: usize,
}

impl Pressure {
    /// Scans every point of `func`.
    pub fn compute(func: &Func, pmap: &PointMap, liveness: &Liveness, csbs: &Csbs) -> Pressure {
        let mut regp_max = 0;
        for p in pmap.points() {
            // Pressure just before p, and just after p. A value defined
            // at p occupies a register together with everything live-out.
            let before = liveness.live_in(p).count();
            let mut after = liveness.live_out(p).count();
            for d in liveness.defs_at(p) {
                if !liveness.live_out(p).contains(d.index()) {
                    after += 1; // dead def still needs a register at p
                }
            }
            regp_max = regp_max.max(before).max(after);
        }
        let mut regp_csb_max = liveness.live_in(pmap.entry()).count();
        for (_, across) in csbs.iter() {
            regp_csb_max = regp_csb_max.max(across.count());
        }
        let _ = func;
        Pressure {
            regp_max,
            regp_csb_max,
        }
    }

    /// The paper's `MinR` lower bound.
    pub fn min_r(&self) -> usize {
        self.regp_max
    }

    /// The paper's `MinPR` lower bound.
    pub fn min_pr(&self) -> usize {
        self.regp_csb_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::parse_func;

    fn pressure(src: &str) -> Pressure {
        let f = parse_func(src).unwrap();
        let pm = PointMap::new(&f);
        let lv = Liveness::compute(&f, &pm);
        let cs = Csbs::compute(&f, &pm, &lv);
        Pressure::compute(&f, &pm, &lv, &cs)
    }

    #[test]
    fn three_co_live_values() {
        let p = pressure(
            "func f {\nbb0:\n v0 = mov 1\n v1 = mov 2\n v2 = mov 3\n v3 = add v0, v1\n v4 = add v3, v2\n store scratch[v4+0], v4\n halt\n}",
        );
        assert_eq!(p.regp_max, 3); // v0,v1,v2 co-live
    }

    #[test]
    fn csb_pressure_smaller_than_total() {
        // Two values live across the ctx; a third is internal afterwards.
        let p = pressure(
            "func f {\nbb0:\n v0 = mov 1\n v1 = mov 2\n ctx\n v2 = add v0, v1\n v2 = add v2, v0\n store scratch[v2+0], v1\n halt\n}",
        );
        assert_eq!(p.min_pr(), 2, "v0, v1 across the ctx");
        assert_eq!(p.min_r(), 3, "v0, v1, v2 co-live internally");
        assert!(p.min_pr() <= p.min_r());
    }

    #[test]
    fn paper_figure3_thread1_bounds() {
        // The thread-1 example of paper Figure 3: a is live across the
        // ctx_switch; b/c only in between. RegPCSBmax = 1, RegPmax = 2
        // after the paper's own observation that only two variables are
        // ever co-live.
        let src = "
func t1 {
bb0:
    v0 = mov 1            ; a =
    ctx
    beq v0, 0, bb1, bb2
bb1:                       ; then-branch: b=, =a+b, c=
    v1 = mov 2
    v3 = add v0, v1
    v2 = mov 3
    jump bb3
bb2:                       ; else-branch: c=, =a+c, b=
    v2 = mov 4
    v3 = add v0, v2
    v1 = mov 5
    jump bb3
bb3:
    v4 = add v1, v2       ; =b+c
    v5 = load sram[v4+0]
    store scratch[v4+0], v5
    halt
}";
        let p = pressure(src);
        assert_eq!(p.min_pr(), 1, "only `a` is live across the ctx");
        assert_eq!(p.min_r(), 2, "at most two values co-live at a point");
    }

    #[test]
    fn dead_def_counts_at_its_point() {
        let p = pressure("func f {\nbb0:\n v0 = mov 1\n v1 = mov 2\n store scratch[v0+0], v0\n halt\n}");
        // v1 is dead but needs a register while v0 is live.
        assert_eq!(p.regp_max, 2);
    }

    #[test]
    fn entry_live_counts_toward_csb_pressure() {
        let p = pressure("func f {\nbb0:\n v2 = add v0, v1\n store scratch[v2+0], v2\n halt\n}");
        assert_eq!(p.min_pr(), 2, "v0 and v1 live at entry");
    }

    #[test]
    fn empty_pressure() {
        let p = pressure("func f {\nbb0:\n halt\n}");
        assert_eq!(p.min_r(), 0);
        assert_eq!(p.min_pr(), 0);
    }
}
