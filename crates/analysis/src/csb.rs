//! Context-switch boundaries (CSBs) and the values live across them.

use crate::liveness::Liveness;
use crate::points::{Point, PointMap};
use regbal_ir::{BitSet, Func};

/// The context-switch boundaries of a function.
///
/// A CSB is the program point of a context-switch instruction: an
/// explicit `ctx`, or a `load`/`store` (which block the thread for the
/// memory latency). The *live-across* set of a CSB contains the virtual
/// registers whose value must survive in a register while the thread is
/// switched out — `live_out(csb)` minus the register defined *by* the
/// CSB instruction itself, because a `load` destination travels in the
/// per-thread transfer registers during the switch (paper footnote 3).
#[derive(Debug, Clone)]
pub struct Csbs {
    points: Vec<Point>,
    live_across: Vec<BitSet>,
    is_csb: Vec<bool>,
}

impl Csbs {
    /// Finds every CSB of `func` and computes its live-across set.
    pub fn compute(func: &Func, pmap: &PointMap, liveness: &Liveness) -> Csbs {
        let mut points = Vec::new();
        let mut live_across = Vec::new();
        let mut is_csb = vec![false; pmap.num_points()];
        for p in pmap.points() {
            if pmap.slot(func, p).is_ctx_switch() {
                let mut across = liveness.live_out(p).clone();
                for d in liveness.defs_at(p) {
                    across.remove(d.index());
                }
                points.push(p);
                live_across.push(across);
                is_csb[p.index()] = true;
            }
        }
        Csbs {
            points,
            live_across,
            is_csb,
        }
    }

    /// The CSB points in program order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of CSBs.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the function has no CSBs.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Whether `p` is a CSB.
    pub fn is_csb(&self, p: Point) -> bool {
        self.is_csb[p.index()]
    }

    /// The live-across set of the `i`-th CSB.
    pub fn live_across(&self, i: usize) -> &BitSet {
        &self.live_across[i]
    }

    /// Iterates over `(csb point, live-across set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Point, &BitSet)> {
        self.points.iter().copied().zip(self.live_across.iter())
    }

    /// The live-across set at a CSB point, if `p` is one.
    pub fn live_across_at(&self, p: Point) -> Option<&BitSet> {
        self.points
            .binary_search(&p)
            .ok()
            .map(|i| &self.live_across[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::parse_func;

    fn analyze(src: &str) -> (PointMap, Csbs) {
        let f = parse_func(src).unwrap();
        let pm = PointMap::new(&f);
        let lv = Liveness::compute(&f, &pm);
        let cs = Csbs::compute(&f, &pm, &lv);
        (pm, cs)
    }

    #[test]
    fn finds_all_csb_kinds() {
        let (_, cs) = analyze(
            "func f {\nbb0:\n v0 = mov 256\n v1 = load sram[v0+0]\n ctx\n store sdram[v0+0], v1\n nop\n halt\n}",
        );
        assert_eq!(cs.len(), 3);
        assert_eq!(
            cs.points(),
            &[Point(1), Point(2), Point(3)],
            "load, ctx, store"
        );
        assert!(cs.is_csb(Point(2)));
        assert!(!cs.is_csb(Point(4)));
        assert!(!cs.is_empty());
    }

    #[test]
    fn load_destination_not_live_across_its_own_csb() {
        // v1 is defined by the load: it must not count as live across it.
        let (_, cs) = analyze(
            "func f {\nbb0:\n v0 = mov 256\n v1 = load sram[v0+0]\n store sdram[v0+0], v1\n halt\n}",
        );
        let load_across = cs.live_across_at(Point(1)).unwrap();
        assert!(load_across.contains(0), "base v0 survives the load");
        assert!(!load_across.contains(1), "load dst uses transfer regs");
        // At the store, everything is consumed.
        let store_across = cs.live_across_at(Point(2)).unwrap();
        assert!(store_across.is_empty());
    }

    #[test]
    fn value_consumed_by_store_is_not_across() {
        let (_, cs) = analyze(
            "func f {\nbb0:\n v0 = mov 1\n v1 = mov 2\n store scratch[v0+0], v1\n store scratch[v0+4], v0\n halt\n}",
        );
        let first = cs.live_across_at(Point(2)).unwrap();
        assert!(!first.contains(1), "v1 dead after its last use");
        assert!(first.contains(0), "v0 needed by the second store");
    }

    #[test]
    fn live_across_at_non_csb_is_none() {
        let (_, cs) = analyze("func f {\nbb0:\n nop\n ctx\n halt\n}");
        assert!(cs.live_across_at(Point(0)).is_none());
        assert!(cs.live_across_at(Point(1)).is_some());
    }

    #[test]
    fn iter_matches_points() {
        let (_, cs) = analyze("func f {\nbb0:\n ctx\n ctx\n halt\n}");
        let pairs: Vec<_> = cs.iter().map(|(p, s)| (p, s.count())).collect();
        assert_eq!(pairs, vec![(Point(0), 0), (Point(1), 0)]);
    }
}
