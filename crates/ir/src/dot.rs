//! Graphviz DOT rendering of control-flow graphs.

use crate::func::Func;

impl Func {
    /// Renders the CFG in Graphviz DOT syntax: one record node per
    /// basic block (instructions listed inside), edges for control
    /// flow. Pipe through `dot -Tsvg` to visualise.
    ///
    /// # Example
    ///
    /// ```
    /// let f = regbal_ir::parse_func("func f {\nbb0:\n nop\n halt\n}")?;
    /// let dot = f.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// # Ok::<(), regbal_ir::ParseError>(())
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{}\" {{\n", self.name));
        out.push_str("  node [shape=box, fontname=\"monospace\"];\n");
        for (id, block) in self.iter_blocks() {
            let mut label = format!("{id}:\\l");
            for inst in &block.insts {
                label.push_str(&escape(&inst.to_string()));
                label.push_str("\\l");
            }
            label.push_str(&escape(&block.term.to_string()));
            label.push_str("\\l");
            let style = if id == self.entry {
                ", style=bold"
            } else {
                ""
            };
            out.push_str(&format!("  {id} [label=\"{label}\"{style}];\n"));
            for succ in block.term.successors() {
                out.push_str(&format!("  {id} -> {succ};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::parse_func;

    #[test]
    fn dot_contains_blocks_and_edges() {
        let f = parse_func(
            "func d {\nbb0:\n v0 = mov 1\n beq v0, 0, bb1, bb2\nbb1:\n jump bb2\nbb2:\n halt\n}",
        )
        .unwrap();
        let dot = f.to_dot();
        assert!(dot.starts_with("digraph \"d\""));
        assert!(dot.contains("bb0 -> bb1;"));
        assert!(dot.contains("bb0 -> bb2;"));
        assert!(dot.contains("bb1 -> bb2;"));
        assert!(dot.contains("v0 = mov 1"));
        assert!(dot.contains("style=bold"), "entry highlighted");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_escapes_quotes() {
        // No instruction prints quotes today, but the escaper must be
        // robust anyway.
        assert_eq!(super::escape(r#"a"b\c"#), r#"a\"b\\c"#);
    }
}
