//! Register and operand types.

use std::fmt;

/// A virtual register, the unit of allocation before register assignment.
///
/// Virtual registers are function-local and numbered densely from zero;
/// the paper calls a virtual register's live range a *node* of the
/// interference graph (one live range per variable is assumed, §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl VReg {
    /// The dense index of this virtual register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A physical general-purpose register of the processing unit.
///
/// The IXP1200 model exposes `Nreg = 128` GPRs shared by all threads of a
/// micro-engine; the allocator decides which physical registers are
/// *private* to a thread and which are *shared* across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PReg(pub u32);

impl PReg {
    /// The index of this physical register in the shared register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A register reference: virtual before allocation, physical after.
///
/// A function normally uses registers of one kind only; [`crate::Func`]
/// validation does not enforce this, but the analyses in
/// `regbal-analysis` operate on virtual registers and the simulator in
/// `regbal-sim` accepts both (virtual registers execute against a
/// per-thread spill-free register file, which gives the reference
/// semantics that allocated code must preserve).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    /// A virtual (pre-allocation) register.
    Virt(VReg),
    /// A physical (post-allocation) register.
    Phys(PReg),
}

impl Reg {
    /// Returns the virtual register, if this is one.
    pub fn as_virt(self) -> Option<VReg> {
        match self {
            Reg::Virt(v) => Some(v),
            Reg::Phys(_) => None,
        }
    }

    /// Returns the physical register, if this is one.
    pub fn as_phys(self) -> Option<PReg> {
        match self {
            Reg::Phys(p) => Some(p),
            Reg::Virt(_) => None,
        }
    }
}

impl From<VReg> for Reg {
    fn from(v: VReg) -> Reg {
        Reg::Virt(v)
    }
}

impl From<PReg> for Reg {
    fn from(p: PReg) -> Reg {
        Reg::Phys(p)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Virt(v) => v.fmt(f),
            Reg::Phys(p) => p.fmt(f),
        }
    }
}

/// A source operand: either a register or a (sign-extended) immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register source.
    Reg(Reg),
    /// An immediate constant.
    Imm(i64),
}

impl Operand {
    /// Returns the register if the operand reads one.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<VReg> for Operand {
    fn from(v: VReg) -> Operand {
        Operand::Reg(Reg::Virt(v))
    }
}

impl From<PReg> for Operand {
    fn from(p: PReg) -> Operand {
        Operand::Reg(Reg::Phys(p))
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Operand {
        Operand::Imm(i)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => r.fmt(f),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(VReg(7).to_string(), "v7");
        assert_eq!(PReg(3).to_string(), "r3");
        assert_eq!(Reg::Virt(VReg(0)).to_string(), "v0");
        assert_eq!(Operand::Imm(-4).to_string(), "-4");
        assert_eq!(Operand::from(VReg(2)).to_string(), "v2");
    }

    #[test]
    fn conversions() {
        let r: Reg = VReg(1).into();
        assert_eq!(r.as_virt(), Some(VReg(1)));
        assert_eq!(r.as_phys(), None);
        let r: Reg = PReg(9).into();
        assert_eq!(r.as_phys(), Some(PReg(9)));
        let o: Operand = 5i64.into();
        assert_eq!(o.reg(), None);
        let o: Operand = r.into();
        assert_eq!(o.reg(), Some(r));
    }

    #[test]
    fn ordering_and_index() {
        assert!(VReg(1) < VReg(2));
        assert_eq!(VReg(4).index(), 4);
        assert_eq!(PReg(4).index(), 4);
    }
}
