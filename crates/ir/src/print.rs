//! Textual assembly printing (`Display` impls).
//!
//! The format printed here is accepted by [`crate::parse_func`]; the two
//! round-trip.

use crate::block::{BlockId, Terminator};
use crate::func::Func;
use crate::inst::Inst;
use std::fmt;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Bin { op, dst, lhs, rhs } => {
                write!(f, "{dst} = {} {lhs}, {rhs}", op.mnemonic())
            }
            Inst::Un { op, dst, src } => write!(f, "{dst} = {} {src}", op.mnemonic()),
            Inst::Load {
                dst,
                base,
                offset,
                space,
            } => {
                write!(f, "{dst} = load {}[{base}{}]", space.name(), OffsetFmt(*offset))
            }
            Inst::Store {
                src,
                base,
                offset,
                space,
            } => {
                write!(f, "store {}[{base}{}], {src}", space.name(), OffsetFmt(*offset))
            }
            Inst::LoadBurst {
                dsts,
                base,
                offset,
                space,
            } => {
                write!(f, "loadb {}[{base}{}]", space.name(), OffsetFmt(*offset))?;
                for d in dsts {
                    write!(f, ", {d}")?;
                }
                Ok(())
            }
            Inst::StoreBurst {
                srcs,
                base,
                offset,
                space,
            } => {
                write!(f, "storeb {}[{base}{}]", space.name(), OffsetFmt(*offset))?;
                for s in srcs {
                    write!(f, ", {s}")?;
                }
                Ok(())
            }
            Inst::Call { callee } => write!(f, "call {callee}"),
            Inst::Ctx => write!(f, "ctx"),
            Inst::IterEnd => write!(f, "iter_end"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

struct OffsetFmt(i64);

impl fmt::Display for OffsetFmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 0 {
            write!(f, "+{}", self.0)
        } else {
            write!(f, "-{}", -self.0)
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(t) => write!(f, "jump {t}"),
            Terminator::Branch {
                cond,
                lhs,
                rhs,
                taken,
                fallthrough,
            } => write!(
                f,
                "b{} {lhs}, {rhs}, {taken}, {fallthrough}",
                cond.mnemonic()
            ),
            Terminator::Halt => write!(f, "halt"),
        }
    }
}

impl fmt::Display for Func {
    /// Prints the function in the textual assembly syntax.
    ///
    /// Blocks are printed in id order with `bbN:` labels; the entry block
    /// is marked with an `entry` directive when it is not `bb0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func {} {{", self.name)?;
        if self.entry != BlockId(0) {
            writeln!(f, "  entry {}", self.entry)?;
        }
        for (id, block) in self.iter_blocks() {
            writeln!(f, "{id}:")?;
            for inst in &block.insts {
                writeln!(f, "    {inst}")?;
            }
            writeln!(f, "    {}", block.term)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Cond, MemSpace, UnOp};
    use crate::reg::{Operand, PReg, Reg, VReg};

    fn v(i: u32) -> Reg {
        Reg::Virt(VReg(i))
    }

    #[test]
    fn inst_display() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: v(0),
            lhs: v(1),
            rhs: Operand::Imm(-3),
        };
        assert_eq!(i.to_string(), "v0 = add v1, -3");
        let i = Inst::Un {
            op: UnOp::Mov,
            dst: Reg::Phys(PReg(5)),
            src: Operand::Reg(v(1)),
        };
        assert_eq!(i.to_string(), "r5 = mov v1");
        let i = Inst::Load {
            dst: v(2),
            base: v(3),
            offset: -4,
            space: MemSpace::Sdram,
        };
        assert_eq!(i.to_string(), "v2 = load sdram[v3-4]");
        let i = Inst::Store {
            src: v(2),
            base: v(3),
            offset: 8,
            space: MemSpace::Scratch,
        };
        assert_eq!(i.to_string(), "store scratch[v3+8], v2");
        assert_eq!(Inst::Ctx.to_string(), "ctx");
        assert_eq!(Inst::IterEnd.to_string(), "iter_end");
        assert_eq!(Inst::Nop.to_string(), "nop");
    }

    #[test]
    fn terminator_display() {
        assert_eq!(Terminator::Jump(BlockId(2)).to_string(), "jump bb2");
        assert_eq!(Terminator::Halt.to_string(), "halt");
        let t = Terminator::Branch {
            cond: Cond::GeU,
            lhs: v(1),
            rhs: Operand::Imm(16),
            taken: BlockId(0),
            fallthrough: BlockId(1),
        };
        assert_eq!(t.to_string(), "bgeu v1, 16, bb0, bb1");
    }

    #[test]
    fn func_display_contains_blocks() {
        let mut b = crate::FuncBuilder::new("demo");
        b.nop();
        b.halt();
        let f = b.build().unwrap();
        let s = f.to_string();
        assert!(s.starts_with("func demo {"));
        assert!(s.contains("bb0:"));
        assert!(s.contains("nop"));
        assert!(s.contains("halt"));
        assert!(s.ends_with('}'));
    }
}
