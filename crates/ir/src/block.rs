//! Basic blocks and terminators.

use crate::inst::{Cond, Inst};
use crate::reg::{Operand, Reg};
use std::fmt;

/// Identifier of a basic block within a [`crate::Func`] (a dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The dense index of the block.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// The control-transfer instruction ending a basic block.
///
/// Terminators are real one-cycle instructions (they count toward code
/// size) but are never context-switch boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch: go to `taken` if `cond(lhs, rhs)`
    /// holds, otherwise to `fallthrough`.
    Branch {
        /// Comparison predicate.
        cond: Cond,
        /// Left comparison source.
        lhs: Reg,
        /// Right comparison source.
        rhs: Operand,
        /// Successor when the condition holds.
        taken: BlockId,
        /// Successor when the condition fails.
        fallthrough: BlockId,
    },
    /// Stop the thread (end of the program).
    Halt,
}

impl Terminator {
    /// The registers read by the terminator (at most two).
    pub fn uses(&self) -> impl Iterator<Item = Reg> + '_ {
        let pair: [Option<Reg>; 2] = match *self {
            Terminator::Branch { lhs, rhs, .. } => [Some(lhs), rhs.reg()],
            Terminator::Jump(_) | Terminator::Halt => [None, None],
        };
        pair.into_iter().flatten()
    }

    /// The successor blocks, in (taken, fallthrough) order for branches.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let pair: [Option<BlockId>; 2] = match *self {
            Terminator::Jump(t) => [Some(t), None],
            Terminator::Branch {
                taken, fallthrough, ..
            } => [Some(taken), Some(fallthrough)],
            Terminator::Halt => [None, None],
        };
        pair.into_iter().flatten()
    }

    /// Rewrites every use register through `f`.
    pub fn map_uses(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        if let Terminator::Branch { lhs, rhs, .. } = self {
            *lhs = f(*lhs);
            if let Operand::Reg(r) = rhs {
                *r = f(*r);
            }
        }
    }

    /// Redirects every successor edge through `f`.
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump(t) => *t = f(*t),
            Terminator::Branch {
                taken, fallthrough, ..
            } => {
                *taken = f(*taken);
                *fallthrough = f(*fallthrough);
            }
            Terminator::Halt => {}
        }
    }
}

/// A basic block: straight-line instructions followed by a terminator.
///
/// Context-switch instructions may appear anywhere in `insts`; the NSR
/// construction of `regbal-analysis` splits blocks at those points
/// *logically* (at program-point granularity) without mutating the IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Straight-line body instructions.
    pub insts: Vec<Inst>,
    /// The control transfer ending the block.
    pub term: Terminator,
}

impl Block {
    /// Creates a block with the given body and terminator.
    pub fn new(insts: Vec<Inst>, term: Terminator) -> Self {
        Block { insts, term }
    }

    /// Number of instructions including the terminator.
    pub fn len(&self) -> usize {
        self.insts.len() + 1
    }

    /// Always `false`: a block at minimum contains its terminator.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::VReg;

    fn v(i: u32) -> Reg {
        Reg::Virt(VReg(i))
    }

    #[test]
    fn successors() {
        let t = Terminator::Jump(BlockId(3));
        assert_eq!(t.successors().collect::<Vec<_>>(), vec![BlockId(3)]);
        let t = Terminator::Branch {
            cond: Cond::Eq,
            lhs: v(0),
            rhs: Operand::Imm(0),
            taken: BlockId(1),
            fallthrough: BlockId(2),
        };
        assert_eq!(
            t.successors().collect::<Vec<_>>(),
            vec![BlockId(1), BlockId(2)]
        );
        assert_eq!(Terminator::Halt.successors().count(), 0);
    }

    #[test]
    fn terminator_uses() {
        let t = Terminator::Branch {
            cond: Cond::Ne,
            lhs: v(4),
            rhs: Operand::Reg(v(5)),
            taken: BlockId(0),
            fallthrough: BlockId(1),
        };
        assert_eq!(t.uses().collect::<Vec<_>>(), vec![v(4), v(5)]);
        assert_eq!(Terminator::Halt.uses().count(), 0);
    }

    #[test]
    fn map_successors_redirects() {
        let mut t = Terminator::Branch {
            cond: Cond::Eq,
            lhs: v(0),
            rhs: Operand::Imm(1),
            taken: BlockId(1),
            fallthrough: BlockId(2),
        };
        t.map_successors(|b| BlockId(b.0 + 10));
        assert_eq!(
            t.successors().collect::<Vec<_>>(),
            vec![BlockId(11), BlockId(12)]
        );
    }

    #[test]
    fn block_len_counts_terminator() {
        let b = Block::new(vec![Inst::Nop, Inst::Ctx], Terminator::Halt);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
