//! Non-terminator instructions of the IXP-style RISC core.

use crate::reg::{Operand, Reg};

/// Two-operand ALU operations. All complete in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (modelled as a 1-cycle ALU op).
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount taken modulo 32).
    Shl,
    /// Logical shift right (shift amount taken modulo 32).
    Shr,
    /// Arithmetic shift right (shift amount taken modulo 32).
    Asr,
    /// Set `dst` to 1 if `lhs < rhs` as signed 32-bit values, else 0.
    SetLt,
    /// Set `dst` to 1 if `lhs < rhs` as unsigned 32-bit values, else 0.
    SetLtU,
}

impl BinOp {
    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Asr => "asr",
            BinOp::SetLt => "slt",
            BinOp::SetLtU => "sltu",
        }
    }

    /// All binary operations, in mnemonic-table order.
    pub const ALL: [BinOp; 11] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Asr,
        BinOp::SetLt,
        BinOp::SetLtU,
    ];
}

/// Single-operand ALU operations. All complete in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Register/immediate copy. The allocator inserts these to split live
    /// ranges; the paper's cost objective minimises their number.
    Mov,
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
}

impl UnOp {
    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Mov => "mov",
            UnOp::Not => "not",
            UnOp::Neg => "neg",
        }
    }

    /// All unary operations.
    pub const ALL: [UnOp; 3] = [UnOp::Mov, UnOp::Not, UnOp::Neg];
}

/// Branch conditions (signed and unsigned 32-bit comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    LtU,
    /// Unsigned greater-or-equal.
    GeU,
}

impl Cond {
    /// The assembly mnemonic (used as a branch suffix, e.g. `beq`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::LtU => "ltu",
            Cond::GeU => "geu",
        }
    }

    /// All conditions.
    pub const ALL: [Cond; 8] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::LtU,
        Cond::GeU,
    ];

    /// The condition with swapped truth value.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::LtU => Cond::GeU,
            Cond::GeU => Cond::LtU,
        }
    }

    /// Evaluates the condition on two 32-bit values.
    pub fn eval(self, lhs: u32, rhs: u32) -> bool {
        let (sl, sr) = (lhs as i32, rhs as i32);
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => sl < sr,
            Cond::Le => sl <= sr,
            Cond::Gt => sl > sr,
            Cond::Ge => sl >= sr,
            Cond::LtU => lhs < rhs,
            Cond::GeU => lhs >= rhs,
        }
    }
}

/// The memory space targeted by a `load`/`store`.
///
/// Each space has its own latency in the simulator; all of them are
/// long-latency operations that context-switch the issuing thread
/// (IXP1200: no cache, ≥ 20 cycles per access, §1.1 feature 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// On-chip scratchpad memory (lowest latency of the paper's three).
    Scratch,
    /// Off-chip SRAM (control structures, tables).
    Sram,
    /// Off-chip SDRAM (packet data, highest latency).
    Sdram,
    /// The small per-PU-cluster shared fast store (RegDem-style spill
    /// scratchpad): a few cycles per access, far below even `Scratch`.
    /// The allocator's `balanced-scratch` rung packs its cheapest spill
    /// slots here.
    Spad,
}

impl MemSpace {
    /// The assembly name of the space.
    pub fn name(self) -> &'static str {
        match self {
            MemSpace::Scratch => "scratch",
            MemSpace::Sram => "sram",
            MemSpace::Sdram => "sdram",
            MemSpace::Spad => "spad",
        }
    }

    /// All memory spaces.
    pub const ALL: [MemSpace; 4] = [
        MemSpace::Scratch,
        MemSpace::Sram,
        MemSpace::Sdram,
        MemSpace::Spad,
    ];
}

/// A non-terminator instruction.
///
/// Instructions that can trigger a context switch — `Ctx`, `Load` and
/// `Store` — are the *CSB* (context-switch boundary) instructions of the
/// paper; see [`Inst::is_ctx_switch`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `dst = op(lhs, rhs)`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left (register) source.
        lhs: Reg,
        /// Right source (register or immediate).
        rhs: Operand,
    },
    /// `dst = op(src)`.
    Un {
        /// Operation.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Source (register or immediate).
        src: Operand,
    },
    /// `dst = space[base + offset]`; context-switches the thread while the
    /// access completes. Per the paper's transfer-register model
    /// (footnote 3), `dst` is **not** live across the switch: the data
    /// arrives in a per-thread transfer register and is moved to `dst`
    /// when the thread resumes.
    Load {
        /// Destination register (written at thread resume).
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
        /// Target memory space.
        space: MemSpace,
    },
    /// `space[base + offset] = src`; context-switches the thread while the
    /// write completes.
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
        /// Target memory space.
        space: MemSpace,
    },
    /// Burst read: `dsts[i] = space[base + offset + 4·i]` — the IXP's
    /// multi-word memory reads through transfer registers. One context
    /// switch covers the whole burst, and like [`Inst::Load`] the
    /// destinations are written at thread resume, so none of them is
    /// live across the switch.
    LoadBurst {
        /// Destination registers, in address order (1 to 16 words).
        dsts: Vec<Reg>,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
        /// Target memory space.
        space: MemSpace,
    },
    /// Burst write: `space[base + offset + 4·i] = srcs[i]`. The sources
    /// are read when the instruction issues (into write transfer
    /// registers), so they are dead across the switch.
    StoreBurst {
        /// Source registers, in address order (1 to 16 words).
        srcs: Vec<Reg>,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
        /// Target memory space.
        space: MemSpace,
    },
    /// Microcode subroutine call. The callee shares the caller's
    /// register namespace (as IXP subroutines do — values are passed in
    /// registers without renaming), so a call carries no operands.
    /// Calls exist only at the module level: [`crate::inline_module`]
    /// expands them before analysis, allocation or simulation.
    Call {
        /// Name of the called function within the module.
        callee: String,
    },
    /// Voluntary context switch (`ctx_arb`); costs one cycle and yields
    /// the processing unit to the next ready thread.
    Ctx,
    /// Pseudo-instruction marking the end of one main-loop iteration;
    /// free at run time, used by the simulator for per-iteration cycle
    /// statistics (the paper reports cycles per main-loop iteration, §9).
    IterEnd,
    /// No operation (one cycle).
    Nop,
}

/// Maximum words in a burst memory operation (the IXP's transfer
/// register file holds 16 words per direction per thread).
pub const MAX_BURST: usize = 16;

impl Inst {
    /// The register defined by this instruction when it defines exactly
    /// one; burst loads define several — see [`Inst::defs`].
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Inst::Bin { dst, .. } | Inst::Un { dst, .. } | Inst::Load { dst, .. } => Some(dst),
            Inst::LoadBurst { .. }
            | Inst::Store { .. }
            | Inst::StoreBurst { .. }
            | Inst::Call { .. }
            | Inst::Ctx
            | Inst::IterEnd
            | Inst::Nop => None,
        }
    }

    /// All registers defined by this instruction.
    pub fn defs(&self) -> impl Iterator<Item = Reg> + '_ {
        let burst: &[Reg] = match self {
            Inst::LoadBurst { dsts, .. } => dsts,
            _ => &[],
        };
        self.def().into_iter().chain(burst.iter().copied())
    }

    /// The registers read by this instruction.
    pub fn uses(&self) -> impl Iterator<Item = Reg> + '_ {
        let pair: [Option<Reg>; 2] = match *self {
            Inst::Bin { lhs, rhs, .. } => [Some(lhs), rhs.reg()],
            Inst::Un { src, .. } => [src.reg(), None],
            Inst::Load { base, .. } | Inst::LoadBurst { base, .. } => [Some(base), None],
            Inst::Store { src, base, .. } => [Some(src), Some(base)],
            Inst::StoreBurst { base, .. } => [Some(base), None],
            Inst::Call { .. } | Inst::Ctx | Inst::IterEnd | Inst::Nop => [None, None],
        };
        let burst: &[Reg] = match self {
            Inst::StoreBurst { srcs, .. } => srcs,
            _ => &[],
        };
        pair.into_iter().flatten().chain(burst.iter().copied())
    }

    /// Returns `true` if executing this instruction switches the thread
    /// out (a *CSB instruction*: explicit `ctx` or a memory access).
    pub fn is_ctx_switch(&self) -> bool {
        matches!(
            self,
            Inst::Ctx
                | Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::LoadBurst { .. }
                | Inst::StoreBurst { .. }
        )
    }

    /// Returns `true` for `mov` between two registers (the live-range
    /// splitting instruction whose count the allocator minimises).
    pub fn is_reg_move(&self) -> bool {
        matches!(
            self,
            Inst::Un {
                op: UnOp::Mov,
                src: Operand::Reg(_),
                ..
            }
        )
    }

    /// Rewrites every *use* register through `f`.
    pub fn map_uses(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        let map_op = |o: &mut Operand, f: &mut dyn FnMut(Reg) -> Reg| {
            if let Operand::Reg(r) = o {
                *r = f(*r);
            }
        };
        match self {
            Inst::Bin { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                map_op(rhs, &mut f);
            }
            Inst::Un { src, .. } => map_op(src, &mut f),
            Inst::Load { base, .. } | Inst::LoadBurst { base, .. } => *base = f(*base),
            Inst::Store { src, base, .. } => {
                *src = f(*src);
                *base = f(*base);
            }
            Inst::StoreBurst { srcs, base, .. } => {
                for s in srcs {
                    *s = f(*s);
                }
                *base = f(*base);
            }
            Inst::Call { .. } | Inst::Ctx | Inst::IterEnd | Inst::Nop => {}
        }
    }

    /// Rewrites every *def* register through `f`.
    pub fn map_defs(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Inst::Bin { dst, .. } | Inst::Un { dst, .. } | Inst::Load { dst, .. } => *dst = f(*dst),
            Inst::LoadBurst { dsts, .. } => {
                for d in dsts {
                    *d = f(*d);
                }
            }
            Inst::Store { .. }
            | Inst::StoreBurst { .. }
            | Inst::Call { .. }
            | Inst::Ctx
            | Inst::IterEnd
            | Inst::Nop => {}
        }
    }

    /// Returns `true` for a subroutine call (must be inlined before
    /// analysis or simulation).
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{Reg, VReg};

    fn v(i: u32) -> Reg {
        Reg::Virt(VReg(i))
    }

    #[test]
    fn defs_and_uses() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: v(0),
            lhs: v(1),
            rhs: Operand::Reg(v(2)),
        };
        assert_eq!(i.def(), Some(v(0)));
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![v(1), v(2)]);

        let i = Inst::Bin {
            op: BinOp::Add,
            dst: v(0),
            lhs: v(1),
            rhs: Operand::Imm(3),
        };
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![v(1)]);

        let i = Inst::Store {
            src: v(4),
            base: v(5),
            offset: 8,
            space: MemSpace::Sram,
        };
        assert_eq!(i.def(), None);
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![v(4), v(5)]);

        assert_eq!(Inst::Ctx.def(), None);
        assert_eq!(Inst::Ctx.uses().count(), 0);
    }

    #[test]
    fn ctx_switch_classification() {
        assert!(Inst::Ctx.is_ctx_switch());
        assert!(Inst::Load {
            dst: v(0),
            base: v(1),
            offset: 0,
            space: MemSpace::Sdram
        }
        .is_ctx_switch());
        assert!(Inst::Store {
            src: v(0),
            base: v(1),
            offset: 0,
            space: MemSpace::Scratch
        }
        .is_ctx_switch());
        assert!(!Inst::Nop.is_ctx_switch());
        assert!(!Inst::IterEnd.is_ctx_switch());
        assert!(!Inst::Un {
            op: UnOp::Mov,
            dst: v(0),
            src: Operand::Imm(1)
        }
        .is_ctx_switch());
    }

    #[test]
    fn reg_move_classification() {
        let m = Inst::Un {
            op: UnOp::Mov,
            dst: v(0),
            src: Operand::Reg(v(1)),
        };
        assert!(m.is_reg_move());
        let imm = Inst::Un {
            op: UnOp::Mov,
            dst: v(0),
            src: Operand::Imm(7),
        };
        assert!(!imm.is_reg_move());
    }

    #[test]
    fn map_uses_and_def() {
        let mut i = Inst::Bin {
            op: BinOp::Xor,
            dst: v(0),
            lhs: v(1),
            rhs: Operand::Reg(v(2)),
        };
        i.map_uses(|r| if r == v(1) { v(10) } else { r });
        i.map_defs(|_| v(20));
        assert_eq!(i.def(), Some(v(20)));
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![v(10), v(2)]);
    }

    #[test]
    fn cond_eval_and_negate() {
        for c in Cond::ALL {
            for (a, b) in [(0u32, 0u32), (1, 2), (u32::MAX, 1), (5, 5), (3, u32::MAX)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b), "{c:?} {a} {b}");
            }
        }
        assert!(Cond::Lt.eval(u32::MAX, 1)); // -1 < 1 signed
        assert!(!Cond::LtU.eval(u32::MAX, 1));
        assert!(Cond::GeU.eval(u32::MAX, 1));
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<&str> = BinOp::ALL.iter().map(|o| o.mnemonic()).collect();
        names.extend(UnOp::ALL.iter().map(|o| o.mnemonic()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
