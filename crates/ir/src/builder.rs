//! Convenient programmatic construction of [`Func`]s.

use crate::block::{Block, BlockId, Terminator};
use crate::func::{Func, ValidateError};
use crate::inst::{BinOp, Cond, Inst, MemSpace, UnOp};
use crate::reg::{Operand, Reg, VReg};
use std::fmt;

/// Incrementally builds a [`Func`] over virtual registers.
///
/// The builder keeps a *current block*; instruction-emitting methods
/// append to it, and terminator methods ([`jump`](Self::jump),
/// [`branch`](Self::branch), [`halt`](Self::halt)) close it. Every block
/// must be closed exactly once before [`build`](Self::build).
///
/// # Example
///
/// ```
/// use regbal_ir::{FuncBuilder, Cond, Operand};
///
/// let mut b = FuncBuilder::new("count_down");
/// let entry = b.entry_block();
/// let body = b.new_block();
/// let exit = b.new_block();
///
/// b.switch_to(entry);
/// let n = b.imm(10);
/// b.jump(body);
///
/// b.switch_to(body);
/// b.sub_to(n, n, Operand::Imm(1));
/// b.branch(Cond::Ne, n, Operand::Imm(0), body, exit);
///
/// b.switch_to(exit);
/// b.halt();
///
/// let func = b.build()?;
/// assert_eq!(func.num_blocks(), 3);
/// # Ok::<(), regbal_ir::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FuncBuilder {
    name: String,
    blocks: Vec<(Vec<Inst>, Option<Terminator>)>,
    current: BlockId,
    next_vreg: u32,
}

/// Error returned by [`FuncBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A block was never closed with a terminator.
    Unterminated(BlockId),
    /// The assembled function failed [`Func::validate`].
    Invalid(ValidateError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Unterminated(b) => write!(f, "block {b} has no terminator"),
            BuildError::Invalid(e) => write!(f, "invalid function: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl FuncBuilder {
    /// Creates a builder with a fresh entry block, which is also the
    /// initial current block.
    pub fn new(name: impl Into<String>) -> Self {
        FuncBuilder {
            name: name.into(),
            blocks: vec![(Vec::new(), None)],
            current: BlockId(0),
            next_vreg: 0,
        }
    }

    /// The entry block created by [`new`](Self::new).
    pub fn entry_block(&self) -> BlockId {
        BlockId(0)
    }

    /// Creates a new, empty, unterminated block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push((Vec::new(), None));
        id
    }

    /// Makes `block` the current block for subsequent emissions.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist or is already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(block.index() < self.blocks.len(), "unknown block {block}");
        assert!(
            self.blocks[block.index()].1.is_none(),
            "block {block} is already terminated"
        );
        self.current = block;
    }

    /// Allocates a fresh virtual register.
    pub fn vreg(&mut self) -> VReg {
        let v = VReg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    /// Appends a raw instruction to the current block.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn emit(&mut self, inst: Inst) {
        let (insts, term) = &mut self.blocks[self.current.index()];
        assert!(term.is_none(), "current block is already terminated");
        insts.push(inst);
    }

    /// `dst = op(lhs, rhs)` into an existing register.
    pub fn bin_to(&mut self, op: BinOp, dst: VReg, lhs: VReg, rhs: impl Into<Operand>) {
        self.emit(Inst::Bin {
            op,
            dst: Reg::Virt(dst),
            lhs: Reg::Virt(lhs),
            rhs: rhs.into(),
        });
    }

    /// `fresh = op(lhs, rhs)`; returns the fresh register.
    pub fn bin(&mut self, op: BinOp, lhs: VReg, rhs: impl Into<Operand>) -> VReg {
        let dst = self.vreg();
        self.bin_to(op, dst, lhs, rhs);
        dst
    }

    /// `dst = op(src)` into an existing register.
    pub fn un_to(&mut self, op: UnOp, dst: VReg, src: impl Into<Operand>) {
        self.emit(Inst::Un {
            op,
            dst: Reg::Virt(dst),
            src: src.into(),
        });
    }

    /// `fresh = op(src)`; returns the fresh register.
    pub fn un(&mut self, op: UnOp, src: impl Into<Operand>) -> VReg {
        let dst = self.vreg();
        self.un_to(op, dst, src);
        dst
    }

    /// Loads an immediate into a fresh register.
    pub fn imm(&mut self, value: i64) -> VReg {
        self.un(UnOp::Mov, Operand::Imm(value))
    }

    /// Copies `src` into a fresh register.
    pub fn mov(&mut self, src: impl Into<Operand>) -> VReg {
        self.un(UnOp::Mov, src)
    }

    /// Copies `src` into an existing register.
    pub fn mov_to(&mut self, dst: VReg, src: impl Into<Operand>) {
        self.un_to(UnOp::Mov, dst, src);
    }

    /// `fresh = space[base + offset]`; a context-switching memory read.
    pub fn load(&mut self, space: MemSpace, base: VReg, offset: i64) -> VReg {
        let dst = self.vreg();
        self.load_to(dst, space, base, offset);
        dst
    }

    /// `dst = space[base + offset]` into an existing register.
    pub fn load_to(&mut self, dst: VReg, space: MemSpace, base: VReg, offset: i64) {
        self.emit(Inst::Load {
            dst: Reg::Virt(dst),
            base: Reg::Virt(base),
            offset,
            space,
        });
    }

    /// `space[base + offset] = src`; a context-switching memory write.
    pub fn store(&mut self, space: MemSpace, base: VReg, offset: i64, src: VReg) {
        self.emit(Inst::Store {
            src: Reg::Virt(src),
            base: Reg::Virt(base),
            offset,
            space,
        });
    }

    /// Burst read of `n` consecutive words into fresh registers — one
    /// context switch for the whole burst (IXP transfer-register read).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds [`crate::MAX_BURST`].
    pub fn load_burst(&mut self, space: MemSpace, base: VReg, offset: i64, n: usize) -> Vec<VReg> {
        assert!((1..=crate::inst::MAX_BURST).contains(&n), "burst of {n} words");
        let dsts: Vec<VReg> = (0..n).map(|_| self.vreg()).collect();
        self.emit(Inst::LoadBurst {
            dsts: dsts.iter().map(|&v| Reg::Virt(v)).collect(),
            base: Reg::Virt(base),
            offset,
            space,
        });
        dsts
    }

    /// Burst write of consecutive words — one context switch for the
    /// whole burst (IXP transfer-register write).
    ///
    /// # Panics
    ///
    /// Panics if `srcs` is empty or exceeds [`crate::MAX_BURST`].
    pub fn store_burst(&mut self, space: MemSpace, base: VReg, offset: i64, srcs: &[VReg]) {
        assert!(
            !srcs.is_empty() && srcs.len() <= crate::inst::MAX_BURST,
            "burst of {} words",
            srcs.len()
        );
        self.emit(Inst::StoreBurst {
            srcs: srcs.iter().map(|&v| Reg::Virt(v)).collect(),
            base: Reg::Virt(base),
            offset,
            space,
        });
    }

    /// Emits a voluntary context switch.
    pub fn ctx(&mut self) {
        self.emit(Inst::Ctx);
    }

    /// Emits a no-op.
    pub fn nop(&mut self) {
        self.emit(Inst::Nop);
    }

    /// Emits the end-of-iteration marker used for cycle statistics.
    pub fn iter_end(&mut self) {
        self.emit(Inst::IterEnd);
    }

    /// Terminates the current block with an unconditional jump.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminates the current block with a conditional branch.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn branch(
        &mut self,
        cond: Cond,
        lhs: VReg,
        rhs: impl Into<Operand>,
        taken: BlockId,
        fallthrough: BlockId,
    ) {
        self.terminate(Terminator::Branch {
            cond,
            lhs: Reg::Virt(lhs),
            rhs: rhs.into(),
            taken,
            fallthrough,
        });
    }

    /// Terminates the current block by halting the thread.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn halt(&mut self) {
        self.terminate(Terminator::Halt);
    }

    fn terminate(&mut self, term: Terminator) {
        let slot = &mut self.blocks[self.current.index()].1;
        assert!(slot.is_none(), "current block is already terminated");
        *slot = Some(term);
    }

    /// Convenience shorthands for the common ALU helpers.
    ///
    /// Each returns a fresh destination register.
    pub fn add(&mut self, lhs: VReg, rhs: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// `fresh = lhs - rhs`.
    pub fn sub(&mut self, lhs: VReg, rhs: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// `fresh = lhs * rhs`.
    pub fn mul(&mut self, lhs: VReg, rhs: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Mul, lhs, rhs)
    }

    /// `fresh = lhs & rhs`.
    pub fn and(&mut self, lhs: VReg, rhs: impl Into<Operand>) -> VReg {
        self.bin(BinOp::And, lhs, rhs)
    }

    /// `fresh = lhs | rhs`.
    pub fn or(&mut self, lhs: VReg, rhs: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Or, lhs, rhs)
    }

    /// `fresh = lhs ^ rhs`.
    pub fn xor(&mut self, lhs: VReg, rhs: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Xor, lhs, rhs)
    }

    /// `fresh = lhs << rhs`.
    pub fn shl(&mut self, lhs: VReg, rhs: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Shl, lhs, rhs)
    }

    /// `fresh = lhs >> rhs` (logical).
    pub fn shr(&mut self, lhs: VReg, rhs: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Shr, lhs, rhs)
    }

    /// `dst = lhs + rhs` into an existing register.
    pub fn add_to(&mut self, dst: VReg, lhs: VReg, rhs: impl Into<Operand>) {
        self.bin_to(BinOp::Add, dst, lhs, rhs);
    }

    /// `dst = lhs - rhs` into an existing register.
    pub fn sub_to(&mut self, dst: VReg, lhs: VReg, rhs: impl Into<Operand>) {
        self.bin_to(BinOp::Sub, dst, lhs, rhs);
    }

    /// `dst = lhs ^ rhs` into an existing register.
    pub fn xor_to(&mut self, dst: VReg, lhs: VReg, rhs: impl Into<Operand>) {
        self.bin_to(BinOp::Xor, dst, lhs, rhs);
    }

    /// Number of virtual registers allocated so far.
    pub fn num_vregs(&self) -> u32 {
        self.next_vreg
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Unterminated`] if any block was never
    /// closed, or [`BuildError::Invalid`] if the assembled function
    /// fails validation.
    pub fn build(self) -> Result<Func, BuildError> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, (insts, term)) in self.blocks.into_iter().enumerate() {
            let term = term.ok_or(BuildError::Unterminated(BlockId(i as u32)))?;
            blocks.push(Block::new(insts, term));
        }
        let func = Func::new(self.name, blocks, BlockId(0), self.next_vreg);
        func.validate().map_err(BuildError::Invalid)?;
        Ok(func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line() {
        let mut b = FuncBuilder::new("t");
        let x = b.imm(1);
        let y = b.add(x, Operand::Imm(2));
        b.store(MemSpace::Scratch, y, 0, x);
        b.halt();
        let f = b.build().unwrap();
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.num_insts(), 4);
        assert_eq!(f.num_vregs, 2);
        assert_eq!(f.num_ctx_insts(), 1);
    }

    #[test]
    fn loop_with_carried_register() {
        let mut b = FuncBuilder::new("loop");
        let body = b.new_block();
        let exit = b.new_block();
        let n = b.imm(3);
        b.jump(body);
        b.switch_to(body);
        b.sub_to(n, n, Operand::Imm(1));
        b.branch(Cond::Ne, n, Operand::Imm(0), body, exit);
        b.switch_to(exit);
        b.halt();
        let f = b.build().unwrap();
        assert_eq!(f.num_blocks(), 3);
        let preds = f.predecessors();
        assert_eq!(preds[body.index()].len(), 2);
    }

    #[test]
    fn build_rejects_unterminated() {
        let mut b = FuncBuilder::new("t");
        b.nop();
        let dangling = b.new_block();
        b.halt();
        assert_eq!(b.build(), Err(BuildError::Unterminated(dangling)));
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn emit_after_terminator_panics() {
        let mut b = FuncBuilder::new("t");
        b.halt();
        b.nop();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn switch_to_terminated_panics() {
        let mut b = FuncBuilder::new("t");
        let e = b.entry_block();
        b.halt();
        b.switch_to(e);
    }

    #[test]
    fn helpers_cover_all_ops() {
        let mut b = FuncBuilder::new("ops");
        let x = b.imm(5);
        let a = b.add(x, 1i64);
        let s = b.sub(a, 1i64);
        let m = b.mul(s, 2i64);
        let n = b.and(m, 0xffi64);
        let o = b.or(n, 1i64);
        let p = b.xor(o, x);
        let q = b.shl(p, 3i64);
        let r = b.shr(q, 1i64);
        let t = b.mov(r);
        b.mov_to(x, t);
        b.ctx();
        b.iter_end();
        b.halt();
        let f = b.build().unwrap();
        assert_eq!(f.num_vregs, 10);
        f.validate().unwrap();
    }
}
