//! Parser for the textual assembly syntax printed by the `Display` impls.
//!
//! The grammar is line-oriented:
//!
//! ```text
//! func NAME {
//!   [entry LABEL]
//!   LABEL:
//!     vD = add vS, OPERAND      ; any BinOp mnemonic
//!     vD = mov OPERAND          ; any UnOp mnemonic
//!     vD = load SPACE[vB+OFF]
//!     store SPACE[vB+OFF], vS
//!     ctx | nop | iter_end
//!     jump LABEL
//!     bCC vS, OPERAND, LABEL, LABEL
//!     halt
//! }
//! ```
//!
//! `;` and `#` begin comments. Labels may be any identifier; they are
//! mapped to dense [`BlockId`]s in order of definition. Registers are
//! `vN` (virtual) or `rN` (physical). Output of the printer round-trips.

use crate::block::{Block, BlockId, Terminator};
use crate::func::Func;
use crate::inst::{BinOp, Cond, Inst, MemSpace, UnOp};
use crate::reg::{Operand, PReg, Reg, VReg};
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with the 1-based source line and (byte) column
/// where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// 1-based byte column of the offending token within its raw
    /// source line (column 1 for whole-line problems).
    pub col: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, col: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        col,
        message: message.into(),
    })
}

/// Parses a single function.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed syntax, unknown mnemonics,
/// undefined labels, unterminated blocks, or trailing input.
pub fn parse_func(src: &str) -> Result<Func, ParseError> {
    let mut funcs = parse_module(src)?;
    let n = funcs.len();
    match funcs.pop() {
        Some(f) if n == 1 => Ok(f),
        _ => err(1, 1, format!("expected exactly one function, found {n}")),
    }
}

/// Parses a module containing zero or more functions.
///
/// # Errors
///
/// Returns a [`ParseError`] on the first malformed construct.
pub fn parse_module(src: &str) -> Result<Vec<Func>, ParseError> {
    let mut parser = Parser::new(src);
    let mut funcs = Vec::new();
    while let Some(line) = parser.next_line() {
        let mut toks = Tokens::new(line);
        match toks.next() {
            Some("func") => {
                let name = toks.ident("function name")?;
                toks.expect("{")?;
                toks.finish()?;
                funcs.push(parser.parse_func_body(name)?);
            }
            Some(other) => {
                return err(
                    line.no,
                    toks.last_col,
                    format!("expected `func`, found `{other}`"),
                )
            }
            // `next_line` only yields non-blank lines; an empty token
            // stream here means the source mutated under us — skip it.
            None => continue,
        }
    }
    Ok(funcs)
}

/// One significant source line: its 1-based number, the 1-based byte
/// column its first token starts at, and the comment-stripped, trimmed
/// text.
#[derive(Clone, Copy)]
struct Line<'a> {
    no: usize,
    col_base: usize,
    text: &'a str,
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            lines: src.lines().enumerate(),
        }
    }

    /// Next non-blank, non-comment line.
    fn next_line(&mut self) -> Option<Line<'a>> {
        for (i, raw) in self.lines.by_ref() {
            let stripped = raw.split([';', '#']).next().unwrap_or("");
            let text = stripped.trim();
            if !text.is_empty() {
                let col_base = 1 + stripped.len() - stripped.trim_start().len();
                return Some(Line {
                    no: i + 1,
                    col_base,
                    text,
                });
            }
        }
        None
    }

    fn parse_func_body(&mut self, name: String) -> Result<Func, ParseError> {
        let mut labels: HashMap<String, BlockId> = HashMap::new();
        let mut blocks: Vec<(Vec<Inst>, Option<PendingTerm>, usize)> = Vec::new();
        let mut entry_label: Option<(String, usize, usize)> = None;
        let mut current: Option<usize> = None;
        let mut last_line = 0;

        let intern = |labels: &mut HashMap<String, BlockId>, name: &str| {
            let next = labels.len() as u32;
            *labels.entry(name.to_string()).or_insert(BlockId(next))
        };

        loop {
            let Some(line) = self.next_line() else {
                return err(last_line + 1, 1, "unexpected end of input, missing `}`");
            };
            let line_no = line.no;
            last_line = line_no;
            if line.text == "}" {
                break;
            }
            if let Some(label) = line.text.strip_suffix(':') {
                let label = label.trim();
                if !is_ident(label) {
                    return err(line_no, line.col_base, format!("bad label `{label}`"));
                }
                let id = intern(&mut labels, label);
                while blocks.len() <= id.index() {
                    blocks.push((Vec::new(), None, line_no));
                }
                if current == Some(id.index()) || blocks[id.index()].1.is_some() {
                    return err(
                        line_no,
                        line.col_base,
                        format!("label `{label}` defined twice"),
                    );
                }
                blocks[id.index()].2 = line_no;
                current = Some(id.index());
                continue;
            }

            let mut toks = Tokens::new(line);
            // `next_line` yields non-blank lines only, so the stream
            // always has a first token; bail out defensively otherwise.
            let Some(first) = toks.next() else { continue };
            if first == "entry" {
                let label = toks.ident("entry label")?;
                toks.finish()?;
                entry_label = Some((label, line_no, line.col_base));
                continue;
            }
            let Some(cur) = current else {
                return err(line_no, line.col_base, "instruction before any block label");
            };
            if blocks[cur].1.is_some() {
                return err(line_no, line.col_base, "instruction after block terminator");
            }
            match parse_stmt(first, &mut toks)? {
                Stmt::Inst(inst) => blocks[cur].0.push(inst),
                Stmt::Term(term) => blocks[cur].1 = Some(term),
            }
        }

        // Resolve labels and terminators. Only label *definitions* are
        // interned, so presence in the map means the block exists.
        let resolve = |label: &str, line: usize, col: usize| -> Result<BlockId, ParseError> {
            match labels.get(label) {
                Some(&id) => Ok(id),
                None => err(line, col, format!("undefined label `{label}`")),
            }
        };

        let mut out_blocks = Vec::with_capacity(blocks.len());
        for (idx, (insts, term, line)) in blocks.into_iter().enumerate() {
            let Some(term) = term else {
                return err(
                    line,
                    1,
                    format!("block #{idx} has no terminator before next label or `}}`"),
                );
            };
            let term = match term {
                PendingTerm::Jump(label, line, col) => {
                    Terminator::Jump(resolve(&label, line, col)?)
                }
                PendingTerm::Branch {
                    cond,
                    lhs,
                    rhs,
                    taken,
                    fallthrough,
                    line,
                    col,
                } => Terminator::Branch {
                    cond,
                    lhs,
                    rhs,
                    taken: resolve(&taken, line, col)?,
                    fallthrough: resolve(&fallthrough, line, col)?,
                },
                PendingTerm::Halt => Terminator::Halt,
            };
            out_blocks.push(Block::new(insts, term));
        }
        if out_blocks.is_empty() {
            return err(last_line, 1, "function has no blocks");
        }
        let entry = match entry_label {
            Some((label, line, col)) => resolve(&label, line, col)?,
            None => BlockId(0),
        };
        let mut func = Func::new(name, out_blocks, entry, 0);
        func.num_vregs = func.max_vreg().map_or(0, |m| m + 1);
        func.validate()
            .map_err(|e| ParseError {
                line: last_line,
                col: 1,
                message: e.to_string(),
            })?;
        Ok(func)
    }
}

enum Stmt {
    Inst(Inst),
    Term(PendingTerm),
}

enum PendingTerm {
    Jump(String, usize, usize),
    Branch {
        cond: Cond,
        lhs: Reg,
        rhs: Operand,
        taken: String,
        fallthrough: String,
        line: usize,
        col: usize,
    },
    Halt,
}

fn parse_stmt(first: &str, toks: &mut Tokens<'_>) -> Result<Stmt, ParseError> {
    let line = toks.line_no;
    let first_col = toks.last_col;
    match first {
        "call" => {
            let callee = toks.ident("callee name")?;
            toks.finish()?;
            Ok(Stmt::Inst(Inst::Call { callee }))
        }
        "ctx" => {
            toks.finish()?;
            Ok(Stmt::Inst(Inst::Ctx))
        }
        "nop" => {
            toks.finish()?;
            Ok(Stmt::Inst(Inst::Nop))
        }
        "iter_end" => {
            toks.finish()?;
            Ok(Stmt::Inst(Inst::IterEnd))
        }
        "halt" => {
            toks.finish()?;
            Ok(Stmt::Term(PendingTerm::Halt))
        }
        "jump" => {
            let col = toks.peek_col();
            let label = toks.ident("jump target")?;
            toks.finish()?;
            Ok(Stmt::Term(PendingTerm::Jump(label, line, col)))
        }
        "store" => {
            let tok = toks.next_or("address")?;
            let (space, base, offset) = parse_addr(tok, line, toks.last_col)?;
            let tok = toks.next_or("source register")?;
            let src = parse_reg(tok, line, toks.last_col)?;
            toks.finish()?;
            Ok(Stmt::Inst(Inst::Store {
                src,
                base,
                offset,
                space,
            }))
        }
        "loadb" | "storeb" => {
            let tok = toks.next_or("address")?;
            let (space, base, offset) = parse_addr(tok, line, toks.last_col)?;
            let mut regs = Vec::new();
            while let Some(tok) = toks.next() {
                regs.push(parse_reg(tok, line, toks.last_col)?);
            }
            if regs.is_empty() || regs.len() > crate::inst::MAX_BURST {
                return err(
                    line,
                    first_col,
                    format!("burst needs 1..={} registers", crate::inst::MAX_BURST),
                );
            }
            Ok(Stmt::Inst(if first == "loadb" {
                Inst::LoadBurst {
                    dsts: regs,
                    base,
                    offset,
                    space,
                }
            } else {
                Inst::StoreBurst {
                    srcs: regs,
                    base,
                    offset,
                    space,
                }
            }))
        }
        tok => {
            // `bCC ...` branch or `<reg> = <op> ...` forms.
            if let Some(cond) = tok
                .strip_prefix('b')
                .and_then(|m| Cond::ALL.into_iter().find(|c| c.mnemonic() == m))
            {
                let t = toks.next_or("branch lhs")?;
                let lhs = parse_reg(t, line, toks.last_col)?;
                let t = toks.next_or("branch rhs")?;
                let rhs = parse_operand(t, line, toks.last_col)?;
                let col = toks.peek_col();
                let taken = toks.ident("taken label")?;
                let fallthrough = toks.ident("fallthrough label")?;
                toks.finish()?;
                return Ok(Stmt::Term(PendingTerm::Branch {
                    cond,
                    lhs,
                    rhs,
                    taken,
                    fallthrough,
                    line,
                    col,
                }));
            }
            let dst = parse_reg(tok, line, first_col)?;
            toks.expect("=")?;
            let mnem = toks.next_or("mnemonic")?;
            let mnem_col = toks.last_col;
            if mnem == "load" {
                let t = toks.next_or("address")?;
                let (space, base, offset) = parse_addr(t, line, toks.last_col)?;
                toks.finish()?;
                return Ok(Stmt::Inst(Inst::Load {
                    dst,
                    base,
                    offset,
                    space,
                }));
            }
            if let Some(op) = BinOp::ALL.into_iter().find(|o| o.mnemonic() == mnem) {
                let t = toks.next_or("lhs register")?;
                let lhs = parse_reg(t, line, toks.last_col)?;
                let t = toks.next_or("rhs operand")?;
                let rhs = parse_operand(t, line, toks.last_col)?;
                toks.finish()?;
                return Ok(Stmt::Inst(Inst::Bin { op, dst, lhs, rhs }));
            }
            if let Some(op) = UnOp::ALL.into_iter().find(|o| o.mnemonic() == mnem) {
                let t = toks.next_or("source operand")?;
                let src = parse_operand(t, line, toks.last_col)?;
                toks.finish()?;
                return Ok(Stmt::Inst(Inst::Un { op, dst, src }));
            }
            err(line, mnem_col, format!("unknown mnemonic `{mnem}`"))
        }
    }
}

/// Parses `space[reg+off]` / `space[reg-off]`.
fn parse_addr(tok: &str, line: usize, col: usize) -> Result<(MemSpace, Reg, i64), ParseError> {
    let open = tok
        .find('[')
        .ok_or_else(|| ParseError {
            line,
            col,
            message: format!("expected `space[base+offset]`, found `{tok}`"),
        })?;
    let space_name = &tok[..open];
    let space = MemSpace::ALL
        .into_iter()
        .find(|s| s.name() == space_name)
        .ok_or_else(|| ParseError {
            line,
            col,
            message: format!("unknown memory space `{space_name}`"),
        })?;
    let inner = tok[open + 1..]
        .strip_suffix(']')
        .ok_or_else(|| ParseError {
            line,
            col,
            message: format!("missing `]` in `{tok}`"),
        })?;
    let split = inner
        .char_indices()
        .skip(1)
        .find(|&(_, c)| c == '+' || c == '-')
        .map(|(i, _)| i)
        .ok_or_else(|| ParseError {
            line,
            col,
            message: format!("missing offset in `{tok}`"),
        })?;
    let base = parse_reg(&inner[..split], line, col)?;
    let offset: i64 = inner[split..].parse().map_err(|_| ParseError {
        line,
        col,
        message: format!("bad offset in `{tok}`"),
    })?;
    Ok((space, base, offset))
}

fn parse_reg(tok: &str, line: usize, col: usize) -> Result<Reg, ParseError> {
    let tok = tok.trim_end_matches(',');
    let parse_idx = |s: &str| s.parse::<u32>().ok();
    if let Some(rest) = tok.strip_prefix('v') {
        if let Some(i) = parse_idx(rest) {
            return Ok(Reg::Virt(VReg(i)));
        }
    }
    if let Some(rest) = tok.strip_prefix('r') {
        if let Some(i) = parse_idx(rest) {
            return Ok(Reg::Phys(PReg(i)));
        }
    }
    err(line, col, format!("expected register, found `{tok}`"))
}

fn parse_operand(tok: &str, line: usize, col: usize) -> Result<Operand, ParseError> {
    let tok = tok.trim_end_matches(',');
    if let Ok(i) = tok.parse::<i64>() {
        return Ok(Operand::Imm(i));
    }
    parse_reg(tok, line, col)
        .map(Operand::Reg)
        .map_err(|_| ParseError {
            line,
            col,
            message: format!("expected register or immediate, found `{tok}`"),
        })
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.starts_with(|c: char| c.is_ascii_digit())
}

/// Whitespace tokenizer that remembers where each token sits in the
/// raw source line, so errors can point at the offending column.
struct Tokens<'a> {
    text: &'a str,
    /// Byte offset of the next unread character of `text`.
    pos: usize,
    line_no: usize,
    /// 1-based byte column of `text[0]` in the raw source line.
    col_base: usize,
    /// Column of the most recently returned token.
    last_col: usize,
}

impl<'a> Tokens<'a> {
    fn new(line: Line<'a>) -> Self {
        Tokens {
            text: line.text,
            pos: 0,
            line_no: line.no,
            col_base: line.col_base,
            last_col: line.col_base,
        }
    }

    /// Column the *next* token would start at (or just past the end of
    /// the line when exhausted).
    fn peek_col(&self) -> usize {
        let rest = &self.text[self.pos..];
        let skip = rest.len() - rest.trim_start().len();
        self.col_base + self.pos + skip
    }

    fn next(&mut self) -> Option<&'a str> {
        let rest = &self.text[self.pos..];
        let skip = rest.len() - rest.trim_start().len();
        let start = self.pos + skip;
        if start >= self.text.len() {
            self.pos = self.text.len();
            return None;
        }
        let rest = &self.text[start..];
        let len = rest.find(char::is_whitespace).unwrap_or(rest.len());
        self.pos = start + len;
        self.last_col = self.col_base + start;
        // Commas are separators; tolerate them attached to a token.
        Some(rest[..len].trim_end_matches(','))
    }

    fn next_or(&mut self, what: &str) -> Result<&'a str, ParseError> {
        let col = self.peek_col();
        self.next().ok_or_else(|| ParseError {
            line: self.line_no,
            col,
            message: format!("expected {what}"),
        })
    }

    fn expect(&mut self, tok: &str) -> Result<(), ParseError> {
        let col = self.peek_col();
        match self.next() {
            Some(t) if t == tok => Ok(()),
            Some(t) => err(self.line_no, col, format!("expected `{tok}`, found `{t}`")),
            None => err(self.line_no, col, format!("expected `{tok}`")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        let tok = self.next_or(what)?.trim_end_matches(',');
        if is_ident(tok) {
            Ok(tok.to_string())
        } else {
            err(self.line_no, self.last_col, format!("bad {what} `{tok}`"))
        }
    }

    fn finish(&mut self) -> Result<(), ParseError> {
        let col = self.peek_col();
        match self.next() {
            None => Ok(()),
            Some(t) => err(self.line_no, col, format!("unexpected trailing token `{t}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
; checksum-like sample
func sample {
bb0:
    v0 = mov 0
    v1 = mov 256
    jump bb1
bb1:
    v2 = load sram[v1+0]      ; read a word
    v0 = add v0, v2
    v1 = add v1, 4
    ctx
    bltu v1, 320, bb1, bb2
bb2:
    store scratch[v1-4], v0
    iter_end
    halt
}
";

    #[test]
    fn parses_sample() {
        let f = parse_func(SAMPLE).unwrap();
        assert_eq!(f.name, "sample");
        assert_eq!(f.num_blocks(), 3);
        assert_eq!(f.num_vregs, 3);
        assert_eq!(f.num_ctx_insts(), 3); // load, ctx, store
        f.validate().unwrap();
    }

    #[test]
    fn roundtrip_through_printer() {
        let f = parse_func(SAMPLE).unwrap();
        let printed = f.to_string();
        let f2 = parse_func(&printed).unwrap();
        assert_eq!(f, f2);
    }

    #[test]
    fn named_labels_and_entry() {
        let src = r"
func named {
  entry start
loop:
    v0 = sub v0, 1
    bne v0, 0, loop, done
start:
    v0 = mov 5
    jump loop
done:
    halt
}";
        let f = parse_func(src).unwrap();
        assert_eq!(f.entry, BlockId(1)); // definition order: loop, start, done
        f.validate().unwrap();
    }

    #[test]
    fn error_on_undefined_label() {
        let src = "func f {\nbb0:\n jump nowhere\n}";
        let e = parse_func(src).unwrap_err();
        assert!(e.message.contains("undefined label"), "{e}");
        assert_eq!(e.line, 3);
        assert_eq!(e.col, 7, "`nowhere` starts at column 7: {e}");
    }

    #[test]
    fn errors_point_at_the_offending_column() {
        // `frob` sits at byte column 7 of its line.
        let src = "func f {\nbb0:\n v0 = frob v1, 2\n halt\n}";
        let e = parse_func(src).unwrap_err();
        assert_eq!((e.line, e.col), (3, 7), "{e}");
        assert!(e.to_string().contains("line 3, col 7"), "{e}");

        // A bad register as a binop lhs: `x9` at column 11.
        let src = "func f {\nbb0:\n v0 = add x9, 2\n halt\n}";
        let e = parse_func(src).unwrap_err();
        assert_eq!((e.line, e.col), (3, 11), "{e}");

        // Missing operand reports the column just past the line end.
        let src = "func f {\nbb0:\n v0 = add\n halt\n}";
        let e = parse_func(src).unwrap_err();
        assert_eq!((e.line, e.col), (3, 10), "{e}");
        assert!(e.message.contains("expected lhs register"), "{e}");

        // Comments don't shift columns: `frob` still at its raw column.
        let src = "func f {\nbb0:\n v0 = frob 1 ; comment\n halt\n}";
        let e = parse_func(src).unwrap_err();
        assert_eq!((e.line, e.col), (3, 7), "{e}");
    }

    #[test]
    fn error_on_missing_terminator() {
        let src = "func f {\nbb0:\n nop\nbb1:\n halt\n}";
        let e = parse_func(src).unwrap_err();
        assert!(e.message.contains("no terminator"), "{e}");
    }

    #[test]
    fn error_on_unknown_mnemonic() {
        let src = "func f {\nbb0:\n v0 = frob v1, 2\n halt\n}";
        let e = parse_func(src).unwrap_err();
        assert!(e.message.contains("unknown mnemonic"), "{e}");
    }

    #[test]
    fn error_on_duplicate_label() {
        let src = "func f {\nbb0:\n halt\nbb0:\n halt\n}";
        let e = parse_func(src).unwrap_err();
        assert!(e.message.contains("defined twice"), "{e}");
    }

    #[test]
    fn error_on_trailing_tokens() {
        let src = "func f {\nbb0:\n ctx ctx\n halt\n}";
        let e = parse_func(src).unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn error_on_missing_close_brace() {
        let src = "func f {\nbb0:\n halt\n";
        let e = parse_func(src).unwrap_err();
        assert!(e.message.contains("missing `}`"), "{e}");
    }

    #[test]
    fn parse_module_multiple() {
        let src = "func a {\nbb0:\n halt\n}\nfunc b {\nbb0:\n nop\n halt\n}";
        let m = parse_module(src).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].name, "a");
        assert_eq!(m[1].num_insts(), 2);
    }

    #[test]
    fn physical_registers_parse() {
        let src = "func p {\nbb0:\n r0 = mov 1\n r1 = add r0, r0\n halt\n}";
        let f = parse_func(src).unwrap();
        assert_eq!(f.num_vregs, 0);
        assert_eq!(f.num_insts(), 3);
    }

    #[test]
    fn negative_offsets_and_comments() {
        let src = "func n {\nbb0:\n v0 = mov 8 # set base\n v1 = load sdram[v0-8]\n halt\n}";
        let f = parse_func(src).unwrap();
        let printed = f.to_string();
        assert!(printed.contains("sdram[v0-8]"));
    }
}

#[cfg(test)]
mod burst_tests {
    use super::*;
    use crate::inst::MAX_BURST;

    #[test]
    fn parses_load_and_store_bursts() {
        let src = "func b {\nbb0:\n v0 = mov 0\n loadb sram[v0+0], v1, v2, v3\n storeb sdram[v0+16], v3, v2\n halt\n}";
        let f = parse_func(src).unwrap();
        assert_eq!(f.num_ctx_insts(), 2);
        let b0 = &f.blocks[0];
        assert!(matches!(&b0.insts[1], Inst::LoadBurst { dsts, .. } if dsts.len() == 3));
        assert!(matches!(&b0.insts[2], Inst::StoreBurst { srcs, .. } if srcs.len() == 2));
    }

    #[test]
    fn burst_roundtrips_through_printer() {
        let src = "func b {\nbb0:\n v0 = mov 0\n loadb scratch[v0-4], v1, v2\n storeb sram[v0+8], v2, v1\n halt\n}";
        let f = parse_func(src).unwrap();
        let printed = f.to_string();
        assert!(printed.contains("loadb scratch[v0-4], v1, v2"), "{printed}");
        assert!(printed.contains("storeb sram[v0+8], v2, v1"), "{printed}");
        assert_eq!(parse_func(&printed).unwrap(), f);
    }

    #[test]
    fn empty_burst_rejected() {
        let src = "func b {\nbb0:\n v0 = mov 0\n loadb sram[v0+0]\n halt\n}";
        let e = parse_func(src).unwrap_err();
        assert!(e.message.contains("burst"), "{e}");
    }

    #[test]
    fn oversized_burst_rejected() {
        let regs: Vec<String> = (1..=MAX_BURST + 1).map(|i| format!("v{i}")).collect();
        let src = format!(
            "func b {{\nbb0:\n v0 = mov 0\n loadb sram[v0+0], {}\n halt\n}}",
            regs.join(", ")
        );
        let e = parse_func(&src).unwrap_err();
        assert!(e.message.contains("burst"), "{e}");
    }

    #[test]
    fn duplicate_burst_destinations_fail_validation() {
        use crate::{Block, BlockId, Reg, Terminator, VReg};
        let f = crate::Func::new(
            "dup",
            vec![Block::new(
                vec![Inst::LoadBurst {
                    dsts: vec![Reg::Virt(VReg(0)), Reg::Virt(VReg(0))],
                    base: Reg::Virt(VReg(1)),
                    offset: 0,
                    space: MemSpace::Sram,
                }],
                Terminator::Halt,
            )],
            BlockId(0),
            2,
        );
        assert!(matches!(
            f.validate(),
            Err(crate::ValidateError::BadBurst { .. })
        ));
    }
}
