//! A compact fixed-capacity bit set used throughout the analyses.
//!
//! The allocator manipulates many dense sets over small universes (virtual
//! registers, program points, graph nodes), so a simple `Vec<u64>`-backed
//! bit set is both faster and lighter than hash sets.

/// A fixed-capacity set of `usize` elements backed by 64-bit words.
///
/// The capacity is set at construction; all elements must be `< len`.
///
/// # Example
///
/// ```
/// use regbal_ir::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(64);
/// assert!(s.contains(3));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for elements `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The capacity (universe size) of the set.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i` into the set. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bitset index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes `i` from the set. Returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bitset index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Returns `true` if `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Sets `self` to the union of `self` and `other`; returns `true` if
    /// `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Sets `self` to the intersection of `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Removes every element of `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `true` if `self` and `other` share at least one element.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Returns `true` if every element of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects elements into a set sized to hold the largest element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over the elements of a [`BitSet`], in increasing order.
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(129));
        assert!(!s.remove(129));
        assert!(!s.contains(129));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn union_intersect_difference() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.extend([1, 2, 3, 70]);
        b.extend([2, 3, 4, 99]);

        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert!(!u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 70, 99]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 70]);

        assert!(a.intersects(&b));
        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(64);
        assert!(s.is_empty());
        s.insert(63);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [5usize, 2, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn debug_is_nonempty() {
        let s = BitSet::new(4);
        assert_eq!(format!("{s:?}"), "{}");
    }
}
