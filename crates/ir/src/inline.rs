//! Subroutine inlining: expanding `call` instructions before analysis.
//!
//! Micro-engine subroutines share the caller's register namespace
//! (arguments and results are simply left in agreed registers), so
//! inlining splices the callee's blocks into the caller **without**
//! renaming registers: a `call` becomes a jump into a fresh copy of the
//! callee, and every callee `halt` becomes a jump back to the
//! continuation. This is how the paper's analyses extend
//! inter-procedurally ("CFGs and NSRs of different functions are
//! connected with edges linking function calls and return points",
//! §3.2).

use crate::block::{Block, BlockId, Terminator};
use crate::func::Func;
use crate::inst::Inst;
use std::collections::HashMap;
use std::fmt;

/// Failure of [`inline_module`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InlineError {
    /// The requested entry function does not exist in the module.
    NoSuchEntry(String),
    /// A `call` targets a function that is not in the module.
    UnknownCallee {
        /// The function containing the call.
        caller: String,
        /// The missing callee.
        callee: String,
    },
    /// The call graph contains a cycle (microcode has no stack, so
    /// recursion cannot be expressed).
    Recursion(String),
}

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineError::NoSuchEntry(name) => write!(f, "no function `{name}` in module"),
            InlineError::UnknownCallee { caller, callee } => {
                write!(f, "`{caller}` calls unknown function `{callee}`")
            }
            InlineError::Recursion(name) => {
                write!(f, "recursive call involving `{name}` cannot be inlined")
            }
        }
    }
}

impl std::error::Error for InlineError {}

/// Expands every `call` reachable from `entry`, producing a single
/// call-free function. Registers are **not** renamed (subroutines share
/// the caller's register space); block ids are renumbered.
///
/// # Errors
///
/// Returns [`InlineError`] for a missing entry, an unknown callee, or
/// recursion.
///
/// # Example
///
/// ```
/// use regbal_ir::{inline_module, parse_module};
///
/// let module = parse_module(
///     "func main {\nbb0:\n v0 = mov 1\n call inc\n halt\n}\nfunc inc {\nbb0:\n v0 = add v0, 1\n halt\n}",
/// )?;
/// let flat = inline_module(&module, "main")?;
/// assert!(flat.iter_insts().all(|(_, _, i)| !i.is_call()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn inline_module(module: &[Func], entry: &str) -> Result<Func, InlineError> {
    let by_name: HashMap<&str, &Func> = module.iter().map(|f| (f.name.as_str(), f)).collect();
    let root = by_name
        .get(entry)
        .copied()
        .ok_or_else(|| InlineError::NoSuchEntry(entry.to_string()))?;
    let mut stack = vec![entry.to_string()];
    let mut out = inline_func(root, &by_name, &mut stack)?;
    out.name = entry.to_string();
    out.num_vregs = out.max_vreg().map_or(0, |m| m + 1);
    debug_assert!(out.validate().is_ok());
    Ok(out)
}

/// Recursively inlines all calls in `func`. `stack` holds the active
/// call chain for recursion detection.
fn inline_func(
    func: &Func,
    by_name: &HashMap<&str, &Func>,
    stack: &mut Vec<String>,
) -> Result<Func, InlineError> {
    let mut blocks: Vec<Block> = Vec::new();

    // Copy the caller's blocks first so ids are stable; calls split
    // their containing block and splice a fresh callee copy behind the
    // current end of the block list.
    for block in &func.blocks {
        blocks.push(block.clone());
    }

    // Process until no block contains a call. Splicing appends blocks,
    // so iterate by index.
    let mut bi = 0;
    while bi < blocks.len() {
        let call_at = blocks[bi]
            .insts
            .iter()
            .enumerate()
            .find_map(|(i, inst)| match inst {
                Inst::Call { callee } => Some((i, callee.clone())),
                _ => None,
            });
        let Some((idx, callee)) = call_at else {
            bi += 1;
            continue;
        };
        let callee_func = by_name.get(callee.as_str()).copied().ok_or_else(|| {
            InlineError::UnknownCallee {
                caller: func.name.clone(),
                callee: callee.clone(),
            }
        })?;
        if stack.contains(&callee) {
            return Err(InlineError::Recursion(callee));
        }
        stack.push(callee.clone());
        let body = inline_func(callee_func, by_name, stack)?;
        stack.pop();

        // Split the calling block: [pre | call | post].
        let post_insts: Vec<Inst> = blocks[bi].insts.split_off(idx + 1);
        blocks[bi].insts.pop(); // the call itself

        let base = blocks.len() as u32;
        let cont_id = BlockId(base + body.blocks.len() as u32);

        // Splice the callee copy with shifted ids; returns (`halt`)
        // become jumps to the continuation.
        for cb in &body.blocks {
            let mut nb = cb.clone();
            nb.term.map_successors(|b| BlockId(b.0 + base));
            if nb.term == Terminator::Halt {
                nb.term = Terminator::Jump(cont_id);
            }
            blocks.push(nb);
        }
        // Continuation block carries the caller's tail.
        let old_term = std::mem::replace(
            &mut blocks[bi].term,
            Terminator::Jump(BlockId(base + body.entry.0)),
        );
        blocks.push(Block::new(post_insts, old_term));
        // Re-scan the same block (its tail moved away, no calls left
        // before idx) and continue.
        bi += 1;
    }

    Ok(Func::new(
        func.name.clone(),
        blocks,
        func.entry,
        func.num_vregs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn inline(src: &str, entry: &str) -> Result<Func, InlineError> {
        inline_module(&parse_module(src).unwrap(), entry)
    }

    #[test]
    fn simple_subroutine() {
        let src = "
func main {
bb0:
    v0 = mov 5
    call double
    store scratch[v0+0], v1
    halt
}
func double {
bb0:
    v1 = add v0, v0
    halt
}";
        let f = inline(src, "main").unwrap();
        f.validate().unwrap();
        assert!(
            f.iter_insts().all(|(_, _, i)| !i.is_call()),
            "calls fully expanded"
        );
        // Shared namespace: the callee's v1 is the caller's v1.
        assert_eq!(f.num_vregs, 2);
        // main's 3 original instructions + callee body + 2 jumps.
        assert!(f.num_insts() >= 6);
    }

    #[test]
    fn nested_subroutines() {
        let src = "
func a {
bb0:
    v0 = mov 1
    call b
    store scratch[v0+0], v2
    halt
}
func b {
bb0:
    v1 = add v0, 1
    call c
    halt
}
func c {
bb0:
    v2 = add v1, 1
    halt
}";
        let f = inline(src, "a").unwrap();
        f.validate().unwrap();
        assert!(f.iter_insts().all(|(_, _, i)| !i.is_call()));
        assert_eq!(f.num_vregs, 3);
    }

    #[test]
    fn two_call_sites_get_separate_copies() {
        let src = "
func main {
bb0:
    v0 = mov 1
    call inc
    call inc
    store scratch[v0+0], v0
    halt
}
func inc {
bb0:
    v0 = add v0, 1
    halt
}";
        let f = inline(src, "main").unwrap();
        let adds = f
            .iter_insts()
            .filter(|(_, _, i)| matches!(i, Inst::Bin { .. }))
            .count();
        assert_eq!(adds, 2, "each call site gets its own copy");
    }

    #[test]
    fn callee_with_branches() {
        let src = "
func main {
bb0:
    v0 = mov 9
    call clamp
    store scratch[v0+0], v0
    halt
}
func clamp {
bb0:
    bltu v0, 8, done, cap
cap:
    v0 = mov 8
    jump done
done:
    halt
}";
        let f = inline(src, "main").unwrap();
        f.validate().unwrap();
        // Both callee halts became jumps to one continuation.
        let halts = f
            .blocks
            .iter()
            .filter(|b| b.term == Terminator::Halt)
            .count();
        assert_eq!(halts, 1, "only the caller's halt remains");
    }

    #[test]
    fn recursion_is_rejected() {
        let src = "
func main {
bb0:
    call main
    halt
}";
        assert_eq!(
            inline(src, "main").unwrap_err(),
            InlineError::Recursion("main".into())
        );
        let mutual = "
func a {
bb0:
    call b
    halt
}
func b {
bb0:
    call a
    halt
}";
        assert!(matches!(
            inline(mutual, "a").unwrap_err(),
            InlineError::Recursion(_)
        ));
    }

    #[test]
    fn unknown_callee_and_entry() {
        let src = "func main {\nbb0:\n call ghost\n halt\n}";
        assert_eq!(
            inline(src, "main").unwrap_err(),
            InlineError::UnknownCallee {
                caller: "main".into(),
                callee: "ghost".into()
            }
        );
        assert_eq!(
            inline(src, "nope").unwrap_err(),
            InlineError::NoSuchEntry("nope".into())
        );
    }

    #[test]
    fn error_display() {
        assert!(InlineError::Recursion("f".into()).to_string().contains("recursive"));
        assert!(InlineError::NoSuchEntry("g".into()).to_string().contains('g'));
    }
}
