//! IXP-style RISC intermediate representation for the `regbal` project.
//!
//! This crate models the instruction set of a multithreaded network
//! processor in the style of the Intel IXP1200 micro-engine, as assumed by
//! Zhuang & Pande, *Balancing Register Allocation Across Threads for a
//! Multithreaded Network Processor* (PLDI 2004):
//!
//! * a small RISC core (~1-cycle ALU operations),
//! * explicit, cheap context switches (`ctx`),
//! * long-latency memory operations (`load`/`store`) that implicitly
//!   context-switch the issuing thread,
//! * a register file addressed either through *virtual* registers (before
//!   allocation) or *physical* registers (after allocation).
//!
//! The central types are [`Func`] (a control-flow graph of [`Block`]s),
//! [`Inst`] (non-terminator instructions), and [`Terminator`]. Programs can
//! be constructed with [`FuncBuilder`], parsed from the textual assembly
//! syntax with [`parse_func`], and printed back with [`Func`]'s `Display`
//! implementation (the two forms round-trip).
//!
//! # Example
//!
//! ```
//! use regbal_ir::{FuncBuilder, Operand, MemSpace};
//!
//! let mut b = FuncBuilder::new("sum_two_words");
//! let entry = b.entry_block();
//! b.switch_to(entry);
//! let base = b.imm(0x100);
//! let a = b.load(MemSpace::Sram, base, 0);
//! let c = b.load(MemSpace::Sram, base, 4);
//! let s = b.add(a, Operand::from(c));
//! b.store(MemSpace::Scratch, base, 8, s);
//! b.halt();
//! let func = b.build().expect("valid function");
//! assert_eq!(func.num_blocks(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod block;
mod builder;
mod dot;
mod func;
mod inline;
mod inst;
mod parse;
mod print;
mod reg;

pub use bitset::BitSet;
pub use block::{Block, BlockId, Terminator};
pub use builder::{BuildError, FuncBuilder};
pub use func::{Func, ValidateError};
pub use inline::{inline_module, InlineError};
pub use inst::{BinOp, Cond, Inst, MemSpace, UnOp, MAX_BURST};
pub use parse::{parse_func, parse_module, ParseError};
pub use reg::{Operand, PReg, Reg, VReg};
