//! Functions: control-flow graphs of basic blocks.

use crate::block::{Block, BlockId, Terminator};
use crate::inst::Inst;
use crate::reg::Reg;
use std::fmt;

/// A function: a named control-flow graph over [`Block`]s.
///
/// On a network processor each thread executes one such function forever
/// (a packet main loop); the paper's whole-thread analyses operate on one
/// `Func` per thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Func {
    /// Function name (used in assembly syntax and reports).
    pub name: String,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// Number of virtual registers (`v0..v{n-1}`); zero after the
    /// function has been rewritten to physical registers.
    pub num_vregs: u32,
}

/// An inconsistency detected by [`Func::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The entry block id is out of range.
    BadEntry(BlockId),
    /// A terminator references a block id that does not exist.
    BadTarget {
        /// Block containing the bad terminator.
        from: BlockId,
        /// The dangling target.
        to: BlockId,
    },
    /// A virtual register index is `>= num_vregs`.
    BadVReg {
        /// Block containing the instruction.
        block: BlockId,
        /// The offending register index.
        vreg: u32,
    },
    /// The function has no blocks.
    NoBlocks,
    /// A burst memory operation has a bad register list (empty, too
    /// long, or duplicated load destinations).
    BadBurst {
        /// Block containing the instruction.
        block: BlockId,
        /// The offending burst length.
        len: usize,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadEntry(b) => write!(f, "entry block {b} out of range"),
            ValidateError::BadTarget { from, to } => {
                write!(f, "terminator of {from} targets nonexistent block {to}")
            }
            ValidateError::BadVReg { block, vreg } => {
                write!(f, "block {block} references v{vreg} >= num_vregs")
            }
            ValidateError::NoBlocks => write!(f, "function has no blocks"),
            ValidateError::BadBurst { block, len } => {
                write!(f, "block {block} has a burst of invalid length {len}")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl Func {
    /// Creates a function from parts. Prefer [`crate::FuncBuilder`].
    pub fn new(name: impl Into<String>, blocks: Vec<Block>, entry: BlockId, num_vregs: u32) -> Self {
        Func {
            name: name.into(),
            blocks,
            entry,
            num_vregs,
        }
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over `(BlockId, &Block)` pairs in id order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// All block ids in order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Total instruction count including terminators (the paper's
    /// "code size").
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// Number of context-switch (CSB) instructions.
    pub fn num_ctx_insts(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| i.is_ctx_switch())
            .count()
    }

    /// Number of register-to-register `mov` instructions.
    pub fn num_reg_moves(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| i.is_reg_move())
            .count()
    }

    /// Computes the predecessor lists of every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, block) in self.iter_blocks() {
            for succ in block.term.successors() {
                preds[succ.index()].push(id);
            }
        }
        preds
    }

    /// Splits the CFG edge `from -> to` by inserting a fresh block that
    /// contains only a jump to `to`, and returns the new block's id. If
    /// the terminator of `from` has several edges to `to`, all of them
    /// are redirected through the same new block.
    ///
    /// # Panics
    ///
    /// Panics if the edge does not exist.
    pub fn split_edge(&mut self, from: BlockId, to: BlockId) -> BlockId {
        assert!(
            self.block(from).term.successors().any(|s| s == to),
            "no edge {from} -> {to}"
        );
        let new_id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new(Vec::new(), Terminator::Jump(to)));
        self.blocks[from.index()]
            .term
            .map_successors(|s| if s == to { new_id } else { s });
        new_id
    }

    /// Highest virtual register index used, if any virtual register
    /// appears in the function.
    pub fn max_vreg(&self) -> Option<u32> {
        let mut max = None;
        let mut see = |r: Reg| {
            if let Reg::Virt(v) = r {
                max = Some(max.map_or(v.0, |m: u32| m.max(v.0)));
            }
        };
        for block in &self.blocks {
            for inst in &block.insts {
                inst.defs().for_each(&mut see);
                inst.uses().for_each(&mut see);
            }
            block.term.uses().for_each(&mut see);
        }
        max
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found: missing blocks, a bad
    /// entry id, dangling branch targets, or virtual registers outside
    /// `0..num_vregs`.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.blocks.is_empty() {
            return Err(ValidateError::NoBlocks);
        }
        if self.entry.index() >= self.blocks.len() {
            return Err(ValidateError::BadEntry(self.entry));
        }
        for (id, block) in self.iter_blocks() {
            for succ in block.term.successors() {
                if succ.index() >= self.blocks.len() {
                    return Err(ValidateError::BadTarget { from: id, to: succ });
                }
            }
            let mut bad: Option<u32> = None;
            let mut check = |r: Reg| {
                if let Reg::Virt(v) = r {
                    if v.0 >= self.num_vregs && bad.is_none() {
                        bad = Some(v.0);
                    }
                }
            };
            for inst in &block.insts {
                inst.defs().for_each(&mut check);
                inst.uses().for_each(&mut check);
                if let Some(n) = match inst {
                    Inst::LoadBurst { dsts, .. } => Some(dsts.len()),
                    Inst::StoreBurst { srcs, .. } => Some(srcs.len()),
                    _ => None,
                } {
                    if n == 0 || n > crate::inst::MAX_BURST {
                        return Err(ValidateError::BadBurst { block: id, len: n });
                    }
                }
                if let Inst::LoadBurst { dsts, .. } = inst {
                    let mut seen = dsts.clone();
                    seen.sort_unstable();
                    seen.dedup();
                    if seen.len() != dsts.len() {
                        return Err(ValidateError::BadBurst {
                            block: id,
                            len: dsts.len(),
                        });
                    }
                }
            }
            block.term.uses().for_each(&mut check);
            if let Some(vreg) = bad {
                return Err(ValidateError::BadVReg { block: id, vreg });
            }
        }
        Ok(())
    }

    /// Blocks reachable from the entry, as a boolean vector.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b.index()], true) {
                continue;
            }
            stack.extend(self.block(b).term.successors());
        }
        seen
    }

    /// Iterates over every instruction as `(BlockId, index, &Inst)`.
    pub fn iter_insts(&self) -> impl Iterator<Item = (BlockId, usize, &Inst)> {
        self.iter_blocks()
            .flat_map(|(id, b)| b.insts.iter().enumerate().map(move |(i, inst)| (id, i, inst)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Cond;
    use crate::reg::{Operand, VReg};

    fn v(i: u32) -> Reg {
        Reg::Virt(VReg(i))
    }

    fn diamond() -> Func {
        // bb0 -> bb1, bb2; bb1 -> bb3; bb2 -> bb3; bb3 halt
        Func::new(
            "diamond",
            vec![
                Block::new(
                    vec![Inst::Nop],
                    Terminator::Branch {
                        cond: Cond::Eq,
                        lhs: v(0),
                        rhs: Operand::Imm(0),
                        taken: BlockId(1),
                        fallthrough: BlockId(2),
                    },
                ),
                Block::new(vec![Inst::Ctx], Terminator::Jump(BlockId(3))),
                Block::new(vec![], Terminator::Jump(BlockId(3))),
                Block::new(vec![], Terminator::Halt),
            ],
            BlockId(0),
            1,
        )
    }

    #[test]
    fn validate_ok_and_counts() {
        let f = diamond();
        f.validate().unwrap();
        assert_eq!(f.num_blocks(), 4);
        assert_eq!(f.num_insts(), 6);
        assert_eq!(f.num_ctx_insts(), 1);
        assert_eq!(f.max_vreg(), Some(0));
        assert!(f.reachable().iter().all(|&r| r));
    }

    #[test]
    fn validate_detects_bad_target() {
        let mut f = diamond();
        f.blocks[1].term = Terminator::Jump(BlockId(9));
        assert_eq!(
            f.validate(),
            Err(ValidateError::BadTarget {
                from: BlockId(1),
                to: BlockId(9)
            })
        );
    }

    #[test]
    fn validate_detects_bad_vreg() {
        let mut f = diamond();
        f.num_vregs = 0;
        assert!(matches!(
            f.validate(),
            Err(ValidateError::BadVReg { vreg: 0, .. })
        ));
    }

    #[test]
    fn validate_detects_bad_entry_and_empty() {
        let mut f = diamond();
        f.entry = BlockId(10);
        assert_eq!(f.validate(), Err(ValidateError::BadEntry(BlockId(10))));
        f.blocks.clear();
        assert_eq!(f.validate(), Err(ValidateError::NoBlocks));
    }

    #[test]
    fn predecessors_of_join() {
        let f = diamond();
        let preds = f.predecessors();
        assert_eq!(preds[3], vec![BlockId(1), BlockId(2)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn split_edge_inserts_trampoline() {
        let mut f = diamond();
        let mid = f.split_edge(BlockId(0), BlockId(2));
        f.validate().unwrap();
        assert_eq!(f.block(mid).term, Terminator::Jump(BlockId(2)));
        let succs: Vec<_> = f.block(BlockId(0)).term.successors().collect();
        assert_eq!(succs, vec![BlockId(1), mid]);
    }

    #[test]
    #[should_panic(expected = "no edge")]
    fn split_missing_edge_panics() {
        let mut f = diamond();
        f.split_edge(BlockId(1), BlockId(0));
    }

    #[test]
    fn unreachable_block_detected() {
        let mut f = diamond();
        f.blocks.push(Block::new(vec![], Terminator::Halt));
        let r = f.reachable();
        assert!(!r[4]);
        assert!(r[..4].iter().all(|&x| x));
    }
}
