//! The dynamic register-clobber sanitizer — the runtime counterpart of
//! the static verifier in `regbal-core::verify`.
//!
//! The paper's safety argument is that a value shared across threads
//! must be dead at every context-switch boundary (CSB). The static
//! verifier proves this about an *allocation*; the sanitizer checks it
//! about an *execution*: every physical-register write is tagged with
//! (thread, pc, cycle), and every read is checked against the tag. A
//! thread that wrote a register, crossed a CSB, and then reads the
//! register back after another thread overwrote it has observed exactly
//! the clobber the allocator promised could never happen — the
//! sanitizer reports it with the register, both threads, both fragment
//! owners, the CSB and both cycles, turning "checksum mismatch
//! somewhere" into an actionable diagnosis.
//!
//! Four report classes:
//!
//! * [`SanitizerReport::SharedClobber`] — a thread read a register it
//!   had written before its most recent CSB, but another thread wrote
//!   it in between (violation).
//! * [`SanitizerReport::ForeignPrivateWrite`] — a write landed in
//!   another thread's private bank (violation; the structured upgrade
//!   of the legacy watchdog).
//! * [`SanitizerReport::ScratchpadClobber`] — a thread reloaded a
//!   spill-scratchpad word it had spilled, but another thread
//!   overwrote the slot in between (violation; spad slots are
//!   thread-private spill homes, so foreign overwrites are packing
//!   bugs).
//! * [`SanitizerReport::UninitializedRead`] — a read of a register no
//!   one has written; the simulator returns 0, but nothing in the
//!   allocation model justifies relying on that (warning).
//!
//! Reads of a register last written by *another* thread without an own
//! write before the CSB are deliberately not flagged: threads may
//! communicate through registers on purpose (the producer/consumer
//! examples do), and only a value the reader itself placed and lost is
//! evidence of a mis-coloring.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::ops::Range;

/// A program counter inside a simulated function: basic block plus
/// instruction index (the index one past the body denotes the block's
/// terminator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pc {
    /// Basic-block id (`BlockId` index) within the thread's function.
    pub block: u32,
    /// Instruction index within the block; `insts.len()` means the
    /// terminator.
    pub inst: u32,
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}:{}", self.block, self.inst)
    }
}

/// Configuration of the sanitizer: the register-bank layout and the
/// fragment-ownership map of the allocation under test.
///
/// All fields are plain data so that `regbal-core` (which `regbal-sim`
/// does not depend on) can produce them: `MultiAllocation::layout()`
/// gives the ranges and `MultiAllocation::fragment_tags()` the
/// fragment map.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizerConfig {
    /// Private register banks, indexed by thread. Empty when the
    /// layout is unknown (bank checks are skipped, clobber and
    /// uninitialized-read checks still run).
    pub private_ranges: Vec<Range<u32>>,
    /// The shared bank, if the allocation has one (used only to label
    /// registers in diagnostics).
    pub shared_range: Option<Range<u32>>,
    /// Fragment-ownership tags: `(thread, physical register)` → a
    /// human-readable label of the vreg fragments the allocator placed
    /// there (e.g. `"v3#0,v7#1"`). Missing entries print as `?`.
    pub fragments: HashMap<(usize, u32), String>,
    /// At most this many reports are kept; the excess is counted in
    /// [`Sanitizer::dropped`]. Duplicate reports (same class, register
    /// and site) are merged before the cap applies.
    pub max_reports: usize,
}

impl Default for SanitizerConfig {
    /// A layout-free configuration: bank checks are skipped, clobber
    /// and uninitialized-read checks still run, and up to
    /// [`SanitizerConfig::DEFAULT_MAX_REPORTS`] reports are kept.
    fn default() -> Self {
        SanitizerConfig::with_layout(Vec::new(), None)
    }
}

impl SanitizerConfig {
    /// Default cap on stored reports.
    pub const DEFAULT_MAX_REPORTS: usize = 1024;

    /// A configuration with the given banks and no fragment map.
    pub fn with_layout(private_ranges: Vec<Range<u32>>, shared_range: Option<Range<u32>>) -> Self {
        SanitizerConfig {
            private_ranges,
            shared_range,
            fragments: HashMap::new(),
            max_reports: Self::DEFAULT_MAX_REPORTS,
        }
    }
}

/// One sanitizer diagnostic. `SharedClobber` and `ForeignPrivateWrite`
/// are violations (the allocation is wrong); `UninitializedRead` is a
/// warning (the program relies on the simulator's implicit zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SanitizerReport {
    /// `reader` wrote `reg`, lost the PU at the CSB at `csb_pc`, and
    /// read `reg` back after `writer` overwrote it — the value the
    /// allocator promised would survive the switch is gone.
    SharedClobber {
        /// The clobbered physical register.
        reg: u32,
        /// The thread whose value was lost.
        reader: usize,
        /// The thread that overwrote the register.
        writer: usize,
        /// Fragments the allocator assigned to `reg` in the reader
        /// (`?` when no fragment map was configured).
        reader_fragment: String,
        /// Fragments the allocator assigned to `reg` in the writer.
        writer_fragment: String,
        /// Pc of the clobbering write (in the writer's function).
        write_pc: Pc,
        /// Pc of the read that observed the clobber (in the reader's
        /// function).
        read_pc: Pc,
        /// Pc of the reader's most recent context-switch boundary —
        /// the point where the value should have been dead or private.
        csb_pc: Pc,
        /// Cycle of the clobbering write.
        write_cycle: u64,
        /// Cycle of the read.
        cycle: u64,
    },
    /// A write landed in another thread's private bank.
    ForeignPrivateWrite {
        /// The register written.
        reg: u32,
        /// The writing thread.
        writer: usize,
        /// The thread owning the bank.
        owner: usize,
        /// Fragments mapped to `reg` in the writer (usually `?`: a
        /// correct fragment map never targets a foreign bank).
        writer_fragment: String,
        /// Fragments mapped to `reg` in the owner.
        owner_fragment: String,
        /// Pc of the write.
        pc: Pc,
        /// Cycle of the write.
        cycle: u64,
    },
    /// `reader` spilled a value into the spill-scratchpad word at
    /// `addr`, but `writer` overwrote the slot before the reload —
    /// two threads were packed into the same spad slot.
    ScratchpadClobber {
        /// Byte address of the clobbered spad word.
        addr: u32,
        /// The thread whose spilled value was lost.
        reader: usize,
        /// The thread that overwrote the slot.
        writer: usize,
        /// Pc of the clobbering store (in the writer's function).
        write_pc: Pc,
        /// Pc of the reload that observed the clobber.
        read_pc: Pc,
        /// Cycle of the clobbering store.
        write_cycle: u64,
        /// Cycle of the reload.
        cycle: u64,
    },
    /// A read of a physical register that no thread has written; the
    /// simulator supplies 0.
    UninitializedRead {
        /// The register read.
        reg: u32,
        /// The reading thread.
        thread: usize,
        /// Pc of the read.
        pc: Pc,
        /// Cycle of the read.
        cycle: u64,
    },
}

impl SanitizerReport {
    /// Whether the report is a violation (an allocation bug) rather
    /// than a warning.
    pub fn is_violation(&self) -> bool {
        !matches!(self, SanitizerReport::UninitializedRead { .. })
    }
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanitizerReport::SharedClobber {
                reg,
                reader,
                writer,
                reader_fragment,
                writer_fragment,
                write_pc,
                read_pc,
                csb_pc,
                write_cycle,
                cycle,
            } => write!(
                f,
                "clobber: r{reg} read by thread {reader} ({reader_fragment}) at {read_pc} \
                 cycle {cycle} was overwritten by thread {writer} ({writer_fragment}) at \
                 {write_pc} cycle {write_cycle}, across the CSB at {csb_pc}"
            ),
            SanitizerReport::ForeignPrivateWrite {
                reg,
                writer,
                owner,
                writer_fragment,
                owner_fragment,
                pc,
                cycle,
            } => write!(
                f,
                "foreign write: thread {writer} ({writer_fragment}) wrote r{reg} at {pc} \
                 cycle {cycle}, inside thread {owner}'s private bank ({owner_fragment})"
            ),
            SanitizerReport::ScratchpadClobber {
                addr,
                reader,
                writer,
                write_pc,
                read_pc,
                write_cycle,
                cycle,
            } => write!(
                f,
                "spad clobber: word {addr:#x} reloaded by thread {reader} at {read_pc} \
                 cycle {cycle} was overwritten by thread {writer} at {write_pc} \
                 cycle {write_cycle}"
            ),
            SanitizerReport::UninitializedRead { reg, thread, pc, cycle } => write!(
                f,
                "uninitialized read: thread {thread} read never-written r{reg} at {pc} \
                 cycle {cycle} (simulator supplies 0)"
            ),
        }
    }
}

/// The last write to a physical register.
#[derive(Debug, Clone, Copy)]
struct WriteTag {
    thread: usize,
    pc: Pc,
    cycle: u64,
}

/// A thread's own last write to a register, stamped with the thread's
/// CSB count ("epoch") at the time. A later read in a *higher* epoch
/// proves the value was expected to survive a switch.
#[derive(Debug, Clone, Copy)]
struct OwnWrite {
    epoch: u64,
}

/// The sanitizer state machine. Owned by a `Simulator` when enabled;
/// fed by its register-access and CSB hooks.
#[derive(Debug, Clone)]
pub(crate) struct Sanitizer {
    config: SanitizerConfig,
    /// Last write to each physical register, across all threads.
    last_write: Vec<Option<WriteTag>>,
    /// Per thread: its own last write to each register plus the epoch.
    own_write: Vec<Vec<Option<OwnWrite>>>,
    /// Per thread: CSBs crossed so far.
    csb_count: Vec<u64>,
    /// Per thread: pc of the most recent CSB.
    csb_pc: Vec<Pc>,
    /// Last write to each spill-scratchpad word (by byte address).
    spad_last: HashMap<u32, WriteTag>,
    /// Spad words each thread has spilled to (its spill homes).
    spad_own: HashSet<(usize, u32)>,
    reports: Vec<SanitizerReport>,
    seen: HashSet<(u8, u32, usize, u64)>,
    dropped: u64,
    regfile_size: usize,
}

impl Sanitizer {
    pub(crate) fn new(config: SanitizerConfig, regfile_size: usize) -> Sanitizer {
        Sanitizer {
            config,
            last_write: vec![None; regfile_size],
            own_write: Vec::new(),
            csb_count: Vec::new(),
            csb_pc: Vec::new(),
            spad_last: HashMap::new(),
            spad_own: HashSet::new(),
            reports: Vec::new(),
            seen: HashSet::new(),
            dropped: 0,
            regfile_size,
        }
    }

    pub(crate) fn reports(&self) -> &[SanitizerReport] {
        &self.reports
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    fn grow(&mut self, thread: usize) {
        while self.own_write.len() <= thread {
            self.own_write.push(vec![None; self.regfile_size]);
            self.csb_count.push(0);
            self.csb_pc.push(Pc::default());
        }
    }

    fn fragment(&self, thread: usize, reg: u32) -> String {
        self.config
            .fragments
            .get(&(thread, reg))
            .cloned()
            .unwrap_or_else(|| "?".to_string())
    }

    fn push(&mut self, key: (u8, u32, usize, u64), report: SanitizerReport) {
        if !self.seen.insert(key) {
            return;
        }
        let cap = if self.config.max_reports == 0 {
            SanitizerConfig::DEFAULT_MAX_REPORTS
        } else {
            self.config.max_reports
        };
        if self.reports.len() < cap {
            self.reports.push(report);
        } else {
            self.dropped += 1;
        }
    }

    /// Thread `thread` crosses a context-switch boundary at `pc` (a
    /// `ctx` or a blocking memory operation).
    pub(crate) fn note_csb(&mut self, thread: usize, pc: Pc) {
        self.grow(thread);
        self.csb_count[thread] += 1;
        self.csb_pc[thread] = pc;
    }

    /// Thread `thread` writes physical register `reg` at `pc`.
    pub(crate) fn note_write(&mut self, thread: usize, reg: u32, pc: Pc, cycle: u64) {
        self.grow(thread);
        for (owner, range) in self.config.private_ranges.iter().enumerate() {
            if owner != thread && range.contains(&reg) {
                let report = SanitizerReport::ForeignPrivateWrite {
                    reg,
                    writer: thread,
                    owner,
                    writer_fragment: self.fragment(thread, reg),
                    owner_fragment: self.fragment(owner, reg),
                    pc,
                    cycle,
                };
                self.push((2, reg, thread, pc_key(pc)), report);
                break;
            }
        }
        self.last_write[reg as usize] = Some(WriteTag { thread, pc, cycle });
        self.own_write[thread][reg as usize] = Some(OwnWrite {
            epoch: self.csb_count[thread],
        });
    }

    /// Thread `thread` stores to the spill-scratchpad word at `addr`.
    pub(crate) fn note_spad_write(&mut self, thread: usize, addr: u32, pc: Pc, cycle: u64) {
        self.grow(thread);
        self.spad_last.insert(addr, WriteTag { thread, pc, cycle });
        self.spad_own.insert((thread, addr));
    }

    /// Thread `thread` loads the spill-scratchpad word at `addr`. A
    /// reload of a word the thread spilled that another thread has
    /// since overwritten is a clobber: spad slots are thread-private
    /// spill homes (no epoch condition — a spill always crosses CSBs
    /// between store and reload, because memory operations block).
    pub(crate) fn note_spad_read(&mut self, thread: usize, addr: u32, pc: Pc, cycle: u64) {
        self.grow(thread);
        if let Some(&w) = self.spad_last.get(&addr) {
            if w.thread != thread && self.spad_own.contains(&(thread, addr)) {
                let report = SanitizerReport::ScratchpadClobber {
                    addr,
                    reader: thread,
                    writer: w.thread,
                    write_pc: w.pc,
                    read_pc: pc,
                    write_cycle: w.cycle,
                    cycle,
                };
                self.push((3, addr, thread, pc_key(pc)), report);
            }
        }
    }

    /// Thread `thread` reads physical register `reg` at `pc`.
    pub(crate) fn note_read(&mut self, thread: usize, reg: u32, pc: Pc, cycle: u64) {
        self.grow(thread);
        match self.last_write[reg as usize] {
            None => {
                let report = SanitizerReport::UninitializedRead {
                    reg,
                    thread,
                    pc,
                    cycle,
                };
                self.push((0, reg, thread, pc_key(pc)), report);
            }
            Some(w) if w.thread != thread => {
                // Only a value the reader itself wrote and then carried
                // across a CSB counts as clobbered; reads of values it
                // never produced may be deliberate communication.
                if let Some(own) = self.own_write[thread][reg as usize] {
                    if self.csb_count[thread] > own.epoch {
                        let report = SanitizerReport::SharedClobber {
                            reg,
                            reader: thread,
                            writer: w.thread,
                            reader_fragment: self.fragment(thread, reg),
                            writer_fragment: self.fragment(w.thread, reg),
                            write_pc: w.pc,
                            read_pc: pc,
                            csb_pc: self.csb_pc[thread],
                            write_cycle: w.cycle,
                            cycle,
                        };
                        self.push((1, reg, thread, pc_key(pc)), report);
                    }
                }
            }
            Some(_) => {}
        }
    }
}

/// Packs a pc into the dedup key.
fn pc_key(pc: Pc) -> u64 {
    (u64::from(pc.block) << 32) | u64::from(pc.inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc(block: u32, inst: u32) -> Pc {
        Pc { block, inst }
    }

    #[test]
    fn clobber_requires_a_csb_between_own_write_and_read() {
        let mut s = Sanitizer::new(SanitizerConfig::default(), 8);
        s.note_write(0, 3, pc(0, 0), 1);
        s.note_write(1, 3, pc(0, 0), 2);
        // No CSB crossed by thread 0: not a clobber (could be a race in
        // the test program, not an allocation bug).
        s.note_read(0, 3, pc(0, 1), 3);
        assert!(s.reports().is_empty());
        // Now the same pattern across a CSB fires.
        s.note_write(0, 4, pc(0, 2), 4);
        s.note_csb(0, pc(0, 3));
        s.note_write(1, 4, pc(1, 0), 5);
        s.note_read(0, 4, pc(0, 4), 6);
        assert_eq!(s.reports().len(), 1);
        match &s.reports()[0] {
            SanitizerReport::SharedClobber {
                reg,
                reader,
                writer,
                csb_pc,
                ..
            } => {
                assert_eq!((*reg, *reader, *writer), (4, 0, 1));
                assert_eq!(*csb_pc, pc(0, 3));
            }
            other => panic!("wrong report: {other:?}"),
        }
    }

    #[test]
    fn foreign_reads_without_own_write_are_communication_not_clobber() {
        let mut s = Sanitizer::new(SanitizerConfig::default(), 8);
        s.note_write(1, 0, pc(0, 0), 1);
        s.note_csb(0, pc(0, 0));
        s.note_read(0, 0, pc(0, 1), 2);
        assert!(s.reports().is_empty());
    }

    #[test]
    fn uninitialized_reads_warn_and_dedup() {
        let mut s = Sanitizer::new(SanitizerConfig::default(), 8);
        s.note_read(0, 5, pc(0, 0), 1);
        s.note_read(0, 5, pc(0, 0), 2); // same site: merged
        s.note_read(0, 5, pc(0, 1), 3); // new site
        assert_eq!(s.reports().len(), 2);
        assert!(s.reports().iter().all(|r| !r.is_violation()));
    }

    #[test]
    fn foreign_private_write_names_both_banks() {
        let mut cfg = SanitizerConfig::with_layout(vec![0..4, 4..8], Some(8..12));
        cfg.fragments.insert((0, 2), "v1#0".into());
        let mut s = Sanitizer::new(cfg, 16);
        s.note_write(1, 2, pc(0, 7), 9);
        assert_eq!(s.reports().len(), 1);
        match &s.reports()[0] {
            SanitizerReport::ForeignPrivateWrite {
                reg,
                writer,
                owner,
                owner_fragment,
                ..
            } => {
                assert_eq!((*reg, *writer, *owner), (2, 1, 0));
                assert_eq!(owner_fragment, "v1#0");
            }
            other => panic!("wrong report: {other:?}"),
        }
        assert!(s.reports()[0].is_violation());
    }

    #[test]
    fn report_cap_counts_the_overflow() {
        let cfg = SanitizerConfig {
            max_reports: 2,
            ..SanitizerConfig::default()
        };
        let mut s = Sanitizer::new(cfg, 8);
        for i in 0..5 {
            s.note_read(0, 1, pc(0, i), u64::from(i));
        }
        assert_eq!(s.reports().len(), 2);
        assert_eq!(s.dropped(), 3);
    }

    #[test]
    fn spad_clobber_requires_a_foreign_write_to_an_own_slot() {
        let mut s = Sanitizer::new(SanitizerConfig::default(), 8);
        // Thread 0 spills to word 0x40, thread 1 overwrites it, thread
        // 0 reloads: clobber.
        s.note_spad_write(0, 0x40, pc(0, 1), 1);
        s.note_spad_write(1, 0x40, pc(0, 2), 2);
        s.note_spad_read(0, 0x40, pc(0, 3), 3);
        assert_eq!(s.reports().len(), 1);
        match &s.reports()[0] {
            SanitizerReport::ScratchpadClobber {
                addr,
                reader,
                writer,
                write_cycle,
                cycle,
                ..
            } => {
                assert_eq!((*addr, *reader, *writer), (0x40, 0, 1));
                assert!(write_cycle < cycle);
            }
            other => panic!("wrong report: {other:?}"),
        }
        assert!(s.reports()[0].is_violation());
        // Reading a word the thread never spilled to is communication,
        // not a clobber.
        s.note_spad_write(1, 0x80, pc(0, 4), 4);
        s.note_spad_read(0, 0x80, pc(0, 5), 5);
        // Reading back one's own latest write is fine.
        s.note_spad_write(0, 0x40, pc(0, 6), 6);
        s.note_spad_read(0, 0x40, pc(0, 7), 7);
        assert_eq!(s.reports().len(), 1, "{:?}", s.reports());
    }

    #[test]
    fn spad_clobber_display_names_the_word_and_threads() {
        let r = SanitizerReport::ScratchpadClobber {
            addr: 0x44,
            reader: 1,
            writer: 3,
            write_pc: pc(2, 0),
            read_pc: pc(1, 4),
            write_cycle: 10,
            cycle: 31,
        };
        let text = r.to_string();
        assert!(text.contains("0x44"), "{text}");
        assert!(text.contains("thread 1"), "{text}");
        assert!(text.contains("thread 3"), "{text}");
    }

    #[test]
    fn display_is_actionable() {
        let r = SanitizerReport::SharedClobber {
            reg: 14,
            reader: 0,
            writer: 2,
            reader_fragment: "v3#1".into(),
            writer_fragment: "v9#0".into(),
            write_pc: pc(1, 2),
            read_pc: pc(0, 5),
            csb_pc: pc(0, 3),
            write_cycle: 40,
            cycle: 44,
        };
        let text = r.to_string();
        assert!(text.contains("r14"), "{text}");
        assert!(text.contains("thread 0"), "{text}");
        assert!(text.contains("thread 2"), "{text}");
        assert!(text.contains("bb0:3"), "{text}");
        assert!(text.contains("v3#1"), "{text}");
    }
}
