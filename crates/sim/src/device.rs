//! The device layer: a command processor feeding packet work onto a
//! farm of worker PUs, as in the paper's Figure 2(a) ("some PUs are in
//! charge of getting packets from the input ports; some handle packet
//! processing").
//!
//! A [`Device`] is a [`Chip`] with a fixed shared-memory protocol:
//!
//! * PU 0 runs the **command processor** (CP) — an ordinary simulated
//!   program, built by [`DeviceSpec::command_processor`], that admits
//!   packet ids from the line-rate generator's SDRAM buffer onto
//!   per-worker-thread descriptor rings in SRAM. Admission to a ring is
//!   gated on its *depth limit*, a host-computed word derived from the
//!   worker PU's register-file occupancy (the better the allocation,
//!   the more headroom the PU is trusted with) and the ring's queue
//!   capacity — the admission-scheduling shape of cyclotron's command
//!   processor.
//! * PUs `1..=spec.pus` run **worker threads**, one descriptor ring per
//!   thread. A ring has a single producer (the CP writes `head`) and a
//!   single consumer (the owning thread writes `tail`), so the protocol
//!   needs no atomics beyond the simulator's globally-ordered memory
//!   steps. Workers pop packet ids, read the packet from SDRAM, fold a
//!   digest, and publish per-ring digest/count words to scratch when
//!   the CP raises the per-ring stop flag and the ring is drained.
//!
//! The worker *programs* are supplied by the caller (the eval layer
//! compiles them through a register-allocation strategy; see
//! `regbal-workloads`' device kernel for the reference body), keeping
//! this crate workload- and allocator-agnostic.
//!
//! Because every digest is a pure function of the packet id and bytes,
//! and the published words are folded with wrapping adds, the *global*
//! digest ([`Device::total_digest`]) is independent of which thread
//! processed which packet — comparable across allocations even though
//! timing (and so packet distribution) differs. Within one allocation,
//! reports are bit-identical across the chip cores.

use crate::chip::Chip;
use crate::config::SimConfig;
use crate::machine::RunReport;
use regbal_ir::{BinOp, Cond, Func, FuncBuilder, MemSpace};

/// Hard cap on descriptor rings (worker threads) per device; sizes the
/// SRAM control arrays.
pub const MAX_RINGS: usize = 256;

/// SRAM byte base of the per-ring `head` words (CP-written, monotone
/// admission counts).
pub const HEADS_BASE: u32 = 0x0000;
/// SRAM byte base of the per-ring `tail` words (worker-written,
/// monotone completion counts).
pub const TAILS_BASE: u32 = 0x1000;
/// SRAM byte base of the per-ring stop flags (CP raises after the last
/// admission).
pub const STOPS_BASE: u32 = 0x2000;
/// SRAM byte base of the per-ring depth limits (host-written before the
/// run; the CP's occupancy gate).
pub const LIMITS_BASE: u32 = 0x3000;
/// SRAM byte base of the ring slot arrays (`queue_capacity` words per
/// ring).
pub const RINGS_BASE: u32 = 0x1_0000;

/// Scratch byte base of the per-ring digest words workers publish.
pub const DIGEST_BASE: u32 = 0x0000;
/// Scratch byte base of the per-ring processed-packet counts.
pub const COUNT_BASE: u32 = 0x1000;

/// SDRAM byte base of the packet buffer and the log2 of the per-packet
/// stride (matches `regbal-workloads`' 64-byte synthetic frames).
pub const PKT_BASE: u32 = 0;
/// log2 of the packet stride in SDRAM.
pub const PKT_SHIFT: u32 = 6;

/// SRAM size of the device chip: large enough that the allocator's
/// per-PU spill regions (`0x8_0000 + pu * 0x3_0000`) stay disjoint up
/// to 64 worker PUs instead of wrapping into each other.
pub const DEVICE_SRAM_SIZE: usize = 16 << 20;

/// Shape of a device: worker-PU count, threads (rings) per worker, ring
/// capacity and the packet workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Worker PUs (the command processor adds one more, PU 0).
    pub pus: usize,
    /// Worker threads per PU — each owns one descriptor ring.
    pub threads_per_pu: usize,
    /// Slots per ring; must be a power of two.
    pub queue_capacity: u32,
    /// Packets the generator offers and the CP admits.
    pub packets: u32,
}

impl DeviceSpec {
    /// Total descriptor rings (= worker threads).
    pub fn rings(&self) -> usize {
        self.pus * self.threads_per_pu
    }

    /// The ring owned by worker PU `pu` (0-based, excluding the CP),
    /// thread `thread`.
    pub fn ring(&self, pu: usize, thread: usize) -> usize {
        pu * self.threads_per_pu + thread
    }

    /// Checks the spec against the memory map.
    ///
    /// # Panics
    ///
    /// Panics when a field is out of range (zero sizes, a non-power-of-
    /// two queue, more rings than [`MAX_RINGS`], or a packet buffer
    /// that exceeds SDRAM).
    pub fn validate(&self) {
        assert!(self.pus >= 1, "a device has at least one worker PU");
        assert!(self.threads_per_pu >= 1, "workers need at least one thread");
        assert!(
            self.queue_capacity.is_power_of_two() && self.queue_capacity >= 2,
            "queue capacity must be a power of two >= 2"
        );
        assert!(self.rings() <= MAX_RINGS, "too many rings for the map");
        assert!(self.packets >= 1, "admit at least one packet");
        let pkt_bytes = (self.packets as usize) << PKT_SHIFT;
        let config = self.sim_config();
        assert!(pkt_bytes <= config.sdram_size, "packet buffer exceeds SDRAM");
        assert!(
            RINGS_BASE as usize + MAX_RINGS * (self.queue_capacity as usize) * 4
                <= 0x6_0000,
            "ring slots would overlap the allocator spill area"
        );
    }

    /// The chip configuration for this device (default latencies, the
    /// enlarged [`DEVICE_SRAM_SIZE`]).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            sram_size: DEVICE_SRAM_SIZE,
            ..SimConfig::default()
        }
    }

    /// Builds the command processor's program (virtual registers).
    ///
    /// The CP round-robins over the rings; a ring whose depth
    /// (`head - tail`) has reached its limit is skipped. An admission
    /// writes the next packet id into the ring and republishes `head`
    /// (one `iter_end` per admission, so the CP's iteration count is
    /// the admitted-packet count). After the last admission it raises
    /// every stop flag and halts. Its poll loop *is* the line rate:
    /// two-to-three SRAM reads per probe bound how fast packets can
    /// enter the device.
    pub fn command_processor(&self) -> Func {
        let rings = self.rings() as i64;
        let qmask = i64::from(self.queue_capacity - 1);
        let qshift = i64::from(self.queue_capacity.trailing_zeros());
        let mut b = FuncBuilder::new("cp");
        let check = b.new_block();
        let poll = b.new_block();
        let admit = b.new_block();
        let bump = b.new_block();
        let wrap = b.new_block();
        let fin_init = b.new_block();
        let fin_loop = b.new_block();
        let done = b.new_block();

        let remaining = b.imm(i64::from(self.packets));
        let cursor = b.imm(0);
        let nextid = b.imm(0);
        b.jump(check);

        b.switch_to(check);
        b.branch(Cond::Eq, remaining, 0, fin_init, poll);

        b.switch_to(poll);
        let a = b.shl(cursor, 2);
        let head = b.load(MemSpace::Sram, a, i64::from(HEADS_BASE));
        let tail = b.load(MemSpace::Sram, a, i64::from(TAILS_BASE));
        let depth = b.sub(head, tail);
        let limit = b.load(MemSpace::Sram, a, i64::from(LIMITS_BASE));
        let room = b.bin(BinOp::SetLtU, depth, limit);
        b.branch(Cond::Eq, room, 0, bump, admit);

        b.switch_to(admit);
        let slot = b.and(head, qmask);
        let ring_words = b.shl(cursor, qshift);
        let word = b.add(ring_words, slot);
        let byte = b.shl(word, 2);
        b.store(MemSpace::Sram, byte, i64::from(RINGS_BASE), nextid);
        let h1 = b.add(head, 1);
        b.store(MemSpace::Sram, a, i64::from(HEADS_BASE), h1);
        b.add_to(nextid, nextid, 1);
        b.sub_to(remaining, remaining, 1);
        b.iter_end();
        b.jump(bump);

        b.switch_to(bump);
        b.add_to(cursor, cursor, 1);
        let more = b.bin(BinOp::SetLtU, cursor, rings);
        b.branch(Cond::Eq, more, 0, wrap, check);

        b.switch_to(wrap);
        b.mov_to(cursor, 0);
        b.jump(check);

        b.switch_to(fin_init);
        let i = b.imm(0);
        b.jump(fin_loop);

        b.switch_to(fin_loop);
        let addr = b.shl(i, 2);
        let one = b.imm(1);
        b.store(MemSpace::Sram, addr, i64::from(STOPS_BASE), one);
        b.add_to(i, i, 1);
        let m2 = b.bin(BinOp::SetLtU, i, rings);
        b.branch(Cond::Ne, m2, 0, fin_loop, done);

        b.switch_to(done);
        b.halt();

        b.build().expect("command processor is well-formed")
    }
}

/// Which chip core advances the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipCore {
    /// The slice-interleaved reference loop at the given granularity
    /// (1 for the interleaving the event cores are identical to).
    Reference {
        /// Slice length in cycles.
        granularity: u64,
    },
    /// The serial event-driven core.
    Event,
    /// The event-driven core with pure batches on OS threads.
    EventThreads {
        /// Worker OS threads.
        threads: usize,
    },
}

/// A chip wired with the device memory protocol.
#[derive(Debug)]
pub struct Device {
    spec: DeviceSpec,
    chip: Chip,
}

impl Device {
    /// Creates the device chip: `spec.pus + 1` PUs over the device
    /// memory map, every ring's depth limit defaulted to the full
    /// queue capacity. No programs are installed yet — see
    /// [`add_cp`](Self::add_cp) and [`add_worker`](Self::add_worker).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`DeviceSpec::validate`].
    pub fn new(spec: DeviceSpec) -> Device {
        spec.validate();
        let chip = Chip::new(spec.sim_config(), spec.pus + 1);
        let mut device = Device { spec, chip };
        for ring in 0..device.spec.rings() {
            device.set_depth_limit(ring, device.spec.queue_capacity);
        }
        device
    }

    /// The device's shape.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Installs the command processor's program on PU 0.
    pub fn add_cp(&mut self, func: Func) {
        self.chip.add_thread(0, func);
    }

    /// Installs one worker thread on worker PU `pu` (0-based; chip
    /// PU `pu + 1`). Threads must be added in ring order — the `t`-th
    /// call for a PU owns ring `spec.ring(pu, t)`.
    pub fn add_worker(&mut self, pu: usize, func: Func) {
        assert!(pu < self.spec.pus, "worker PU out of range");
        self.chip.add_thread(pu + 1, func);
    }

    /// Sets ring `ring`'s admission depth limit (clamped to the queue
    /// capacity; a limit of 0 would starve the ring and is raised
    /// to 1).
    pub fn set_depth_limit(&mut self, ring: usize, limit: u32) {
        assert!(ring < self.spec.rings(), "ring out of range");
        let limit = limit.clamp(1, self.spec.queue_capacity);
        self.chip
            .memory_mut()
            .write_word(MemSpace::Sram, LIMITS_BASE + 4 * ring as u32, limit);
    }

    /// The underlying chip (for sanitizers, traces, PU statistics).
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Mutable access to the underlying chip.
    pub fn chip_mut(&mut self) -> &mut Chip {
        &mut self.chip
    }

    /// Runs the device to `cycles` under the selected core.
    pub fn run(&mut self, core: ChipCore, cycles: u64) -> Vec<RunReport> {
        match core {
            ChipCore::Reference { granularity } => self.chip.run(cycles, granularity),
            ChipCore::Event => self.chip.run_event(cycles),
            ChipCore::EventThreads { threads } => self.chip.run_event_threads(cycles, threads),
        }
    }

    /// Whether every PU (CP included) halted — a run that exhausted its
    /// cycle budget instead has unreliable digests.
    pub fn all_halted(&self) -> bool {
        (0..self.spec.pus + 1).all(|pu| self.chip.pu(pu).all_halted())
    }

    /// Ring `ring`'s published digest word.
    pub fn ring_digest(&self, ring: usize) -> u32 {
        self.chip
            .memory()
            .read_word(MemSpace::Scratch, DIGEST_BASE + 4 * ring as u32)
    }

    /// Packets ring `ring`'s worker processed.
    pub fn ring_processed(&self, ring: usize) -> u32 {
        self.chip
            .memory()
            .read_word(MemSpace::Scratch, COUNT_BASE + 4 * ring as u32)
    }

    /// The order-insensitive global digest: the wrapping sum of every
    /// ring's digest. Equal across allocations of the same workload
    /// (packet distribution may differ; the fold commutes).
    pub fn total_digest(&self) -> u32 {
        (0..self.spec.rings()).fold(0u32, |acc, r| acc.wrapping_add(self.ring_digest(r)))
    }

    /// Total packets processed across all rings (must equal
    /// `spec.packets` after a complete run).
    pub fn total_processed(&self) -> u64 {
        (0..self.spec.rings())
            .map(|r| u64::from(self.ring_processed(r)))
            .sum()
    }

    /// Per-PU reports without advancing the simulation.
    pub fn reports(&self) -> Vec<RunReport> {
        (0..self.spec.pus + 1)
            .map(|pu| self.chip.pu(pu).report())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cp_program_validates() {
        let spec = DeviceSpec {
            pus: 2,
            threads_per_pu: 2,
            queue_capacity: 4,
            packets: 8,
        };
        spec.validate();
        let cp = spec.command_processor();
        assert!(cp.validate().is_ok());
        assert_eq!(spec.rings(), 4);
        assert_eq!(spec.ring(1, 1), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_queue_capacity_rejected() {
        DeviceSpec {
            pus: 1,
            threads_per_pu: 1,
            queue_capacity: 3,
            packets: 1,
        }
        .validate();
    }

    #[test]
    fn depth_limits_clamp() {
        let spec = DeviceSpec {
            pus: 1,
            threads_per_pu: 1,
            queue_capacity: 8,
            packets: 1,
        };
        let mut d = Device::new(spec);
        d.set_depth_limit(0, 0);
        assert_eq!(d.chip().memory().read_word(MemSpace::Sram, LIMITS_BASE), 1);
        d.set_depth_limit(0, 99);
        assert_eq!(d.chip().memory().read_word(MemSpace::Sram, LIMITS_BASE), 8);
    }
}
