//! The memory spaces of the micro-engine.

use regbal_ir::MemSpace;

/// Byte-addressable scratch/SRAM/SDRAM/spad memories with 32-bit word
/// access (little endian).
#[derive(Debug, Clone)]
pub struct Memory {
    scratch: Vec<u8>,
    sram: Vec<u8>,
    sdram: Vec<u8>,
    spad: Vec<u8>,
}

impl Memory {
    /// Allocates zero-filled memories of the given byte sizes.
    pub fn new(
        scratch_size: usize,
        sram_size: usize,
        sdram_size: usize,
        spad_size: usize,
    ) -> Memory {
        Memory {
            scratch: vec![0; scratch_size],
            sram: vec![0; sram_size],
            sdram: vec![0; sdram_size],
            spad: vec![0; spad_size],
        }
    }

    fn space(&self, space: MemSpace) -> &[u8] {
        match space {
            MemSpace::Scratch => &self.scratch,
            MemSpace::Sram => &self.sram,
            MemSpace::Sdram => &self.sdram,
            MemSpace::Spad => &self.spad,
        }
    }

    fn space_mut(&mut self, space: MemSpace) -> &mut [u8] {
        match space {
            MemSpace::Scratch => &mut self.scratch,
            MemSpace::Sram => &mut self.sram,
            MemSpace::Sdram => &mut self.sdram,
            MemSpace::Spad => &mut self.spad,
        }
    }

    /// Reads the 32-bit word at byte address `addr`. Out-of-range
    /// addresses wrap modulo the space size (real hardware would fault;
    /// wrapping keeps buggy guest programs deterministic instead of
    /// aborting the simulation).
    pub fn read_word(&self, space: MemSpace, addr: u32) -> u32 {
        let mem = self.space(space);
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = mem[(addr as usize + i) % mem.len()];
        }
        u32::from_le_bytes(bytes)
    }

    /// Writes the 32-bit word at byte address `addr` (wrapping like
    /// [`read_word`](Self::read_word)).
    pub fn write_word(&mut self, space: MemSpace, addr: u32, value: u32) {
        let mem = self.space_mut(space);
        let len = mem.len();
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            mem[(addr as usize + i) % len] = *b;
        }
    }

    /// Bulk-fills a region with bytes (for packet buffers and tables).
    pub fn write_bytes(&mut self, space: MemSpace, addr: u32, bytes: &[u8]) {
        let mem = self.space_mut(space);
        let len = mem.len();
        for (i, b) in bytes.iter().enumerate() {
            mem[(addr as usize + i) % len] = *b;
        }
    }

    /// Reads a region as bytes.
    pub fn read_bytes(&self, space: MemSpace, addr: u32, n: usize) -> Vec<u8> {
        let mem = self.space(space);
        (0..n).map(|i| mem[(addr as usize + i) % mem.len()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip_little_endian() {
        let mut m = Memory::new(64, 64, 64, 64);
        m.write_word(MemSpace::Sram, 8, 0xDEADBEEF);
        assert_eq!(m.read_word(MemSpace::Sram, 8), 0xDEADBEEF);
        assert_eq!(m.read_bytes(MemSpace::Sram, 8, 2), vec![0xEF, 0xBE]);
        // Other spaces untouched.
        assert_eq!(m.read_word(MemSpace::Scratch, 8), 0);
        assert_eq!(m.read_word(MemSpace::Sdram, 8), 0);
    }

    #[test]
    fn spaces_are_independent() {
        let mut m = Memory::new(64, 64, 64, 64);
        m.write_word(MemSpace::Scratch, 0, 1);
        m.write_word(MemSpace::Sram, 0, 2);
        m.write_word(MemSpace::Sdram, 0, 3);
        assert_eq!(m.read_word(MemSpace::Scratch, 0), 1);
        assert_eq!(m.read_word(MemSpace::Sram, 0), 2);
        assert_eq!(m.read_word(MemSpace::Sdram, 0), 3);
    }

    #[test]
    fn addresses_wrap() {
        let mut m = Memory::new(16, 16, 16, 16);
        m.write_word(MemSpace::Scratch, 14, 0x11223344);
        assert_eq!(m.read_word(MemSpace::Scratch, 14), 0x11223344);
        // Bytes 14, 15 wrap to 0, 1.
        assert_eq!(m.read_bytes(MemSpace::Scratch, 0, 2), vec![0x22, 0x11]);
    }

    #[test]
    fn bulk_bytes() {
        let mut m = Memory::new(64, 64, 64, 64);
        m.write_bytes(MemSpace::Sdram, 4, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_bytes(MemSpace::Sdram, 4, 5), vec![1, 2, 3, 4, 5]);
    }
}
