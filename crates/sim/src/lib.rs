//! Cycle-level simulator of a multithreaded network-processor
//! micro-engine, standing in for the Intel IXP1200 Developer Workbench
//! used by the paper's evaluation.
//!
//! The model follows paper §2 exactly:
//!
//! * `Nthd` threads share one processing unit and one register file;
//! * threads are **non-preemptive**: a thread owns the PU until it
//!   executes a context-switch instruction (`ctx`, `load`, `store`);
//! * a context switch saves only the PC and costs one cycle;
//! * ALU instructions complete in one cycle; memory operations take tens
//!   of cycles, during which the thread is blocked and others run;
//! * a `load` destination is written when the thread *resumes* (the
//!   data travels in a per-thread transfer register, paper footnote 3).
//!
//! Programs may use virtual registers (each thread then gets its own
//! unbounded register file — the reference semantics) or physical
//! registers (all threads share one file of `Nreg` registers — the
//! allocated semantics). Running the same workload in both modes and
//! comparing memory output validates an allocation end to end; the
//! optional [`SimConfig::private_ranges`] watchdog flags any write by
//! one thread into another thread's private bank.
//!
//! For precise runtime diagnosis of allocation bugs there is the
//! opt-in **register-clobber sanitizer** ([`sanitizer`], enabled with
//! [`Simulator::enable_sanitizer`]): it tags every physical-register
//! write with (thread, pc, cycle) and reports, as structured
//! [`SanitizerReport`]s, any value a thread carried across a
//! context-switch boundary that another thread overwrote, any write
//! into a foreign private bank, and any read of a never-written
//! register.
//!
//! # Example
//!
//! ```
//! use regbal_ir::parse_func;
//! use regbal_sim::{SimConfig, Simulator, StopWhen};
//!
//! let f = parse_func(
//!     "func t {\nbb0:\n v0 = mov 64\n v1 = load sram[v0+0]\n v1 = add v1, 1\n store sram[v0+0], v1\n iter_end\n jump bb0\n}",
//! )?;
//! let mut sim = Simulator::new(SimConfig::default());
//! sim.memory_mut().write_word(regbal_ir::MemSpace::Sram, 64, 41);
//! sim.add_thread(f);
//! let report = sim.run(StopWhen::Iterations(1));
//! assert_eq!(sim.memory().read_word(regbal_ir::MemSpace::Sram, 64), 42);
//! assert_eq!(report.threads[0].iterations, 1);
//! # Ok::<(), regbal_ir::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chip;
mod config;
pub mod device;
mod machine;
mod mem;
pub mod sanitizer;

pub use chip::Chip;
pub use config::SimConfig;
pub use device::{ChipCore, Device, DeviceSpec};
pub use machine::{RunReport, SimError, Simulator, StopWhen, ThreadStats, TraceEvent, Violation};
pub use mem::Memory;
pub use sanitizer::{Pc, SanitizerConfig, SanitizerReport};
