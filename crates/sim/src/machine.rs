//! The micro-engine: threads, round-robin scheduling, execution.

use crate::config::SimConfig;
use crate::mem::Memory;
use crate::sanitizer::{Pc, Sanitizer, SanitizerConfig, SanitizerReport};
use regbal_ir::{BlockId, Func, Inst, Operand, Reg, Terminator};

/// Size of the shared physical register file in the simulator (larger
/// than the IXP's 128 so that fixed-partition baselines with spill
/// temporaries always fit).
const REGFILE_SIZE: usize = 256;

/// When to stop a [`Simulator::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopWhen {
    /// Every thread has completed at least this many main-loop
    /// iterations (threads that halt count as done).
    Iterations(u64),
    /// The global cycle counter reaches this value.
    Cycles(u64),
}

/// How an event-mode batch of a PU ended (see
/// [`Simulator::run_to_event`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PuEvent {
    /// The PU is poised to issue a shared-memory instruction: the next
    /// scheduling step at local time `at` is a load or store, and none
    /// of it has executed yet. `at` is the batch's heap key.
    Mem {
        /// Local clock at the pre-issue scheduling point.
        at: u64,
    },
    /// The PU reached its stop condition (cycle horizon or every
    /// thread halted) with no shared-memory event pending.
    Done,
}

/// One event of the optional execution trace (see
/// [`Simulator::enable_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The PU switched to `thread`.
    Switch {
        /// Cycle of the switch.
        cycle: u64,
        /// The thread now running.
        thread: usize,
    },
    /// `thread` issued a memory operation and blocked.
    MemIssue {
        /// Cycle of the issue.
        cycle: u64,
        /// The issuing thread.
        thread: usize,
        /// Target memory space.
        space: regbal_ir::MemSpace,
        /// Byte address of the first word.
        addr: u32,
        /// `true` for stores.
        write: bool,
        /// Cycle the thread becomes ready again.
        ready_at: u64,
    },
    /// `thread` yielded voluntarily (`ctx`).
    Yield {
        /// Cycle of the yield.
        cycle: u64,
        /// The yielding thread.
        thread: usize,
    },
    /// `thread` completed a main-loop iteration.
    Iteration {
        /// Cycle of the `iter_end`.
        cycle: u64,
        /// The thread.
        thread: usize,
        /// Its iteration count after this one.
        count: u64,
    },
    /// `thread` halted.
    Halt {
        /// Cycle of the halt.
        cycle: u64,
        /// The thread.
        thread: usize,
    },
}

/// A structured error the simulator hit mid-run. The offending thread
/// is halted and the error recorded (first one wins); the other
/// threads keep running, and the error surfaces in
/// [`RunReport::error`] instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A `call` instruction reached execution. Calls exist only at the
    /// module level — `regbal_ir::inline_module` must run first.
    UnloweredCall {
        /// The thread that executed the call.
        thread: usize,
        /// Name of the called function.
        callee: String,
        /// Location of the call in the thread's function.
        pc: Pc,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnloweredCall { thread, callee, pc } => write!(
                f,
                "thread {thread}: `call {callee}` at {pc} reached the simulator; \
                 inline subroutines first"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// A cross-thread register-safety violation detected by the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The writing thread.
    pub writer: usize,
    /// The thread whose private bank was written.
    pub owner: usize,
    /// The physical register written.
    pub reg: u32,
    /// The cycle of the write.
    pub cycle: u64,
}

/// Per-thread statistics of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadStats {
    /// Completed main-loop iterations (`iter_end` markers executed).
    pub iterations: u64,
    /// Instructions executed (terminators included, `iter_end` free).
    pub instructions: u64,
    /// Times the thread gave up the PU (memory blocks and `ctx`).
    pub ctx_switches: u64,
    /// Cycles the thread actually held the PU (its occupancy is
    /// `busy_cycles / run cycles`).
    pub busy_cycles: u64,
    /// Whether the thread halted.
    pub halted: bool,
    /// Wall-clock cycles of the whole run divided by this thread's
    /// iterations (`f64::INFINITY` with zero iterations) — the paper's
    /// "cycle counts averaged per iteration of the main loop".
    pub cycles_per_iteration: f64,
}

/// Result of a [`Simulator::run`].
///
/// Derives `PartialEq` so two runs can be compared field-for-field —
/// the event-driven chip cores are validated by demanding their
/// reports equal the reference interleaving's exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Per-thread statistics.
    pub threads: Vec<ThreadStats>,
    /// Watchdog violations (empty when the allocation is safe or the
    /// watchdog is disabled).
    pub violations: Vec<Violation>,
    /// Cycles during which no thread was ready (all blocked on memory).
    pub idle_cycles: u64,
    /// Trace events dropped because the buffer enabled with
    /// [`Simulator::enable_trace`] was full (0 when tracing is off or
    /// the capacity sufficed).
    pub trace_dropped: u64,
    /// The first structured error the run hit (the offending thread is
    /// halted; the rest of the PU keeps running).
    pub error: Option<SimError>,
    /// Sanitizer diagnostics (empty unless
    /// [`Simulator::enable_sanitizer`] was called).
    pub sanitizer: Vec<SanitizerReport>,
    /// Sanitizer reports dropped past the configured cap.
    pub sanitizer_dropped: u64,
    /// Fallback-ladder transitions the allocator took to produce this
    /// PU's code (stamped by the harness via
    /// [`Simulator::note_degraded`]; 0 means the primary strategy
    /// succeeded directly).
    pub degraded: u64,
}

impl RunReport {
    /// Sanitizer reports that are violations (allocation bugs), as
    /// opposed to warnings.
    pub fn sanitizer_violations(&self) -> impl Iterator<Item = &SanitizerReport> {
        self.sanitizer.iter().filter(|r| r.is_violation())
    }
}

/// The bounded trace buffer: keeps the first `capacity` events and
/// counts the rest instead of growing without limit on long traffic
/// runs.
#[derive(Debug, Clone)]
struct TraceBuf {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

#[derive(Debug, Clone)]
struct Thread {
    func: Func,
    block: BlockId,
    idx: usize,
    vregs: Vec<u32>,
    pending_load: Vec<(Reg, u32)>,
    /// Pc of the load that produced `pending_load` (the delivery at
    /// resume is attributed to the load instruction).
    pending_pc: Pc,
    ready_at: u64,
    halted: bool,
    iterations: u64,
    instructions: u64,
    ctx_switches: u64,
    busy: u64,
}

/// The simulated processing unit.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
    memory: Memory,
    threads: Vec<Thread>,
    regfile: Vec<u32>,
    now: u64,
    idle: u64,
    last_running: Option<usize>,
    rr_next: usize,
    violations: Vec<Violation>,
    trace: Option<TraceBuf>,
    sanitizer: Option<Sanitizer>,
    error: Option<SimError>,
    /// Per-space earliest next issue time under `serialize_memory`.
    port_free: [u64; 4],
    /// Degradation count stamped by the harness (plain data: the
    /// simulator does not depend on the allocator).
    degraded: u64,
}

impl Simulator {
    /// Creates an empty micro-engine.
    pub fn new(config: SimConfig) -> Simulator {
        let memory = Memory::new(
            config.scratch_size,
            config.sram_size,
            config.sdram_size,
            config.spad_size,
        );
        Simulator {
            config,
            memory,
            threads: Vec::new(),
            regfile: vec![0; REGFILE_SIZE],
            now: 0,
            idle: 0,
            last_running: None,
            rr_next: 0,
            violations: Vec::new(),
            trace: None,
            sanitizer: None,
            error: None,
            port_free: [0; 4],
            degraded: 0,
        }
    }

    /// Records how many fallback-ladder transitions the allocator took
    /// for this PU's code; surfaced verbatim in [`RunReport::degraded`].
    pub fn note_degraded(&mut self, count: u64) {
        self.degraded = count;
    }

    /// Completion time of a memory access issued now, honouring the
    /// optional single-port-per-space contention model.
    fn mem_ready_at(&mut self, space: regbal_ir::MemSpace) -> u64 {
        let latency = self.config.latency(space);
        if !self.config.serialize_memory {
            return self.now + latency;
        }
        let port = match space {
            regbal_ir::MemSpace::Scratch => 0,
            regbal_ir::MemSpace::Sram => 1,
            regbal_ir::MemSpace::Sdram => 2,
            regbal_ir::MemSpace::Spad => 3,
        };
        let start = self.now.max(self.port_free[port]);
        let done = start + latency;
        self.port_free[port] = done;
        done
    }

    /// Enables event tracing, keeping at most `capacity` events (the
    /// earliest ones). Later events are not stored — the buffer never
    /// grows past the configured limit, even on traffic runs of
    /// millions of cycles — but they are *counted*: see
    /// [`trace_dropped`](Self::trace_dropped) and
    /// [`RunReport::trace_dropped`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuf {
            events: Vec::new(),
            capacity,
            dropped: 0,
        });
    }

    /// Enables the dynamic register-clobber sanitizer (see
    /// [`crate::sanitizer`]): every physical-register access is
    /// checked against the allocation's bank layout and fragment map.
    /// Enable before running; diagnostics surface in
    /// [`RunReport::sanitizer`] and via
    /// [`sanitizer_reports`](Self::sanitizer_reports).
    pub fn enable_sanitizer(&mut self, config: SanitizerConfig) {
        self.sanitizer = Some(Sanitizer::new(config, REGFILE_SIZE));
    }

    /// The sanitizer diagnostics so far (empty unless enabled).
    pub fn sanitizer_reports(&self) -> &[SanitizerReport] {
        self.sanitizer.as_ref().map_or(&[], |s| s.reports())
    }

    /// Sanitizer reports dropped past the configured cap.
    pub fn sanitizer_dropped(&self) -> u64 {
        self.sanitizer.as_ref().map_or(0, |s| s.dropped())
    }

    /// The first structured error the simulation hit, if any.
    pub fn error(&self) -> Option<&SimError> {
        self.error.as_ref()
    }

    /// The recorded trace (empty unless enabled).
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.as_ref().map_or(&[], |t| t.events.as_slice())
    }

    /// Events dropped because the trace buffer was full (0 when tracing
    /// is disabled).
    pub fn trace_dropped(&self) -> u64 {
        self.trace.as_ref().map_or(0, |t| t.dropped)
    }

    fn record(&mut self, event: TraceEvent) {
        if let Some(buf) = &mut self.trace {
            if buf.events.len() < buf.capacity {
                buf.events.push(event);
            } else {
                buf.dropped += 1;
            }
        }
    }

    /// Adds a thread executing `func` from its entry block. Virtual
    /// registers live in a per-thread file; physical registers in the
    /// shared file. Returns the thread index.
    ///
    /// # Panics
    ///
    /// Panics if `func` fails validation.
    pub fn add_thread(&mut self, func: Func) -> usize {
        func.validate().expect("simulated function must be valid");
        let entry = func.entry;
        let nv = func.num_vregs as usize;
        self.threads.push(Thread {
            func,
            block: entry,
            idx: 0,
            vregs: vec![0; nv],
            pending_load: Vec::new(),
            pending_pc: Pc::default(),
            ready_at: 0,
            halted: false,
            iterations: 0,
            instructions: 0,
            ctx_switches: 0,
            busy: 0,
        });
        self.threads.len() - 1
    }

    /// The memories, for pre-loading packets and checking results.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable access to the memories.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Current value of a physical register.
    pub fn regfile(&self, index: u32) -> u32 {
        self.regfile[index as usize]
    }

    /// Runs until `stop` (or the configured global cycle budget).
    pub fn run(&mut self, stop: StopWhen) -> RunReport {
        let mut mem = std::mem::replace(&mut self.memory, Memory::new(0, 0, 0, 0));
        let report = self.run_shared(&mut mem, stop);
        self.memory = mem;
        report
    }

    /// The PU's local clock (cycles executed so far).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether every thread of this PU has halted.
    pub fn all_halted(&self) -> bool {
        self.threads.iter().all(|t| t.halted)
    }

    /// Like [`run`](Self::run) but against an external memory — the
    /// building block of [`crate::Chip`], where several PUs share the
    /// off-chip memories. The PU's own memory is ignored.
    pub fn run_shared(&mut self, mem: &mut Memory, stop: StopWhen) -> RunReport {
        self.run_batch(mem, stop, u64::MAX, false);
        self.report()
    }

    /// Runs only *pure* work: executes the PU up to (but not into) its
    /// next shared-memory instruction, or to `stop` / halt. Pure work
    /// reads and writes nothing outside this PU, so calls on different
    /// PUs commute — the parallel chip core farms them to OS threads.
    ///
    /// On `Mem { at }` the PU is *poised*: the scheduling step at local
    /// time `at` would issue a load or store, and none of that step
    /// (context-switch cost included) has executed yet.
    pub(crate) fn run_to_event(&mut self, stop: StopWhen) -> PuEvent {
        // The batch provably executes no memory instruction (fuel 0
        // stops it poised first), so a placeholder memory suffices.
        let mut dummy = Memory::new(0, 0, 0, 0);
        self.run_batch(&mut dummy, stop, 0, false)
    }

    /// Resolves a poised shared-memory event against `mem`, then keeps
    /// running pure work to the next event. The serial event-driven
    /// core's per-event step: returns the PU's next event key.
    pub(crate) fn run_through_event(&mut self, mem: &mut Memory, stop: StopWhen) -> PuEvent {
        self.run_batch(mem, stop, 1, false)
    }

    /// Resolves a poised shared-memory event against `mem` and stops
    /// immediately after the issuing step — the parallel core's
    /// serial portion; the pure continuation goes to a worker via
    /// [`run_to_event`](Self::run_to_event).
    pub(crate) fn run_mem_op(&mut self, mem: &mut Memory, stop: StopWhen) {
        self.run_batch(mem, stop, 1, true);
    }

    /// A lower bound on the key of this PU's next shared-memory event:
    /// no future [`run_to_event`](Self::run_to_event) returns
    /// `Mem { at }` with `at` below this. `u64::MAX` when every thread
    /// has halted.
    pub(crate) fn next_event_bound(&self) -> u64 {
        self.threads
            .iter()
            .filter(|t| !t.halted)
            .map(|t| t.ready_at.max(self.now))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// The scheduling loop shared by the slice core and the event core.
    ///
    /// `fuel` is the number of shared-memory instructions the batch may
    /// execute; when the next scheduling step would issue one with no
    /// fuel left, the loop returns `Mem { at: self.now }` *before*
    /// committing anything (no rotation, no context-switch cost), so
    /// re-entering with fuel replays the step exactly. With
    /// `stop_after_op` the batch ends right after the fueled memory
    /// instruction issues.
    ///
    /// Invariant behind the event-driven chip: every effect on state
    /// outside this PU happens in a fueled memory step, and the key
    /// `at` equals the `now` the reference granularity-1 interleaving
    /// would schedule that step at.
    fn run_batch(
        &mut self,
        mem: &mut Memory,
        stop: StopWhen,
        mut fuel: u64,
        stop_after_op: bool,
    ) -> PuEvent {
        loop {
            if self.now >= self.config.max_cycles || self.stopped(stop) {
                return PuEvent::Done;
            }
            // Continue the owning thread if it can still run.
            if let Some(i) = self.last_running {
                if !self.threads[i].halted
                    && self.threads[i].ready_at <= self.now
                    && self.is_running(i)
                {
                    let is_mem = self.poised_at_mem(i);
                    if is_mem {
                        if fuel == 0 {
                            return PuEvent::Mem { at: self.now };
                        }
                        fuel -= 1;
                    }
                    self.step(i, mem);
                    if is_mem && stop_after_op {
                        return PuEvent::Done;
                    }
                    continue;
                }
            }
            // Pick the next ready thread, round robin.
            match self.peek_ready() {
                Some(j) => {
                    let is_mem = self.poised_at_mem(j);
                    if is_mem {
                        if fuel == 0 {
                            return PuEvent::Mem { at: self.now };
                        }
                        fuel -= 1;
                    }
                    self.rr_next = (j + 1) % self.threads.len();
                    if self.last_running != Some(j) {
                        self.now += self.config.ctx_switch_cost;
                    }
                    self.resume(j);
                    self.step(j, mem);
                    if is_mem && stop_after_op {
                        return PuEvent::Done;
                    }
                }
                None => {
                    // All blocked: advance to the earliest wake-up.
                    let Some(next) = self
                        .threads
                        .iter()
                        .filter(|t| !t.halted)
                        .map(|t| t.ready_at)
                        .min()
                    else {
                        return PuEvent::Done; // everything halted
                    };
                    let next = next.max(self.now + 1);
                    self.idle += next - self.now;
                    self.now = next;
                }
            }
        }
    }

    /// Whether thread `i`'s next instruction is a shared-memory access
    /// (the batch boundary of the event-driven core). Terminators and
    /// ALU/`ctx` instructions touch only PU-local state.
    fn poised_at_mem(&self, i: usize) -> bool {
        let t = &self.threads[i];
        matches!(
            t.func.block(t.block).insts.get(t.idx),
            Some(
                Inst::Load { .. }
                    | Inst::LoadBurst { .. }
                    | Inst::Store { .. }
                    | Inst::StoreBurst { .. }
            )
        )
    }

    /// Whether thread `i` currently owns the PU (it was the last runner
    /// and has not blocked or yielded).
    fn is_running(&self, i: usize) -> bool {
        // A thread that blocked recorded a future ready_at at the time;
        // a voluntary yield cleared last_running instead.
        self.last_running == Some(i)
    }

    fn stopped(&self, stop: StopWhen) -> bool {
        match stop {
            StopWhen::Cycles(c) => self.now >= c,
            StopWhen::Iterations(n) => self
                .threads
                .iter()
                .all(|t| t.halted || t.iterations >= n),
        }
    }

    /// The thread the round-robin scan would pick, without committing
    /// the rotation — callers that schedule it must set `rr_next` to
    /// `(j + 1) % n` themselves (see [`run_batch`](Self::run_batch)).
    fn peek_ready(&self) -> Option<usize> {
        let n = self.threads.len();
        (0..n)
            .map(|off| (self.rr_next + off) % n)
            .find(|&j| !self.threads[j].halted && self.threads[j].ready_at <= self.now)
    }

    /// Makes thread `j` the runner, delivering any pending load result
    /// (the transfer-register copy at resume).
    fn resume(&mut self, j: usize) {
        self.record(TraceEvent::Switch {
            cycle: self.now,
            thread: j,
        });
        self.last_running = Some(j);
        let pc = self.threads[j].pending_pc;
        for (dst, value) in std::mem::take(&mut self.threads[j].pending_load) {
            self.write_reg(j, dst, value, pc);
        }
    }

    fn read_reg(&mut self, i: usize, r: Reg, pc: Pc) -> u32 {
        match r {
            Reg::Virt(v) => self.threads[i].vregs[v.index()],
            Reg::Phys(p) => {
                let slot = p.index() % REGFILE_SIZE;
                if let Some(san) = &mut self.sanitizer {
                    san.note_read(i, slot as u32, pc, self.now);
                }
                self.regfile[slot]
            }
        }
    }

    fn write_reg(&mut self, i: usize, r: Reg, value: u32, pc: Pc) {
        match r {
            Reg::Virt(v) => self.threads[i].vregs[v.index()] = value,
            Reg::Phys(p) => {
                let slot = p.index() % REGFILE_SIZE;
                for (owner, range) in self.config.private_ranges.iter().enumerate() {
                    if owner != i && range.contains(&p.0) {
                        self.violations.push(Violation {
                            writer: i,
                            owner,
                            reg: p.0,
                            cycle: self.now,
                        });
                    }
                }
                if let Some(san) = &mut self.sanitizer {
                    san.note_write(i, slot as u32, pc, self.now);
                }
                self.regfile[slot] = value;
            }
        }
    }

    fn operand(&mut self, i: usize, o: Operand, pc: Pc) -> u32 {
        match o {
            Operand::Reg(r) => self.read_reg(i, r, pc),
            Operand::Imm(imm) => imm as u32,
        }
    }

    /// Records that thread `i` crosses a context-switch boundary at
    /// `pc` (for the sanitizer's epoch tracking).
    fn note_csb(&mut self, i: usize, pc: Pc) {
        if let Some(san) = &mut self.sanitizer {
            san.note_csb(i, pc);
        }
    }

    /// Records a spill-scratchpad word access for the sanitizer's
    /// cross-thread clobber tracking (spad slots are thread-private
    /// spill homes, so foreign overwrites are diagnosable like
    /// register clobbers).
    fn note_spad(&mut self, i: usize, addr: u32, write: bool, pc: Pc) {
        if let Some(san) = &mut self.sanitizer {
            if write {
                san.note_spad_write(i, addr, pc, self.now);
            } else {
                san.note_spad_read(i, addr, pc, self.now);
            }
        }
    }

    /// Executes one instruction of thread `i`.
    fn step(&mut self, i: usize, mem: &mut Memory) {
        let block = self.threads[i].block;
        let idx = self.threads[i].idx;
        let body_len = self.threads[i].func.block(block).insts.len();
        let pc = Pc {
            block: block.0,
            inst: idx as u32,
        };

        if idx == body_len {
            // Terminator: one cycle, control transfer.
            self.now += 1;
            self.threads[i].busy += 1;
            self.threads[i].instructions += 1;
            let term = self.threads[i].func.block(block).term.clone();
            match term {
                Terminator::Jump(t) => {
                    self.threads[i].block = t;
                    self.threads[i].idx = 0;
                }
                Terminator::Branch {
                    cond,
                    lhs,
                    rhs,
                    taken,
                    fallthrough,
                } => {
                    let l = self.read_reg(i, lhs, pc);
                    let r = self.operand(i, rhs, pc);
                    self.threads[i].block = if cond.eval(l, r) { taken } else { fallthrough };
                    self.threads[i].idx = 0;
                }
                Terminator::Halt => {
                    self.threads[i].halted = true;
                    self.last_running = None;
                    self.record(TraceEvent::Halt {
                        cycle: self.now,
                        thread: i,
                    });
                }
            }
            return;
        }

        let inst = self.threads[i].func.block(block).insts[idx].clone();
        self.threads[i].idx += 1;
        match inst {
            Inst::IterEnd => {
                // Free marker: no cycle, no instruction count.
                self.threads[i].iterations += 1;
                self.record(TraceEvent::Iteration {
                    cycle: self.now,
                    thread: i,
                    count: self.threads[i].iterations,
                });
                return;
            }
            _ => {
                self.now += 1;
                self.threads[i].busy += 1;
                self.threads[i].instructions += 1;
            }
        }
        match inst {
            Inst::Bin { op, dst, lhs, rhs } => {
                let l = self.read_reg(i, lhs, pc);
                let r = self.operand(i, rhs, pc);
                self.write_reg(i, dst, eval_bin(op, l, r), pc);
            }
            Inst::Un { op, dst, src } => {
                let s = self.operand(i, src, pc);
                let value = match op {
                    regbal_ir::UnOp::Mov => s,
                    regbal_ir::UnOp::Not => !s,
                    regbal_ir::UnOp::Neg => s.wrapping_neg(),
                };
                self.write_reg(i, dst, value, pc);
            }
            Inst::Load {
                dst,
                base,
                offset,
                space,
            } => {
                let addr = self
                    .read_reg(i, base, pc)
                    .wrapping_add(offset as u32);
                let value = mem.read_word(space, addr);
                if space == regbal_ir::MemSpace::Spad {
                    self.note_spad(i, addr, false, pc);
                }
                self.note_csb(i, pc);
                self.threads[i].pending_load = vec![(dst, value)];
                self.threads[i].pending_pc = pc;
                self.threads[i].ready_at = self.mem_ready_at(space);
                self.threads[i].ctx_switches += 1;
                self.last_running = None;
                self.record(TraceEvent::MemIssue {
                    cycle: self.now,
                    thread: i,
                    space,
                    addr,
                    write: false,
                    ready_at: self.threads[i].ready_at,
                });
            }
            Inst::LoadBurst {
                dsts,
                base,
                offset,
                space,
            } => {
                let addr = self.read_reg(i, base, pc).wrapping_add(offset as u32);
                if space == regbal_ir::MemSpace::Spad {
                    for w in 0..dsts.len() {
                        self.note_spad(i, addr + 4 * w as u32, false, pc);
                    }
                }
                self.note_csb(i, pc);
                self.threads[i].pending_load = dsts
                    .iter()
                    .enumerate()
                    .map(|(w, &d)| (d, mem.read_word(space, addr + 4 * w as u32)))
                    .collect();
                self.threads[i].pending_pc = pc;
                self.threads[i].ready_at = self.mem_ready_at(space);
                self.threads[i].ctx_switches += 1;
                self.last_running = None;
                self.record(TraceEvent::MemIssue {
                    cycle: self.now,
                    thread: i,
                    space,
                    addr,
                    write: false,
                    ready_at: self.threads[i].ready_at,
                });
            }
            Inst::StoreBurst {
                srcs,
                base,
                offset,
                space,
            } => {
                let addr = self.read_reg(i, base, pc).wrapping_add(offset as u32);
                for (w, &s) in srcs.iter().enumerate() {
                    let value = self.read_reg(i, s, pc);
                    mem.write_word(space, addr + 4 * w as u32, value);
                    if space == regbal_ir::MemSpace::Spad {
                        self.note_spad(i, addr + 4 * w as u32, true, pc);
                    }
                }
                self.note_csb(i, pc);
                self.threads[i].ready_at = self.mem_ready_at(space);
                self.threads[i].ctx_switches += 1;
                self.last_running = None;
                self.record(TraceEvent::MemIssue {
                    cycle: self.now,
                    thread: i,
                    space,
                    addr,
                    write: true,
                    ready_at: self.threads[i].ready_at,
                });
            }
            Inst::Store {
                src,
                base,
                offset,
                space,
            } => {
                let addr = self
                    .read_reg(i, base, pc)
                    .wrapping_add(offset as u32);
                let value = self.read_reg(i, src, pc);
                mem.write_word(space, addr, value);
                if space == regbal_ir::MemSpace::Spad {
                    self.note_spad(i, addr, true, pc);
                }
                self.note_csb(i, pc);
                self.threads[i].ready_at = self.mem_ready_at(space);
                self.threads[i].ctx_switches += 1;
                self.last_running = None;
                self.record(TraceEvent::MemIssue {
                    cycle: self.now,
                    thread: i,
                    space,
                    addr,
                    write: true,
                    ready_at: self.threads[i].ready_at,
                });
            }
            Inst::Ctx => {
                // Voluntary yield: ready immediately, but the PU moves
                // on to the next ready thread.
                self.note_csb(i, pc);
                self.threads[i].ctx_switches += 1;
                self.last_running = None;
                self.record(TraceEvent::Yield {
                    cycle: self.now,
                    thread: i,
                });
            }
            Inst::Nop => {}
            Inst::Call { callee } => {
                // Calls exist only pre-inlining; executing one is a
                // toolchain bug. Record it and halt the thread — the
                // rest of the PU keeps running and the error surfaces
                // in the report instead of aborting the process.
                if self.error.is_none() {
                    self.error = Some(SimError::UnloweredCall {
                        thread: i,
                        callee,
                        pc,
                    });
                }
                self.threads[i].halted = true;
                self.last_running = None;
                self.record(TraceEvent::Halt {
                    cycle: self.now,
                    thread: i,
                });
            }
            Inst::IterEnd => unreachable!("handled above"),
        }
    }

    /// A statistics snapshot without advancing the simulation.
    pub fn report(&self) -> RunReport {
        RunReport {
            cycles: self.now,
            threads: self
                .threads
                .iter()
                .map(|t| ThreadStats {
                    iterations: t.iterations,
                    instructions: t.instructions,
                    ctx_switches: t.ctx_switches,
                    busy_cycles: t.busy,
                    halted: t.halted,
                    cycles_per_iteration: if t.iterations > 0 {
                        self.now as f64 / t.iterations as f64
                    } else {
                        f64::INFINITY
                    },
                })
                .collect(),
            violations: self.violations.clone(),
            idle_cycles: self.idle,
            trace_dropped: self.trace_dropped(),
            error: self.error.clone(),
            sanitizer: self.sanitizer_reports().to_vec(),
            sanitizer_dropped: self.sanitizer_dropped(),
            degraded: self.degraded,
        }
    }
}

fn eval_bin(op: regbal_ir::BinOp, l: u32, r: u32) -> u32 {
    use regbal_ir::BinOp::*;
    match op {
        Add => l.wrapping_add(r),
        Sub => l.wrapping_sub(r),
        Mul => l.wrapping_mul(r),
        And => l & r,
        Or => l | r,
        Xor => l ^ r,
        Shl => l.wrapping_shl(r),
        Shr => l.wrapping_shr(r),
        Asr => (l as i32).wrapping_shr(r) as u32,
        SetLt => u32::from((l as i32) < (r as i32)),
        SetLtU => u32::from(l < r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::{parse_func, MemSpace};

    fn sim() -> Simulator {
        Simulator::new(SimConfig::default())
    }

    #[test]
    fn arithmetic_and_memory() {
        let f = parse_func(
            "func t {\nbb0:\n v0 = mov 100\n v1 = mov 7\n v2 = mul v1, 6\n v2 = add v2, 1\n store scratch[v0+0], v2\n halt\n}",
        )
        .unwrap();
        let mut s = sim();
        s.add_thread(f);
        let r = s.run(StopWhen::Cycles(10_000));
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 100), 43);
        assert!(r.threads[0].halted);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn load_latency_blocks_single_thread() {
        let f = parse_func(
            "func t {\nbb0:\n v0 = mov 0\n v1 = load sram[v0+0]\n v1 = add v1, 1\n store scratch[v0+0], v1\n halt\n}",
        )
        .unwrap();
        let mut s = sim();
        s.memory_mut().write_word(MemSpace::Sram, 0, 9);
        s.add_thread(f);
        let r = s.run(StopWhen::Cycles(10_000));
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 0), 10);
        // mov(1) + load(1) + latency(20 idle) + add(1) + store(1)
        // + latency(16) + halt(1) ≈ 41+ cycles.
        assert!(r.cycles >= 40, "cycles {}", r.cycles);
        assert!(r.idle_cycles >= 20, "idle {}", r.idle_cycles);
    }

    #[test]
    fn two_threads_hide_latency() {
        let src = "func t {\nbb0:\n v0 = mov 0\n jump bb1\nbb1:\n v1 = load sram[v0+0]\n v0 = add v0, 4\n iter_end\n bltu v0, 400, bb1, bb2\nbb2:\n halt\n}";
        let f = parse_func(src).unwrap();
        // One thread alone:
        let mut s1 = sim();
        s1.add_thread(f.clone());
        let r1 = s1.run(StopWhen::Cycles(1_000_000));
        // Two threads share the PU:
        let mut s2 = sim();
        s2.add_thread(f.clone());
        s2.add_thread(f);
        let r2 = s2.run(StopWhen::Cycles(1_000_000));
        assert!(r1.threads[0].halted && r2.threads[1].halted);
        // Two threads do twice the work in much less than twice the time.
        assert!(
            (r2.cycles as f64) < 1.5 * r1.cycles as f64,
            "no latency hiding: {} vs {}",
            r2.cycles,
            r1.cycles
        );
        assert!(r2.idle_cycles < r1.idle_cycles);
    }

    #[test]
    fn ctx_rotates_threads_fairly() {
        // Each thread increments its own counter in scratch, yielding
        // between increments; both must make progress.
        let make = |addr: u32| {
            parse_func(&format!(
                "func t {{\nbb0:\n v0 = mov {addr}\n v1 = mov 0\n jump bb1\nbb1:\n v1 = add v1, 1\n ctx\n bltu v1, 50, bb1, bb2\nbb2:\n store scratch[v0+0], v1\n halt\n}}"
            ))
            .unwrap()
        };
        let mut s = sim();
        s.add_thread(make(0));
        s.add_thread(make(4));
        let r = s.run(StopWhen::Cycles(100_000));
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 0), 50);
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 4), 50);
        assert!(r.threads[0].ctx_switches >= 49);
    }

    #[test]
    fn iteration_stop_condition() {
        let f = parse_func(
            "func t {\nbb0:\n nop\n iter_end\n jump bb0\n}",
        )
        .unwrap();
        let mut s = sim();
        s.add_thread(f);
        let r = s.run(StopWhen::Iterations(10));
        assert!(r.threads[0].iterations >= 10);
        assert!(r.threads[0].cycles_per_iteration.is_finite());
    }

    #[test]
    fn physical_registers_are_shared_between_threads() {
        // Thread 0 busy-waits on r0 == 1 which thread 1 sets; with a
        // shared file the flag is visible.
        let t0 = parse_func(
            "func a {\nbb0:\n ctx\n beq r0, 1, bb1, bb0\nbb1:\n r1 = mov 77\n r2 = mov 0\n store scratch[r2+0], r1\n halt\n}",
        )
        .unwrap();
        let t1 = parse_func("func b {\nbb0:\n r0 = mov 1\n halt\n}").unwrap();
        let mut s = sim();
        s.add_thread(t0);
        s.add_thread(t1);
        let r = s.run(StopWhen::Cycles(10_000));
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 0), 77);
        assert!(r.threads[0].halted);
    }

    #[test]
    fn watchdog_flags_cross_thread_private_writes() {
        // Thread 1 writes r2, which belongs to thread 0's private bank.
        let t0 = parse_func("func a {\nbb0:\n r2 = mov 5\n ctx\n r3 = mov 0\n store scratch[r3+0], r2\n halt\n}").unwrap();
        let t1 = parse_func("func b {\nbb0:\n r2 = mov 99\n halt\n}").unwrap();
        let config = SimConfig {
            private_ranges: vec![0..8, 8..16],
            ..SimConfig::default()
        };
        let mut s = Simulator::new(config);
        s.add_thread(t0);
        s.add_thread(t1);
        let r = s.run(StopWhen::Cycles(10_000));
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].writer, 1);
        assert_eq!(r.violations[0].owner, 0);
        assert_eq!(r.violations[0].reg, 2);
        // And the clobber is observable: thread 0 stores 99, not 5.
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 0), 99);
    }

    #[test]
    fn load_destination_written_at_resume_not_issue() {
        // Thread 0: loads into r0, then stores r0. Thread 1 overwrites
        // r0 while thread 0 waits; the transfer-register model must
        // still deliver the loaded value at resume.
        let t0 = parse_func(
            "func a {\nbb0:\n r1 = mov 0\n r0 = load sram[r1+0]\n store scratch[r1+0], r0\n halt\n}",
        )
        .unwrap();
        let t1 = parse_func("func b {\nbb0:\n r0 = mov 1234\n halt\n}").unwrap();
        let mut s = sim();
        s.memory_mut().write_word(MemSpace::Sram, 0, 5678);
        s.add_thread(t0);
        s.add_thread(t1);
        s.run(StopWhen::Cycles(10_000));
        assert_eq!(
            s.memory().read_word(MemSpace::Scratch, 0),
            5678,
            "load result must survive the other thread's write to r0"
        );
    }

    #[test]
    fn halted_threads_leave_the_rotation() {
        let t0 = parse_func("func a {\nbb0:\n halt\n}").unwrap();
        let t1 = parse_func(
            "func b {\nbb0:\n v0 = mov 3\n v1 = mov 0\n store scratch[v1+0], v0\n halt\n}",
        )
        .unwrap();
        let mut s = sim();
        s.add_thread(t0);
        s.add_thread(t1);
        let r = s.run(StopWhen::Cycles(1_000));
        assert!(r.threads.iter().all(|t| t.halted));
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 0), 3);
    }

    #[test]
    fn cycle_budget_stops_runaway_loops() {
        let f = parse_func("func spin {\nbb0:\n nop\n jump bb0\n}").unwrap();
        let mut s = sim();
        s.add_thread(f);
        let r = s.run(StopWhen::Cycles(500));
        assert!(r.cycles >= 500 && r.cycles < 600);
        assert!(!r.threads[0].halted);
    }

    #[test]
    fn signed_ops_behave() {
        let f = parse_func(
            "func t {\nbb0:\n v0 = mov -8\n v1 = asr v0, 1\n v2 = slt v0, 0\n v3 = mov 0\n store scratch[v3+0], v1\n store scratch[v3+4], v2\n halt\n}",
        )
        .unwrap();
        let mut s = sim();
        s.add_thread(f);
        s.run(StopWhen::Cycles(10_000));
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 0) as i32, -4);
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 4), 1);
    }
}

#[cfg(test)]
mod sanitizer_tests {
    use super::*;
    use regbal_ir::{parse_func, MemSpace};

    #[test]
    fn clobber_across_ctx_is_diagnosed_with_the_full_triple() {
        // Thread 0 parks 5 in r4, yields, reads it back; thread 1
        // overwrites r4 in between — the canonical shared-register
        // clobber the allocator must never produce.
        let t0 = parse_func(
            "func a {\nbb0:\n r4 = mov 5\n ctx\n r5 = mov 0\n store scratch[r5+0], r4\n halt\n}",
        )
        .unwrap();
        let t1 = parse_func("func b {\nbb0:\n r4 = mov 99\n halt\n}").unwrap();
        let mut s = Simulator::new(SimConfig::default());
        let mut cfg = SanitizerConfig::with_layout(vec![0..4], Some(4..8));
        cfg.fragments.insert((0, 4), "v0#0".into());
        cfg.fragments.insert((1, 4), "v7#0".into());
        s.enable_sanitizer(cfg);
        s.add_thread(t0);
        s.add_thread(t1);
        let r = s.run(StopWhen::Cycles(10_000));
        let clobbers: Vec<_> = r
            .sanitizer
            .iter()
            .filter(|d| matches!(d, SanitizerReport::SharedClobber { .. }))
            .collect();
        assert_eq!(clobbers.len(), 1, "{:?}", r.sanitizer);
        match clobbers[0] {
            SanitizerReport::SharedClobber {
                reg,
                reader,
                writer,
                reader_fragment,
                writer_fragment,
                csb_pc,
                write_cycle,
                cycle,
                ..
            } => {
                assert_eq!((*reg, *reader, *writer), (4, 0, 1));
                assert_eq!(reader_fragment, "v0#0");
                assert_eq!(writer_fragment, "v7#0");
                // The `ctx` is the second instruction of bb0.
                assert_eq!(*csb_pc, Pc { block: 0, inst: 1 });
                assert!(write_cycle < cycle);
            }
            _ => unreachable!(),
        }
        assert_eq!(r.sanitizer_violations().count(), 1);
    }

    #[test]
    fn uninitialized_read_warns_but_still_reads_zero() {
        let f = parse_func(
            "func t {\nbb0:\n r1 = add r5, 7\n r2 = mov 0\n store scratch[r2+0], r1\n halt\n}",
        )
        .unwrap();
        let mut s = Simulator::new(SimConfig::default());
        s.enable_sanitizer(SanitizerConfig::default());
        s.add_thread(f);
        let r = s.run(StopWhen::Cycles(1_000));
        // The silent-zero semantics are preserved...
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 0), 7);
        // ...but the reliance on them is now visible, as a warning.
        assert!(r.sanitizer.iter().any(|d| matches!(
            d,
            SanitizerReport::UninitializedRead { reg: 5, thread: 0, .. }
        )));
        assert_eq!(r.sanitizer_violations().count(), 0);
    }

    #[test]
    fn sanitizer_off_keeps_reports_empty() {
        let f = parse_func("func t {\nbb0:\n r1 = add r5, 7\n halt\n}").unwrap();
        let mut s = Simulator::new(SimConfig::default());
        s.add_thread(f);
        let r = s.run(StopWhen::Cycles(1_000));
        assert!(r.sanitizer.is_empty());
        assert_eq!(r.sanitizer_dropped, 0);
    }

    #[test]
    fn transfer_register_delivery_is_attributed_to_the_reader() {
        // Same shape as load_destination_written_at_resume_not_issue:
        // thread 1 writes r0 while thread 0 waits on a load into r0.
        // The delivery at resume makes thread 0 the last writer, so the
        // subsequent read must NOT be flagged as a clobber.
        let t0 = parse_func(
            "func a {\nbb0:\n r1 = mov 0\n r0 = load sram[r1+0]\n store scratch[r1+0], r0\n halt\n}",
        )
        .unwrap();
        let t1 = parse_func("func b {\nbb0:\n r0 = mov 1234\n halt\n}").unwrap();
        let mut s = Simulator::new(SimConfig::default());
        s.enable_sanitizer(SanitizerConfig::default());
        s.memory_mut().write_word(MemSpace::Sram, 0, 5678);
        s.add_thread(t0);
        s.add_thread(t1);
        let r = s.run(StopWhen::Cycles(10_000));
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 0), 5678);
        assert_eq!(r.sanitizer_violations().count(), 0, "{:?}", r.sanitizer);
    }

    #[test]
    fn private_registers_never_false_positive_across_csbs() {
        // Each thread keeps a counter in its own private register
        // across many yields: no reports of any kind.
        let make = |reg: u32, addr: u32| {
            parse_func(&format!(
                "func t {{\nbb0:\n r{reg} = mov 0\n jump bb1\nbb1:\n r{reg} = add r{reg}, 1\n ctx\n bltu r{reg}, 20, bb1, bb2\nbb2:\n r30 = mov {addr}\n store scratch[r30+0], r{reg}\n halt\n}}"
            ))
            .unwrap()
        };
        let mut s = Simulator::new(SimConfig::default());
        s.enable_sanitizer(SanitizerConfig::with_layout(vec![0..8, 8..16], None));
        s.add_thread(make(2, 0));
        s.add_thread(make(10, 4));
        let r = s.run(StopWhen::Cycles(100_000));
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 0), 20);
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 4), 20);
        assert!(r.sanitizer.is_empty(), "{:?}", r.sanitizer);
    }

    #[test]
    fn foreign_private_write_is_a_structured_violation_too() {
        let t0 = parse_func("func a {\nbb0:\n r2 = mov 5\n ctx\n halt\n}").unwrap();
        let t1 = parse_func("func b {\nbb0:\n r2 = mov 99\n halt\n}").unwrap();
        let config = SimConfig {
            private_ranges: vec![0..8, 8..16],
            ..SimConfig::default()
        };
        let mut s = Simulator::new(config);
        s.enable_sanitizer(SanitizerConfig::with_layout(vec![0..8, 8..16], None));
        s.add_thread(t0);
        s.add_thread(t1);
        let r = s.run(StopWhen::Cycles(10_000));
        // Both the legacy watchdog and the sanitizer fire.
        assert_eq!(r.violations.len(), 1);
        assert!(r.sanitizer.iter().any(|d| matches!(
            d,
            SanitizerReport::ForeignPrivateWrite { reg: 2, writer: 1, owner: 0, .. }
        )));
    }

    #[test]
    fn cross_thread_spad_clobber_is_caught_end_to_end() {
        // The exact bug the scratch-tier allocator must never produce:
        // two threads handed the same scratchpad spill slot. Thread 0
        // parks 5 in spad word 0x100, yields, reloads it; thread 1
        // overwrites the slot in between. The reload observes 99 (spad
        // is a plain shared store at machine level) and the sanitizer
        // pins the clobber on the foreign writer.
        let t0 = parse_func(
            "func a {\nbb0:\n r1 = mov 256\n r2 = mov 5\n store spad[r1+0], r2\n ctx\n \
             r3 = load spad[r1+0]\n r4 = mov 0\n store scratch[r4+0], r3\n halt\n}",
        )
        .unwrap();
        // Disjoint register numbers per thread: the only cross-thread
        // state is the shared spad slot itself.
        let t1 = parse_func(
            "func b {\nbb0:\n r11 = mov 256\n r12 = mov 99\n store spad[r11+0], r12\n halt\n}",
        )
        .unwrap();
        let mut s = Simulator::new(SimConfig::default());
        s.enable_sanitizer(SanitizerConfig::default());
        s.add_thread(t0);
        s.add_thread(t1);
        let r = s.run(StopWhen::Cycles(10_000));
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 0), 99, "clobber lands");
        let clobbers: Vec<_> = r
            .sanitizer
            .iter()
            .filter(|d| matches!(d, SanitizerReport::ScratchpadClobber { .. }))
            .collect();
        assert_eq!(clobbers.len(), 1, "{:?}", r.sanitizer);
        match clobbers[0] {
            SanitizerReport::ScratchpadClobber {
                addr,
                reader,
                writer,
                write_cycle,
                cycle,
                ..
            } => {
                assert_eq!((*addr, *reader, *writer), (256, 0, 1));
                assert!(write_cycle < cycle);
            }
            _ => unreachable!(),
        }
        assert_eq!(r.sanitizer_violations().count(), 1);
    }

    #[test]
    fn disjoint_spad_slots_never_false_positive() {
        // The healthy shape the packer produces: dense slots, one per
        // spill, no sharing — across yields, zero reports.
        let make = |r: u32, slot: u32, val: i64, out: u32| {
            parse_func(&format!(
                "func t {{\nbb0:\n r{r} = mov {slot}\n r{} = mov {val}\n store spad[r{r}+0], r{} \
                 \n ctx\n r{} = load spad[r{r}+0]\n r{} = mov {out}\n \
                 store scratch[r{}+0], r{}\n halt\n}}",
                r + 1,
                r + 1,
                r + 2,
                r + 3,
                r + 3,
                r + 2
            ))
            .unwrap()
        };
        let mut s = Simulator::new(SimConfig::default());
        s.enable_sanitizer(SanitizerConfig::default());
        s.add_thread(make(1, 256, 5, 0));
        s.add_thread(make(11, 260, 7, 4));
        let r = s.run(StopWhen::Cycles(10_000));
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 0), 5);
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 4), 7);
        assert!(r.sanitizer.is_empty(), "{:?}", r.sanitizer);
    }

    #[test]
    fn zero_thread_run_reports_cleanly() {
        let mut s = Simulator::new(SimConfig::default());
        s.enable_sanitizer(SanitizerConfig::default());
        let r = s.run(StopWhen::Cycles(100));
        assert_eq!(r.cycles, 0);
        assert!(r.threads.is_empty());
        assert!(r.sanitizer.is_empty());
        assert!(r.error.is_none());
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;
    use regbal_ir::{parse_func, parse_module, MemSpace};

    #[test]
    fn unlowered_call_is_a_structured_error_not_a_panic() {
        let m = parse_module(
            "func main {\nbb0:\n nop\n call helper\n halt\n}\nfunc helper {\nbb0:\n nop\n halt\n}",
        )
        .unwrap();
        let f = m.iter().find(|f| f.name == "main").unwrap().clone();
        let mut s = Simulator::new(SimConfig::default());
        s.add_thread(f);
        let r = s.run(StopWhen::Cycles(1_000));
        match r.error {
            Some(SimError::UnloweredCall { thread, ref callee, pc }) => {
                assert_eq!(thread, 0);
                assert_eq!(callee, "helper");
                assert_eq!(pc, Pc { block: 0, inst: 1 });
            }
            ref other => panic!("expected UnloweredCall, got {other:?}"),
        }
        assert!(r.threads[0].halted, "offending thread halts");
        let text = r.error.unwrap().to_string();
        assert!(text.contains("call helper"), "{text}");
        assert!(text.contains("bb0:1"), "{text}");
    }

    #[test]
    fn other_threads_survive_an_unlowered_call() {
        let m = parse_module(
            "func broken {\nbb0:\n call helper\n halt\n}\nfunc helper {\nbb0:\n halt\n}",
        )
        .unwrap();
        let broken = m.iter().find(|f| f.name == "broken").unwrap().clone();
        let good = parse_func(
            "func good {\nbb0:\n v0 = mov 8\n v1 = mov 0\n store scratch[v1+0], v0\n halt\n}",
        )
        .unwrap();
        let mut s = Simulator::new(SimConfig::default());
        s.add_thread(broken);
        s.add_thread(good);
        let r = s.run(StopWhen::Cycles(10_000));
        assert!(r.error.is_some());
        assert!(r.threads.iter().all(|t| t.halted));
        assert_eq!(s.memory().read_word(MemSpace::Scratch, 0), 8);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use regbal_ir::parse_func;

    #[test]
    fn trace_records_the_event_sequence() {
        let f = parse_func(
            "func t {\nbb0:\n v0 = mov 0\n v1 = load sram[v0+8]\n ctx\n store scratch[v0+4], v1\n iter_end\n halt\n}",
        )
        .unwrap();
        let mut s = Simulator::new(SimConfig::default());
        s.enable_trace(64);
        s.add_thread(f);
        s.run(StopWhen::Cycles(100_000));
        let trace = s.trace();
        assert!(matches!(trace[0], TraceEvent::Switch { thread: 0, .. }));
        assert!(trace.iter().any(|e| matches!(
            e,
            TraceEvent::MemIssue { write: false, addr: 8, .. }
        )));
        assert!(trace.iter().any(|e| matches!(e, TraceEvent::Yield { .. })));
        assert!(trace.iter().any(|e| matches!(
            e,
            TraceEvent::MemIssue { write: true, addr: 4, .. }
        )));
        assert!(trace.iter().any(|e| matches!(
            e,
            TraceEvent::Iteration { count: 1, .. }
        )));
        assert!(matches!(trace.last(), Some(TraceEvent::Halt { .. })));
        // Cycles are monotonically non-decreasing.
        let cycles: Vec<u64> = trace
            .iter()
            .map(|e| match *e {
                TraceEvent::Switch { cycle, .. }
                | TraceEvent::MemIssue { cycle, .. }
                | TraceEvent::Yield { cycle, .. }
                | TraceEvent::Iteration { cycle, .. }
                | TraceEvent::Halt { cycle, .. } => cycle,
            })
            .collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn trace_capacity_is_respected() {
        let f = parse_func("func spin {\nbb0:\n ctx\n jump bb0\n}").unwrap();
        let mut s = Simulator::new(SimConfig::default());
        s.enable_trace(10);
        s.add_thread(f);
        s.run(StopWhen::Cycles(1_000));
        assert_eq!(s.trace().len(), 10);
    }

    #[test]
    fn trace_overflow_is_counted_and_reported() {
        // Every iteration yields and loops — a long run generates far
        // more events than the 10-slot buffer holds.
        let f = parse_func("func spin {\nbb0:\n ctx\n jump bb0\n}").unwrap();
        let mut s = Simulator::new(SimConfig::default());
        s.enable_trace(10);
        s.add_thread(f);
        let r = s.run(StopWhen::Cycles(1_000));
        assert_eq!(s.trace().len(), 10, "buffer must stay bounded");
        assert!(s.trace_dropped() > 0);
        assert_eq!(r.trace_dropped, s.trace_dropped(), "report carries the count");
    }

    #[test]
    fn no_drops_within_capacity() {
        let f = parse_func("func t {\nbb0:\n nop\n halt\n}").unwrap();
        let mut s = Simulator::new(SimConfig::default());
        s.enable_trace(64);
        s.add_thread(f);
        let r = s.run(StopWhen::Cycles(100));
        assert!(!s.trace().is_empty());
        assert_eq!(r.trace_dropped, 0);
    }

    #[test]
    fn trace_disabled_by_default() {
        let f = parse_func("func t {\nbb0:\n nop\n halt\n}").unwrap();
        let mut s = Simulator::new(SimConfig::default());
        s.add_thread(f);
        let r = s.run(StopWhen::Cycles(100));
        assert!(s.trace().is_empty());
        assert_eq!(r.trace_dropped, 0);
    }
}

#[cfg(test)]
mod contention_tests {
    use super::*;
    use regbal_ir::parse_func;

    fn loader() -> Func {
        parse_func(
            "func t {\nbb0:\n v0 = mov 0\n v1 = load sdram[v0+0]\n v2 = add v1, 1\n halt\n}",
        )
        .unwrap()
    }

    #[test]
    fn serialized_memory_queues_concurrent_loads() {
        let run = |serialize: bool| {
            let config = SimConfig {
                serialize_memory: serialize,
                ..SimConfig::default()
            };
            let mut s = Simulator::new(config);
            for _ in 0..4 {
                s.add_thread(loader());
            }
            s.run(StopWhen::Cycles(1_000_000)).cycles
        };
        let overlapped = run(false);
        let queued = run(true);
        assert!(
            queued > overlapped + SimConfig::default().sdram_latency,
            "serialisation must lengthen the run: {queued} vs {overlapped}"
        );
    }

    #[test]
    fn spaces_have_independent_ports() {
        // One thread hits SDRAM, the other SRAM: no queueing between
        // them even when serialised.
        let sram = parse_func(
            "func s {\nbb0:\n v0 = mov 0\n v1 = load sram[v0+0]\n halt\n}",
        )
        .unwrap();
        let config = SimConfig {
            serialize_memory: true,
            ..SimConfig::default()
        };
        let mut both = Simulator::new(config.clone());
        both.add_thread(loader());
        both.add_thread(sram.clone());
        let mixed = both.run(StopWhen::Cycles(1_000_000)).cycles;

        let mut solo = Simulator::new(config);
        solo.add_thread(loader());
        let alone = solo.run(StopWhen::Cycles(1_000_000)).cycles;
        // The SRAM thread hides entirely inside the SDRAM thread's
        // stall: adding it costs only a few scheduling cycles.
        assert!(mixed <= alone + 10, "{mixed} vs {alone}");
    }
}

#[cfg(test)]
mod busy_tests {
    use super::*;
    use regbal_ir::parse_func;

    #[test]
    fn busy_cycles_equal_instructions_for_pure_alu() {
        let f = parse_func(
            "func t {\nbb0:\n v0 = mov 1\n v0 = add v0, 1\n v0 = add v0, 1\n halt\n}",
        )
        .unwrap();
        let mut s = Simulator::new(SimConfig::default());
        s.add_thread(f);
        let r = s.run(StopWhen::Cycles(1_000));
        assert_eq!(r.threads[0].busy_cycles, r.threads[0].instructions);
        assert_eq!(r.threads[0].busy_cycles, 4);
    }

    #[test]
    fn busy_cycles_exclude_memory_stalls() {
        let f = parse_func(
            "func t {\nbb0:\n v0 = mov 0\n v1 = load sdram[v0+0]\n halt\n}",
        )
        .unwrap();
        let mut s = Simulator::new(SimConfig::default());
        s.add_thread(f);
        let r = s.run(StopWhen::Cycles(10_000));
        // 3 issue cycles; the 150-cycle stall is idle, not busy.
        assert_eq!(r.threads[0].busy_cycles, 3);
        assert!(r.cycles > 150);
    }

    #[test]
    fn busy_cycles_partition_among_threads() {
        let f = parse_func(
            "func t {\nbb0:\n v0 = mov 4\n jump l\nl:\n v0 = sub v0, 1\n ctx\n bne v0, 0, l, d\nd:\n halt\n}",
        )
        .unwrap();
        let mut s = Simulator::new(SimConfig::default());
        s.add_thread(f.clone());
        s.add_thread(f);
        let r = s.run(StopWhen::Cycles(10_000));
        let busy: u64 = r.threads.iter().map(|t| t.busy_cycles).sum();
        // Busy + idle + context-switch cost accounts for the whole run.
        assert!(busy <= r.cycles);
        assert!(busy + r.idle_cycles <= r.cycles);
        assert!(r.threads[0].busy_cycles > 0 && r.threads[1].busy_cycles > 0);
    }
}
