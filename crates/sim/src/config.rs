//! Simulator configuration.

use regbal_ir::MemSpace;
use std::ops::Range;

/// Timing and sizing parameters of the simulated micro-engine.
///
/// Defaults follow the paper's cost model: 1-cycle ALU, 1-cycle context
/// switch, "at least 20 cycles" per memory access (§1.1). Scratchpad is
/// the cheapest space, SDRAM the most expensive.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Latency in cycles of a scratchpad access.
    pub scratch_latency: u64,
    /// Latency in cycles of an SRAM access.
    pub sram_latency: u64,
    /// Latency in cycles of an SDRAM access.
    pub sdram_latency: u64,
    /// Latency in cycles of a spill-scratchpad (spad) access. The spad
    /// is a small per-PU-cluster register-speed store (RegDem-style):
    /// far cheaper than any DRAM-class space.
    pub spad_latency: u64,
    /// Extra cycles consumed when the PU switches to a different thread.
    pub ctx_switch_cost: u64,
    /// Scratchpad size in bytes.
    pub scratch_size: usize,
    /// SRAM size in bytes.
    pub sram_size: usize,
    /// SDRAM size in bytes.
    pub sdram_size: usize,
    /// Spill-scratchpad size in bytes.
    pub spad_size: usize,
    /// Serialise accesses per memory space (one port each): concurrent
    /// requests queue behind each other, extending their latency. Off
    /// by default (the IXP's deep memory pipelines overlap thread
    /// requests well; turn on to study contention).
    pub serialize_memory: bool,
    /// Global cycle budget; the run stops when it is exhausted.
    pub max_cycles: u64,
    /// Per-thread private physical-register banks for the safety
    /// watchdog: a write by thread `i` into the bank of thread `j ≠ i`
    /// is recorded as a [`crate::Violation`]. Empty disables the check.
    pub private_ranges: Vec<Range<u32>>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            scratch_latency: 20,
            sram_latency: 60,
            sdram_latency: 150,
            spad_latency: 4,
            ctx_switch_cost: 1,
            serialize_memory: false,
            scratch_size: 64 << 10,
            sram_size: 1 << 20,
            sdram_size: 4 << 20,
            spad_size: 16 << 10,
            max_cycles: 50_000_000,
            private_ranges: Vec::new(),
        }
    }
}

impl SimConfig {
    /// The latency of an access to `space`.
    pub fn latency(&self, space: MemSpace) -> u64 {
        match space {
            MemSpace::Scratch => self.scratch_latency,
            MemSpace::Sram => self.sram_latency,
            MemSpace::Sdram => self.sdram_latency,
            MemSpace::Spad => self.spad_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_cost_model() {
        let c = SimConfig::default();
        assert!(c.sram_latency >= 20, "paper: at least 20 cycles");
        assert!(c.sdram_latency > c.sram_latency);
        assert!(c.scratch_latency < c.sram_latency);
        assert!(
            c.spad_latency < c.scratch_latency,
            "the spill spad must beat every memory-class space"
        );
        assert_eq!(c.ctx_switch_cost, 1, "paper: 1-cycle context switch");
        assert_eq!(c.latency(MemSpace::Sram), c.sram_latency);
        assert_eq!(c.latency(MemSpace::Scratch), c.scratch_latency);
        assert_eq!(c.latency(MemSpace::Sdram), c.sdram_latency);
        assert_eq!(c.latency(MemSpace::Spad), c.spad_latency);
    }
}
