//! A multi-PU chip: several micro-engines sharing the off-chip
//! memories, as in the paper's Figure 2(a) pipeline ("typically, some
//! PUs are in charge of getting packets from the input ports; some
//! handle packet processing and some are for output ports").
//!
//! Each PU has its own register file, threads and clock; the PUs share
//! the scratch/SRAM/SDRAM memories and so can pass packets through
//! queues.
//!
//! Two cores advance the chip:
//!
//! * [`Chip::run`] — the reference slice interleaving: a timestamp
//!   min-heap picks the PU with the smallest local clock and advances
//!   it one `granularity`-cycle slice, so a store on one PU is visible
//!   to the others within at most one slice.
//! * [`Chip::run_event`] / [`Chip::run_event_threads`] — the
//!   event-driven core: each PU runs in a *batch* to its next
//!   shared-memory instruction (or the cycle horizon) and only those
//!   memory steps are globally ordered, by `(local clock, PU index)`.
//!   Everything between two memory steps is PU-local, so batches of
//!   different PUs commute and may run on OS threads; the heap merge
//!   keeps reports bit-identical to `run(cycles, 1)` at any thread
//!   count (see DESIGN.md §7 for the argument).

use crate::config::SimConfig;
use crate::machine::{PuEvent, RunReport, SimError, Simulator, StopWhen};
use crate::mem::Memory;
use crate::sanitizer::SanitizerConfig;
use regbal_ir::Func;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{mpsc, Mutex};

/// A chip of several processing units over shared memories.
#[derive(Debug)]
pub struct Chip {
    memory: Memory,
    pus: Vec<Simulator>,
}

impl Chip {
    /// Creates a chip with `num_pus` processing units, all using
    /// `config` (the per-PU memory sizes of the config determine the
    /// shared memory).
    pub fn new(config: SimConfig, num_pus: usize) -> Chip {
        assert!(num_pus >= 1, "a chip has at least one PU");
        let memory = Memory::new(
            config.scratch_size,
            config.sram_size,
            config.sdram_size,
            config.spad_size,
        );
        // The PUs run against the shared memory only; give them empty
        // private memories so a device-scale chip (64 PUs over a
        // 16 MiB SRAM) does not allocate one dead copy per PU.
        let pu_config = SimConfig {
            scratch_size: 0,
            sram_size: 0,
            sdram_size: 0,
            spad_size: 0,
            ..config
        };
        Chip {
            memory,
            pus: (0..num_pus)
                .map(|_| Simulator::new(pu_config.clone()))
                .collect(),
        }
    }

    /// Number of processing units.
    pub fn num_pus(&self) -> usize {
        self.pus.len()
    }

    /// Adds a thread to processing unit `pu`. Returns the thread index
    /// within that PU.
    ///
    /// # Panics
    ///
    /// Panics if `pu` is out of range or the function is invalid.
    pub fn add_thread(&mut self, pu: usize, func: Func) -> usize {
        self.pus[pu].add_thread(func)
    }

    /// The shared memories.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable access to the shared memories.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// A processing unit (for per-PU statistics and traces).
    pub fn pu(&self, pu: usize) -> &Simulator {
        &self.pus[pu]
    }

    /// Mutable access to a processing unit (e.g. to enable tracing).
    pub fn pu_mut(&mut self, pu: usize) -> &mut Simulator {
        &mut self.pus[pu]
    }

    /// Enables the register-clobber sanitizer on processing unit `pu`
    /// (each PU has its own register file, so each needs the layout of
    /// the allocation it runs).
    pub fn enable_sanitizer(&mut self, pu: usize, config: SanitizerConfig) {
        self.pus[pu].enable_sanitizer(config);
    }

    /// The first structured error across the PUs (with the PU index),
    /// if any run hit one.
    pub fn error(&self) -> Option<(usize, &SimError)> {
        self.pus
            .iter()
            .enumerate()
            .find_map(|(i, p)| p.error().map(|e| (i, e)))
    }

    /// Runs every PU until each reaches `cycles` on its local clock (or
    /// halts). PUs are interleaved in slices of `granularity` cycles:
    /// a store on one PU is visible to the others within at most one
    /// slice. Returns the per-PU reports.
    ///
    /// A `(local clock, PU index)` min-heap picks the next PU, so one
    /// slice costs `O(log P)` instead of an `O(P)` rescan; the pick
    /// order — smallest clock, lowest index on ties — is unchanged.
    pub fn run(&mut self, cycles: u64, granularity: u64) -> Vec<RunReport> {
        let step = granularity.max(1);
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = self
            .pus
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.all_halted() && p.now() < cycles)
            .map(|(idx, p)| Reverse((p.now(), idx)))
            .collect();
        // Advance the PU that is furthest behind, one slice at a time.
        // Keys are exact (only a PU's own slice moves its clock), so
        // the popped entry is never stale.
        while let Some(Reverse((_, idx))) = heap.pop() {
            let target = (self.pus[idx].now() + step).min(cycles);
            self.pus[idx].run_shared(&mut self.memory, StopWhen::Cycles(target));
            let p = &self.pus[idx];
            if !p.all_halted() && p.now() < cycles {
                heap.push(Reverse((p.now(), idx)));
            }
        }
        self.pus.iter().map(Simulator::report).collect()
    }

    /// Runs every PU to `cycles` with the serial event-driven core.
    ///
    /// Each PU executes in batches bounded by its shared-memory
    /// instructions; the heap orders those memory steps by
    /// `(local clock, PU index)`, exactly the order the reference
    /// granularity-1 interleaving issues them in. The reports (and the
    /// shared-memory contents) are therefore bit-identical to
    /// `run(cycles, 1)` — while the scheduler pays one heap operation
    /// per memory *event* instead of one scan per *cycle*.
    pub fn run_event(&mut self, cycles: u64) -> Vec<RunReport> {
        let stop = StopWhen::Cycles(cycles);
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (idx, pu) in self.pus.iter_mut().enumerate() {
            if let PuEvent::Mem { at } = pu.run_to_event(stop) {
                heap.push(Reverse((at, idx)));
            }
        }
        while let Some(Reverse((_, idx))) = heap.pop() {
            let next = self.pus[idx].run_through_event(&mut self.memory, stop);
            if let PuEvent::Mem { at } = next {
                heap.push(Reverse((at, idx)));
            }
        }
        self.pus.iter().map(Simulator::report).collect()
    }

    /// [`run_event`](Self::run_event) with the pure (non-memory)
    /// batches farmed out to `threads` OS threads.
    ///
    /// Memory steps still execute serially on the calling thread, in
    /// heap order; a heap event commits only once every in-flight
    /// batch provably cannot produce an earlier key (each in-flight PU
    /// carries a lower bound on its next event). The committed event
    /// sequence is thus a pure function of the simulation, and reports
    /// stay bit-identical to `run(cycles, 1)` at any thread count.
    pub fn run_event_threads(&mut self, cycles: u64, threads: usize) -> Vec<RunReport> {
        let workers = threads.max(1);
        if workers == 1 || self.pus.len() == 1 {
            return self.run_event(cycles);
        }
        let stop = StopWhen::Cycles(cycles);
        let slots: Vec<Mutex<Simulator>> = std::mem::take(&mut self.pus)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let (job_tx, job_rx) = mpsc::channel::<usize>();
        let job_rx = Mutex::new(job_rx);
        let (res_tx, res_rx) = mpsc::channel::<(usize, PuEvent)>();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = &job_rx;
                let res_tx = res_tx.clone();
                let slots = &slots;
                scope.spawn(move || loop {
                    let job = job_rx.lock().expect("job queue poisoned").recv();
                    let Ok(idx) = job else { break };
                    let event = slots[idx].lock().expect("PU poisoned").run_to_event(stop);
                    if res_tx.send((idx, event)).is_err() {
                        break;
                    }
                });
            }
            drop(res_tx);

            // In-flight bound per PU: its next event key is >= the
            // bound, so heap entries below every `(bound, pu)` are
            // safe to commit. The initial batches start at clock 0.
            let mut inflight: Vec<Option<u64>> = vec![Some(0); slots.len()];
            let mut live = slots.len();
            for idx in 0..slots.len() {
                job_tx.send(idx).expect("worker pool alive");
            }
            let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
            loop {
                if let Some(&Reverse((at, idx))) = heap.peek() {
                    let safe = inflight
                        .iter()
                        .enumerate()
                        .all(|(pu, bound)| bound.is_none_or(|b| (at, idx) < (b, pu)));
                    if safe {
                        heap.pop();
                        let mut pu = slots[idx].lock().expect("PU poisoned");
                        pu.run_mem_op(&mut self.memory, stop);
                        if !pu.all_halted() && pu.now() < cycles {
                            let bound = pu.next_event_bound();
                            drop(pu);
                            inflight[idx] = Some(bound);
                            live += 1;
                            job_tx.send(idx).expect("worker pool alive");
                        }
                        continue;
                    }
                }
                if live == 0 {
                    break;
                }
                let (idx, event) = res_rx.recv().expect("a worker is live");
                inflight[idx] = None;
                live -= 1;
                if let PuEvent::Mem { at } = event {
                    heap.push(Reverse((at, idx)));
                }
            }
            drop(job_tx); // workers drain and exit
        });

        self.pus = slots
            .into_iter()
            .map(|m| m.into_inner().expect("PU poisoned"))
            .collect();
        self.pus.iter().map(Simulator::report).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::{parse_func, MemSpace};

    /// Producer PU fills a ring in SRAM; consumer PU on another
    /// micro-engine drains it — the paper's pipeline shape.
    #[test]
    fn two_pu_pipeline_passes_packets() {
        let producer = parse_func(
            "
func producer {
bb0:
    v0 = mov 512
    v1 = mov 8
    v2 = mov 100
    jump push
push:
    v3 = load sram[v0+0]       ; head
    store sram[v3+64], v2      ; slot (head is 512.. offsets)
    v3 = add v3, 4
    store sram[v0+0], v3       ; publish head
    v2 = add v2, 10
    v1 = sub v1, 1
    iter_end
    bne v1, 0, push, done
done:
    halt
}",
        )
        .unwrap();
        let consumer = parse_func(
            "
func consumer {
bb0:
    v0 = mov 512
    v1 = mov 8
    v2 = mov 0
    jump wait
wait:
    v3 = load sram[v0+0]       ; head
    v4 = load sram[v0+4]       ; tail
    beq v3, v4, wait, pop
pop:
    v5 = load sram[v4+64]
    v2 = add v2, v5
    v4 = add v4, 4
    store sram[v0+4], v4
    store scratch[v0+0], v2    ; publish sum
    v1 = sub v1, 1
    iter_end
    bne v1, 0, wait, done
done:
    halt
}",
        )
        .unwrap();
        // head/tail start at 512 (ring slots at 576+).
        let mut chip = Chip::new(SimConfig::default(), 2);
        chip.memory_mut().write_word(MemSpace::Sram, 512, 512);
        chip.memory_mut().write_word(MemSpace::Sram, 516, 512);
        chip.add_thread(0, producer);
        chip.add_thread(1, consumer);
        let reports = chip.run(2_000_000, 16);
        assert_eq!(reports.len(), 2);
        assert!(chip.pu(0).all_halted(), "producer finished");
        assert!(chip.pu(1).all_halted(), "consumer finished");
        // Sum of 100, 110, ..., 170 = 1080.
        assert_eq!(chip.memory().read_word(MemSpace::Scratch, 512), 1080);
    }

    #[test]
    fn single_pu_chip_matches_simulator() {
        let f = parse_func(
            "func t {\nbb0:\n v0 = mov 64\n v1 = load sram[v0+0]\n v1 = add v1, 1\n store scratch[v0+0], v1\n halt\n}",
        )
        .unwrap();
        let mut chip = Chip::new(SimConfig::default(), 1);
        chip.memory_mut().write_word(MemSpace::Sram, 64, 41);
        chip.add_thread(0, f.clone());
        chip.run(100_000, 8);
        assert_eq!(chip.memory().read_word(MemSpace::Scratch, 64), 42);

        let mut solo = Simulator::new(SimConfig::default());
        solo.memory_mut().write_word(MemSpace::Sram, 64, 41);
        solo.add_thread(f);
        solo.run(StopWhen::Cycles(100_000));
        assert_eq!(solo.memory().read_word(MemSpace::Scratch, 64), 42);
    }

    #[test]
    #[should_panic(expected = "at least one PU")]
    fn zero_pus_panics() {
        Chip::new(SimConfig::default(), 0);
    }

    /// The producer/consumer pipeline, parameterized so the equivalence
    //// tests can build identical chips for every core.
    fn pipeline_chip() -> Chip {
        let producer = parse_func(
            "func producer {\nbb0:\n v0 = mov 512\n v1 = mov 8\n v2 = mov 100\n jump push\npush:\n v3 = load sram[v0+0]\n store sram[v3+64], v2\n v3 = add v3, 4\n store sram[v0+0], v3\n v2 = add v2, 10\n v1 = sub v1, 1\n iter_end\n bne v1, 0, push, done\ndone:\n halt\n}",
        )
        .unwrap();
        let consumer = parse_func(
            "func consumer {\nbb0:\n v0 = mov 512\n v1 = mov 8\n v2 = mov 0\n jump wait\nwait:\n v3 = load sram[v0+0]\n v4 = load sram[v0+4]\n beq v3, v4, wait, pop\npop:\n v5 = load sram[v4+64]\n v2 = add v2, v5\n v4 = add v4, 4\n store sram[v0+4], v4\n store scratch[v0+0], v2\n v1 = sub v1, 1\n iter_end\n bne v1, 0, wait, done\ndone:\n halt\n}",
        )
        .unwrap();
        let mut chip = Chip::new(SimConfig::default(), 3);
        chip.memory_mut().write_word(MemSpace::Sram, 512, 512);
        chip.memory_mut().write_word(MemSpace::Sram, 516, 512);
        chip.add_thread(0, producer);
        chip.add_thread(1, consumer);
        // PU 2 halts immediately: the halted-PU edge case rides along.
        chip.add_thread(2, parse_func("func idle {\nbb0:\n halt\n}").unwrap());
        chip
    }

    #[test]
    fn event_core_matches_reference_interleaving() {
        let mut reference = pipeline_chip();
        let expected = reference.run(2_000_000, 1);

        let mut event = pipeline_chip();
        let got = event.run_event(2_000_000);
        assert_eq!(expected, got, "serial event core diverged");
        assert_eq!(
            reference.memory().read_bytes(MemSpace::Scratch, 0, 1024),
            event.memory().read_bytes(MemSpace::Scratch, 0, 1024)
        );

        for threads in [1usize, 4, 8] {
            let mut par = pipeline_chip();
            let got = par.run_event_threads(2_000_000, threads);
            assert_eq!(expected, got, "{threads}-thread event core diverged");
            assert_eq!(
                reference.memory().read_bytes(MemSpace::Sram, 0, 2048),
                par.memory().read_bytes(MemSpace::Sram, 0, 2048)
            );
        }
        assert_eq!(
            event.memory().read_word(MemSpace::Scratch, 512),
            1080,
            "pipeline sum survives the event core"
        );
    }

    #[test]
    fn heap_slice_loop_matches_old_rescan_semantics() {
        // Coarser slices must still produce the documented pipeline
        // result (the committed BENCH_EVAL numbers ran at 64).
        for granularity in [1u64, 16, 64] {
            let mut chip = pipeline_chip();
            chip.run(2_000_000, granularity);
            assert_eq!(chip.memory().read_word(MemSpace::Scratch, 512), 1080);
        }
    }

    #[test]
    fn event_core_handles_unstarted_and_budgeted_pus() {
        // One spinning PU (never halts, hits the cycle horizon) plus a
        // PU with no threads at all.
        let spin = parse_func("func spin {\nbb0:\n nop\n jump bb0\n}").unwrap();
        let build = || {
            let mut chip = Chip::new(SimConfig::default(), 2);
            chip.add_thread(0, spin.clone());
            chip
        };
        let mut a = build();
        let ra = a.run(5_000, 1);
        let mut b = build();
        let rb = b.run_event(5_000);
        let mut c = build();
        let rc = c.run_event_threads(5_000, 4);
        assert_eq!(ra, rb);
        assert_eq!(ra, rc);
        assert!(ra[0].cycles >= 5_000);
        assert_eq!(ra[1].cycles, 0);
    }
}
