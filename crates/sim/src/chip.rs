//! A multi-PU chip: several micro-engines sharing the off-chip
//! memories, as in the paper's Figure 2(a) pipeline ("typically, some
//! PUs are in charge of getting packets from the input ports; some
//! handle packet processing and some are for output ports").
//!
//! Each PU has its own register file, threads and clock; the PUs share
//! the scratch/SRAM/SDRAM memories and so can pass packets through
//! queues. The chip advances the PU with the smallest local clock one
//! slice at a time, so cross-PU memory ordering is event-accurate at
//! cycle granularity.

use crate::config::SimConfig;
use crate::machine::{RunReport, SimError, Simulator, StopWhen};
use crate::mem::Memory;
use crate::sanitizer::SanitizerConfig;
use regbal_ir::Func;

/// A chip of several processing units over shared memories.
#[derive(Debug)]
pub struct Chip {
    memory: Memory,
    pus: Vec<Simulator>,
}

impl Chip {
    /// Creates a chip with `num_pus` processing units, all using
    /// `config` (the per-PU memory sizes of the config determine the
    /// shared memory).
    pub fn new(config: SimConfig, num_pus: usize) -> Chip {
        assert!(num_pus >= 1, "a chip has at least one PU");
        let memory = Memory::new(config.scratch_size, config.sram_size, config.sdram_size);
        Chip {
            memory,
            pus: (0..num_pus).map(|_| Simulator::new(config.clone())).collect(),
        }
    }

    /// Number of processing units.
    pub fn num_pus(&self) -> usize {
        self.pus.len()
    }

    /// Adds a thread to processing unit `pu`. Returns the thread index
    /// within that PU.
    ///
    /// # Panics
    ///
    /// Panics if `pu` is out of range or the function is invalid.
    pub fn add_thread(&mut self, pu: usize, func: Func) -> usize {
        self.pus[pu].add_thread(func)
    }

    /// The shared memories.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable access to the shared memories.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// A processing unit (for per-PU statistics and traces).
    pub fn pu(&self, pu: usize) -> &Simulator {
        &self.pus[pu]
    }

    /// Mutable access to a processing unit (e.g. to enable tracing).
    pub fn pu_mut(&mut self, pu: usize) -> &mut Simulator {
        &mut self.pus[pu]
    }

    /// Enables the register-clobber sanitizer on processing unit `pu`
    /// (each PU has its own register file, so each needs the layout of
    /// the allocation it runs).
    pub fn enable_sanitizer(&mut self, pu: usize, config: SanitizerConfig) {
        self.pus[pu].enable_sanitizer(config);
    }

    /// The first structured error across the PUs (with the PU index),
    /// if any run hit one.
    pub fn error(&self) -> Option<(usize, &SimError)> {
        self.pus
            .iter()
            .enumerate()
            .find_map(|(i, p)| p.error().map(|e| (i, e)))
    }

    /// Runs every PU until each reaches `cycles` on its local clock (or
    /// halts). PUs are interleaved in slices of `granularity` cycles:
    /// a store on one PU is visible to the others within at most one
    /// slice. Returns the per-PU reports.
    pub fn run(&mut self, cycles: u64, granularity: u64) -> Vec<RunReport> {
        let step = granularity.max(1);
        // Advance the PU that is furthest behind, one slice at a time.
        while let Some((idx, _)) = self
            .pus
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.all_halted() && p.now() < cycles)
            .min_by_key(|(_, p)| p.now())
        {
            let target = (self.pus[idx].now() + step).min(cycles);
            self.pus[idx].run_shared(&mut self.memory, StopWhen::Cycles(target));
        }
        self.pus.iter().map(Simulator::report).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::{parse_func, MemSpace};

    /// Producer PU fills a ring in SRAM; consumer PU on another
    /// micro-engine drains it — the paper's pipeline shape.
    #[test]
    fn two_pu_pipeline_passes_packets() {
        let producer = parse_func(
            "
func producer {
bb0:
    v0 = mov 512
    v1 = mov 8
    v2 = mov 100
    jump push
push:
    v3 = load sram[v0+0]       ; head
    store sram[v3+64], v2      ; slot (head is 512.. offsets)
    v3 = add v3, 4
    store sram[v0+0], v3       ; publish head
    v2 = add v2, 10
    v1 = sub v1, 1
    iter_end
    bne v1, 0, push, done
done:
    halt
}",
        )
        .unwrap();
        let consumer = parse_func(
            "
func consumer {
bb0:
    v0 = mov 512
    v1 = mov 8
    v2 = mov 0
    jump wait
wait:
    v3 = load sram[v0+0]       ; head
    v4 = load sram[v0+4]       ; tail
    beq v3, v4, wait, pop
pop:
    v5 = load sram[v4+64]
    v2 = add v2, v5
    v4 = add v4, 4
    store sram[v0+4], v4
    store scratch[v0+0], v2    ; publish sum
    v1 = sub v1, 1
    iter_end
    bne v1, 0, wait, done
done:
    halt
}",
        )
        .unwrap();
        // head/tail start at 512 (ring slots at 576+).
        let mut chip = Chip::new(SimConfig::default(), 2);
        chip.memory_mut().write_word(MemSpace::Sram, 512, 512);
        chip.memory_mut().write_word(MemSpace::Sram, 516, 512);
        chip.add_thread(0, producer);
        chip.add_thread(1, consumer);
        let reports = chip.run(2_000_000, 16);
        assert_eq!(reports.len(), 2);
        assert!(chip.pu(0).all_halted(), "producer finished");
        assert!(chip.pu(1).all_halted(), "consumer finished");
        // Sum of 100, 110, ..., 170 = 1080.
        assert_eq!(chip.memory().read_word(MemSpace::Scratch, 512), 1080);
    }

    #[test]
    fn single_pu_chip_matches_simulator() {
        let f = parse_func(
            "func t {\nbb0:\n v0 = mov 64\n v1 = load sram[v0+0]\n v1 = add v1, 1\n store scratch[v0+0], v1\n halt\n}",
        )
        .unwrap();
        let mut chip = Chip::new(SimConfig::default(), 1);
        chip.memory_mut().write_word(MemSpace::Sram, 64, 41);
        chip.add_thread(0, f.clone());
        chip.run(100_000, 8);
        assert_eq!(chip.memory().read_word(MemSpace::Scratch, 64), 42);

        let mut solo = Simulator::new(SimConfig::default());
        solo.memory_mut().write_word(MemSpace::Sram, 64, 41);
        solo.add_thread(f);
        solo.run(StopWhen::Cycles(100_000));
        assert_eq!(solo.memory().read_word(MemSpace::Scratch, 64), 42);
    }

    #[test]
    #[should_panic(expected = "at least one PU")]
    fn zero_pus_panics() {
        Chip::new(SimConfig::default(), 0);
    }
}
