//! Construction of the GIG, BIG and per-region IIGs from analysis
//! results.

use crate::graph::Graph;
use regbal_analysis::{ProgramInfo, RegionId};
use regbal_ir::BitSet;

/// Builds the **global interference graph**: one node per virtual
/// register, an edge whenever two registers are co-live.
///
/// Two registers are co-live when both are live-in at the same point, or
/// one is defined at a point where the other is live-out (the standard
/// Chaitin interference rule).
///
/// Live sets are OR-ed into the adjacency rows whole
/// ([`Graph::add_clique`] / [`Graph::add_edges_from_bitset`]), so each
/// program point costs O(live · n/64) word operations instead of the
/// O(live²) single-bit inserts of [`build_gig_naive`].
pub fn build_gig(info: &ProgramInfo) -> Graph {
    let nv = info.num_vregs();
    let mut g = Graph::new(nv);
    for p in info.pmap.points() {
        g.add_clique(info.liveness.live_in(p));
        let defs = info.liveness.defs_at(p);
        for (i, d) in defs.iter().enumerate() {
            g.add_edges_from_bitset(d.index(), info.liveness.live_out(p));
            // Burst destinations are written together: they interfere
            // with each other even when some are otherwise dead.
            for d2 in &defs[i + 1..] {
                g.add_edge(d.index(), d2.index());
            }
        }
    }
    g
}

/// Reference pairwise implementation of [`build_gig`], kept for
/// differential tests and the `engine_speed` benchmark.
pub fn build_gig_naive(info: &ProgramInfo) -> Graph {
    let nv = info.num_vregs();
    let mut g = Graph::new(nv);
    for p in info.pmap.points() {
        let live_in: Vec<usize> = info.liveness.live_in(p).iter().collect();
        for (i, &a) in live_in.iter().enumerate() {
            for &b in &live_in[i + 1..] {
                g.add_edge(a, b);
            }
        }
        let defs = info.liveness.defs_at(p);
        for (i, d) in defs.iter().enumerate() {
            for b in info.liveness.live_out(p).iter() {
                g.add_edge(d.index(), b);
            }
            for d2 in &defs[i + 1..] {
                g.add_edge(d.index(), d2.index());
            }
        }
    }
    g
}

/// Builds the **boundary interference graph**: nodes are all virtual
/// registers (for index stability) but edges connect only *boundary*
/// nodes that are live across the *same* CSB (paper §3.2, "boundary
/// interference"). Values live at program entry interfere with each
/// other the same way (the entry acts as a boundary).
///
/// Each live-across set becomes a clique through whole-row OR-ing
/// ([`Graph::add_clique`]).
pub fn build_big(info: &ProgramInfo) -> Graph {
    let nv = info.num_vregs();
    let mut g = Graph::new(nv);
    for (_, across) in info.csbs.iter() {
        g.add_clique(across);
    }
    g.add_clique(info.liveness.live_in(info.pmap.entry()));
    g
}

/// Reference pairwise implementation of [`build_big`], kept for
/// differential tests and the `engine_speed` benchmark.
pub fn build_big_naive(info: &ProgramInfo) -> Graph {
    let nv = info.num_vregs();
    let mut g = Graph::new(nv);
    let clique = |set: &BitSet, g: &mut Graph| {
        let nodes: Vec<usize> = set.iter().collect();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                g.add_edge(a, b);
            }
        }
    };
    for (_, across) in info.csbs.iter() {
        clique(across, &mut g);
    }
    clique(info.liveness.live_in(info.pmap.entry()), &mut g);
    g
}

/// One internal interference graph: the internal nodes of a region and
/// their mutual interference (a sub-view of the GIG).
#[derive(Debug, Clone)]
pub struct Iig {
    /// The region this IIG belongs to.
    pub region: RegionId,
    /// The internal virtual registers of the region (as GIG indices).
    pub members: Vec<usize>,
    /// Interference among `members`, indexed positionally (node `i` of
    /// this graph is `members[i]`).
    pub graph: Graph,
}

/// Builds one [`Iig`] per non-switch region, containing that region's
/// internal nodes. Internal nodes that belong to no region (dead
/// definitions at a CSB) are attached to no IIG; they interfere with
/// nothing internal and are handled directly on the GIG.
///
/// Paper Claim 2 — internal nodes of different regions never interfere —
/// holds by construction and is asserted by this crate's tests.
pub fn build_iigs(info: &ProgramInfo, gig: &Graph) -> Vec<Iig> {
    let regions_of = info.nsr.vreg_regions(&info.liveness, &info.pmap);
    let nr = info.nsr.num_regions();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); nr];
    for (v, regions) in regions_of.iter().enumerate() {
        if info.boundary.contains(v) {
            continue;
        }
        // An internal node is live in at most one region.
        if let Some(r) = regions.iter().next() {
            members[r].push(v);
        }
    }
    // Sub-view extraction works on whole GIG rows: each member's
    // neighbour row is AND-ed with the region's member set in one
    // word-level pass, then only the surviving bits are translated to
    // positional indices — O(members · n/64 + edges) per region instead
    // of O(members²) `has_edge` probes.
    let nv = info.num_vregs();
    let mut pos = vec![usize::MAX; nv];
    members
        .into_iter()
        .enumerate()
        .map(|(r, members)| {
            let mut graph = Graph::new(members.len());
            let mut in_region = BitSet::new(nv);
            for (i, &m) in members.iter().enumerate() {
                in_region.insert(m);
                pos[m] = i;
            }
            for (i, &a) in members.iter().enumerate() {
                let mut row = gig.neighbors(a).clone();
                row.intersect_with(&in_region);
                for b in row.iter() {
                    if pos[b] > i {
                        graph.add_edge(i, pos[b]);
                    }
                }
            }
            for &m in &members {
                pos[m] = usize::MAX;
            }
            Iig {
                region: RegionId(r as u32),
                members,
                graph,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_analysis::ProgramInfo;
    use regbal_ir::parse_func;

    /// The running example of paper Figures 4/5: an IP-checksum-like
    /// loop. `sum`, `buf`, `len` are boundary; `tmp1`, `tmp2` internal.
    fn figure4() -> ProgramInfo {
        let src = "
func frag {
bb0:
    v0 = mov 0        ; sum
    v1 = mov 256      ; buf
    v2 = mov 16       ; len
    jump bb1
bb1:
    bne v2, 0, bb2, bb3
bb2:
    v3 = load sram[v1+0]   ; tmp1 (read = CSB)
    v0 = add v0, v3
    v1 = add v1, 4
    v2 = sub v2, 1
    ctx
    jump bb1
bb3:
    v4 = load sram[v1+0]   ; tmp2 (read = CSB)
    v0 = add v0, v4
    store scratch[v1+0], v0
    halt
}";
        ProgramInfo::compute(&parse_func(src).unwrap())
    }

    #[test]
    fn figure5_gig_shape() {
        let info = figure4();
        let gig = build_gig(&info);
        // sum, buf, len pairwise interfere.
        assert!(gig.has_edge(0, 1));
        assert!(gig.has_edge(0, 2));
        assert!(gig.has_edge(1, 2));
        // tmp1 interferes with sum/buf/len inside the loop body.
        assert!(gig.has_edge(3, 0));
        assert!(gig.has_edge(3, 1));
        assert!(gig.has_edge(3, 2));
        // tmp1 and tmp2 never co-live.
        assert!(!gig.has_edge(3, 4));
    }

    #[test]
    fn figure5_big_shape() {
        let info = figure4();
        let big = build_big(&info);
        // Boundary clique sum/buf/len.
        assert!(big.has_edge(0, 1));
        assert!(big.has_edge(0, 2));
        assert!(big.has_edge(1, 2));
        // Internal nodes have no boundary edges.
        assert_eq!(big.degree(3), 0);
        assert_eq!(big.degree(4), 0);
    }

    #[test]
    fn figure5_boundary_classification() {
        let info = figure4();
        for v in [0usize, 1, 2] {
            assert!(info.boundary.contains(v), "v{v} should be boundary");
        }
        for v in [3usize, 4] {
            assert!(!info.boundary.contains(v), "v{v} should be internal");
        }
    }

    #[test]
    fn iigs_partition_internal_nodes() {
        let info = figure4();
        let gig = build_gig(&info);
        let iigs = build_iigs(&info, &gig);
        let mut seen = Vec::new();
        for iig in &iigs {
            for &m in &iig.members {
                assert!(!info.boundary.contains(m));
                seen.push(m);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![3, 4], "tmp1 and tmp2 in separate IIGs");
        // tmp1 and tmp2 live in different regions.
        let homes: Vec<_> = iigs
            .iter()
            .filter(|i| !i.members.is_empty())
            .map(|i| i.region)
            .collect();
        assert_eq!(homes.len(), 2);
        assert_ne!(homes[0], homes[1]);
    }

    #[test]
    fn claim2_internal_nodes_of_distinct_regions_never_interfere() {
        let info = figure4();
        let gig = build_gig(&info);
        let iigs = build_iigs(&info, &gig);
        for (i, a) in iigs.iter().enumerate() {
            for b in iigs.iter().skip(i + 1) {
                for &ma in &a.members {
                    for &mb in &b.members {
                        assert!(!gig.has_edge(ma, mb), "claim 2 violated: v{ma} - v{mb}");
                    }
                }
            }
        }
    }

    #[test]
    fn gig_def_interferes_with_live_out() {
        // v1's def happens while v0 is live (v0 used later).
        let info = ProgramInfo::compute(
            &parse_func(
                "func f {\nbb0:\n v0 = mov 1\n v1 = mov 2\n store scratch[v1+0], v0\n halt\n}",
            )
            .unwrap(),
        );
        let gig = build_gig(&info);
        assert!(gig.has_edge(0, 1));
    }

    #[test]
    fn consumed_value_does_not_interfere_with_def() {
        // v1 = add v0, 1: v0 dies at the add, so v0 and v1 can share.
        let info = ProgramInfo::compute(
            &parse_func(
                "func f {\nbb0:\n v0 = mov 1\n v1 = add v0, 1\n store scratch[v1+0], v1\n halt\n}",
            )
            .unwrap(),
        );
        let gig = build_gig(&info);
        assert!(!gig.has_edge(0, 1));
    }

    #[test]
    fn entry_live_values_form_big_clique() {
        let info = ProgramInfo::compute(
            &parse_func("func f {\nbb0:\n v2 = add v0, v1\n store scratch[v2+0], v2\n halt\n}")
                .unwrap(),
        );
        let big = build_big(&info);
        assert!(big.has_edge(0, 1));
    }

    #[test]
    fn boundary_nodes_colive_only_internally_share_no_big_edge() {
        // v0 live across first ctx only; v1 across second ctx only; they
        // overlap between the two switches — GIG edge but no BIG edge.
        let info = ProgramInfo::compute(
            &parse_func(
                "func f {\nbb0:\n v0 = mov 1\n ctx\n v1 = mov 2\n v2 = add v0, v1\n ctx\n store scratch[v1+0], v2\n halt\n}",
            )
            .unwrap(),
        );
        let gig = build_gig(&info);
        let big = build_big(&info);
        assert!(gig.has_edge(0, 1), "co-live between the switches");
        assert!(!big.has_edge(0, 1), "never across the same CSB");
        assert!(info.boundary.contains(0) && info.boundary.contains(1));
    }
}
