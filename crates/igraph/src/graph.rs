//! Undirected graphs with adjacency bit-matrices, and coloring.

use regbal_ir::BitSet;

/// An undirected graph over nodes `0..n`, stored as an adjacency
/// bit-matrix (the node counts here — live ranges of one thread — are a
/// few hundred at most).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<BitSet>,
}

impl Graph {
    /// Creates an edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Graph {
        Graph {
            adj: vec![BitSet::new(n); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has zero nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds the undirected edge `{a, b}`. Self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        self.adj[a].insert(b);
        self.adj[b].insert(a);
    }

    /// Adds an edge from `a` to every member of `others` in bulk: `a`'s
    /// adjacency row is OR-ed with `others` in one word-level pass, then
    /// the reverse direction is set bit by bit. `a` itself is skipped if
    /// present (no self-loops). Equivalent to calling
    /// [`add_edge`](Self::add_edge) for each member.
    ///
    /// # Panics
    ///
    /// Panics if `others`' capacity differs from the node count or a
    /// member is out of range.
    pub fn add_edges_from_bitset(&mut self, a: usize, others: &BitSet) {
        assert_eq!(
            others.capacity(),
            self.adj.len(),
            "bitset capacity must equal the node count"
        );
        self.adj[a].union_with(others);
        self.adj[a].remove(a);
        for b in others.iter() {
            if b != a {
                self.adj[b].insert(a);
            }
        }
    }

    /// Makes `set` a clique: every pair of members becomes an edge. Each
    /// member's adjacency row is OR-ed with the whole set in one
    /// word-level pass — O(|set| · n/64) instead of the O(|set|²)
    /// single-bit inserts of pairwise construction.
    ///
    /// # Panics
    ///
    /// Panics if `set`'s capacity differs from the node count.
    pub fn add_clique(&mut self, set: &BitSet) {
        assert_eq!(
            set.capacity(),
            self.adj.len(),
            "bitset capacity must equal the node count"
        );
        for a in set.iter() {
            self.adj[a].union_with(set);
            self.adj[a].remove(a);
        }
    }

    /// Whether `{a, b}` is an edge.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].contains(b)
    }

    /// The neighbour set of `a`.
    pub fn neighbors(&self, a: usize) -> &BitSet {
        &self.adj[a]
    }

    /// Degree of `a`.
    pub fn degree(&self, a: usize) -> usize {
        self.adj[a].count()
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(BitSet::count).sum::<usize>() / 2
    }

    /// Colors the graph with the DSATUR heuristic (Brélaz 1979),
    /// restricted to the nodes in `subset` if given.
    ///
    /// If `cap` is `Some(k)`, nodes that cannot receive a color `< k`
    /// are left uncolored (`None`) instead of opening color `k`; with
    /// `cap = None` the coloring is always total.
    pub fn dsatur_subset(&self, subset: Option<&BitSet>, cap: Option<usize>) -> Coloring {
        let n = self.len();
        let in_play = |i: usize| subset.is_none_or(|s| s.contains(i));
        let mut colors: Vec<Option<u32>> = vec![None; n];
        let mut neighbor_colors: Vec<BitSet> = vec![BitSet::new(n + 1); n];
        let mut remaining: Vec<usize> = (0..n).filter(|&i| in_play(i)).collect();

        while !remaining.is_empty() {
            // Pick uncolored node with max saturation, tie-break degree.
            let (pos, &node) = remaining
                .iter()
                .enumerate()
                .max_by_key(|&(_, &i)| (neighbor_colors[i].count(), self.degree(i)))
                .expect("remaining is non-empty");
            remaining.swap_remove(pos);

            let mut c = 0u32;
            while neighbor_colors[node].contains(c as usize) {
                c += 1;
            }
            if let Some(k) = cap {
                if c as usize >= k {
                    continue; // leave uncolored
                }
            }
            colors[node] = Some(c);
            for nb in self.neighbors(node).iter() {
                if in_play(nb) {
                    neighbor_colors[nb].insert(c as usize);
                }
            }
        }
        let num_colors = colors
            .iter()
            .flatten()
            .map(|&c| c as usize + 1)
            .max()
            .unwrap_or(0);
        Coloring { colors, num_colors }
    }

    /// [`dsatur_subset`](Self::dsatur_subset) over all nodes.
    pub fn dsatur(&self, cap: Option<usize>) -> Coloring {
        self.dsatur_subset(None, cap)
    }

    /// Checks that `colors` assigns distinct colors to adjacent colored
    /// nodes.
    ///
    /// # Errors
    ///
    /// Returns the first conflicting edge `(a, b)`.
    pub fn check_coloring(&self, colors: &[Option<u32>]) -> Result<(), (usize, usize)> {
        for a in 0..self.len() {
            let Some(ca) = colors[a] else { continue };
            for b in self.neighbors(a).iter() {
                if b > a {
                    if let Some(cb) = colors[b] {
                        if ca == cb {
                            return Err((a, b));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// A lower bound on the chromatic number: the size of a greedily
    /// grown clique (used in tests and diagnostics, not in the
    /// allocator itself).
    pub fn greedy_clique_bound(&self) -> usize {
        let mut best = 0;
        for seed in 0..self.len() {
            let mut clique = vec![seed];
            let mut candidates = self.neighbors(seed).clone();
            loop {
                let next = candidates.iter().max_by_key(|&c| {
                    let mut cut = self.neighbors(c).clone();
                    cut.intersect_with(&candidates);
                    cut.count()
                });
                let Some(next) = next else { break };
                clique.push(next);
                candidates.intersect_with(self.neighbors(next));
            }
            best = best.max(clique.len());
        }
        best
    }
}

impl Graph {
    /// Renders the graph in Graphviz DOT syntax with the given node
    /// labels (and optional colors as fill indices).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != self.len()`.
    pub fn to_dot(&self, name: &str, labels: &[String], colors: Option<&[Option<u32>]>) -> String {
        assert_eq!(labels.len(), self.len(), "one label per node");
        let palette = [
            "lightblue", "lightgreen", "lightsalmon", "gold", "plum", "khaki", "lightcyan",
            "mistyrose",
        ];
        let mut out = format!("graph \"{name}\" {{\n  node [style=filled];\n");
        for (i, label) in labels.iter().enumerate() {
            let fill = colors
                .and_then(|c| c[i])
                .map(|c| palette[c as usize % palette.len()])
                .unwrap_or("white");
            out.push_str(&format!("  n{i} [label=\"{label}\", fillcolor={fill}];\n"));
        }
        for a in 0..self.len() {
            for b in self.neighbors(a).iter() {
                if b > a {
                    out.push_str(&format!("  n{a} -- n{b};\n"));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Result of a coloring pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Per-node color; `None` if the node was outside the colored subset
    /// or could not be colored under the cap.
    pub colors: Vec<Option<u32>>,
    /// Number of distinct colors used (`max + 1`).
    pub num_colors: usize,
}

impl Coloring {
    /// Nodes left uncolored within the attempted subset.
    pub fn uncolored<'a>(&'a self, subset: &'a BitSet) -> impl Iterator<Item = usize> + 'a {
        subset.iter().filter(|&i| self.colors[i].is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn basic_edges() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(1, 1); // ignored self-loop
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 1));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.is_empty());
        assert!(Graph::new(0).is_empty());
    }

    #[test]
    fn dsatur_colors_even_cycle_with_two() {
        let g = cycle(6);
        let c = g.dsatur(None);
        assert_eq!(c.num_colors, 2);
        g.check_coloring(&c.colors).unwrap();
    }

    #[test]
    fn dsatur_colors_odd_cycle_with_three() {
        let g = cycle(5);
        let c = g.dsatur(None);
        assert_eq!(c.num_colors, 3);
        g.check_coloring(&c.colors).unwrap();
    }

    #[test]
    fn dsatur_on_clique_uses_n_colors() {
        let mut g = Graph::new(5);
        for a in 0..5 {
            for b in (a + 1)..5 {
                g.add_edge(a, b);
            }
        }
        let c = g.dsatur(None);
        assert_eq!(c.num_colors, 5);
        assert_eq!(g.greedy_clique_bound(), 5);
    }

    #[test]
    fn cap_leaves_nodes_uncolored() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        let c = g.dsatur(Some(2));
        let uncolored = c.colors.iter().filter(|c| c.is_none()).count();
        assert_eq!(uncolored, 1);
        g.check_coloring(&c.colors).unwrap();
    }

    #[test]
    fn subset_coloring_ignores_outside_nodes() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let subset: BitSet = [0usize, 1].into_iter().collect();
        let mut padded = BitSet::new(4);
        padded.extend(subset.iter());
        let c = g.dsatur_subset(Some(&padded), None);
        assert!(c.colors[0].is_some());
        assert!(c.colors[1].is_some());
        assert!(c.colors[2].is_none());
        assert!(c.colors[3].is_none());
        assert_eq!(c.uncolored(&padded).count(), 0);
    }

    #[test]
    fn check_coloring_reports_conflicts() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        assert_eq!(g.check_coloring(&[Some(0), Some(0)]), Err((0, 1)));
        assert!(g.check_coloring(&[Some(0), Some(1)]).is_ok());
        assert!(g.check_coloring(&[Some(0), None]).is_ok());
    }

    #[test]
    fn empty_graph_coloring() {
        let g = Graph::new(0);
        let c = g.dsatur(None);
        assert_eq!(c.num_colors, 0);
        assert!(c.colors.is_empty());
    }
}

#[cfg(test)]
mod bulk_edge_tests {
    use super::*;

    /// Tiny deterministic generator so these tests need no external
    /// crates.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
        fn set(&mut self, n: usize, density_pct: u64) -> BitSet {
            let mut s = BitSet::new(n);
            for i in 0..n {
                if self.next() % 100 < density_pct {
                    s.insert(i);
                }
            }
            s
        }
    }

    fn clique_pairwise(g: &mut Graph, set: &BitSet) {
        let nodes: Vec<usize> = set.iter().collect();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                g.add_edge(a, b);
            }
        }
    }

    #[test]
    fn add_clique_matches_pairwise_on_random_sets() {
        let mut rng = Lcg(0xfeed);
        for n in [1usize, 7, 64, 65, 130] {
            for density in [0, 10, 50, 100] {
                let set = rng.set(n, density);
                let mut bulk = Graph::new(n);
                bulk.add_clique(&set);
                let mut pairwise = Graph::new(n);
                clique_pairwise(&mut pairwise, &set);
                assert_eq!(bulk, pairwise, "n={n} density={density}%");
            }
        }
    }

    #[test]
    fn add_edges_from_bitset_matches_pairwise_on_random_sets() {
        let mut rng = Lcg(0xbeef);
        for n in [2usize, 9, 64, 100] {
            for density in [0, 25, 100] {
                let set = rng.set(n, density);
                let a = (rng.next() as usize) % n;
                let mut bulk = Graph::new(n);
                bulk.add_edges_from_bitset(a, &set);
                let mut pairwise = Graph::new(n);
                for b in set.iter() {
                    pairwise.add_edge(a, b);
                }
                assert_eq!(bulk, pairwise, "n={n} density={density}% a={a}");
            }
        }
    }

    #[test]
    fn bulk_apis_accumulate_over_existing_edges() {
        let mut rng = Lcg(0x1234);
        let n = 90;
        let mut bulk = Graph::new(n);
        let mut pairwise = Graph::new(n);
        for round in 0..12 {
            let set = rng.set(n, 30);
            if round % 2 == 0 {
                bulk.add_clique(&set);
                clique_pairwise(&mut pairwise, &set);
            } else {
                let a = (rng.next() as usize) % n;
                bulk.add_edges_from_bitset(a, &set);
                for b in set.iter() {
                    pairwise.add_edge(a, b);
                }
            }
        }
        assert_eq!(bulk, pairwise);
        assert!(bulk.num_edges() > 0, "rounds must have produced edges");
    }

    #[test]
    fn empty_set_adds_nothing() {
        let mut g = Graph::new(8);
        g.add_clique(&BitSet::new(8));
        g.add_edges_from_bitset(3, &BitSet::new(8));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn full_set_builds_complete_graph() {
        let n = 70;
        let full: BitSet = (0..n).collect();
        let mut g = Graph::new(n);
        g.add_clique(&full);
        assert_eq!(g.num_edges(), n * (n - 1) / 2);
        for a in 0..n {
            assert!(!g.has_edge(a, a), "no self-loop at {a}");
            assert_eq!(g.degree(a), n - 1);
        }
    }

    #[test]
    fn member_source_node_gets_no_self_loop() {
        let mut g = Graph::new(5);
        let set: BitSet = {
            let mut s = BitSet::new(5);
            s.extend([1usize, 2, 4]);
            s
        };
        g.add_edges_from_bitset(2, &set);
        assert!(!g.has_edge(2, 2));
        assert!(g.has_edge(2, 1));
        assert!(g.has_edge(2, 4));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must equal the node count")]
    fn capacity_mismatch_panics() {
        let mut g = Graph::new(4);
        g.add_clique(&BitSet::new(5));
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_renders_nodes_edges_and_colors() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let labels = vec!["v0".to_string(), "v1".to_string(), "v2".to_string()];
        let dot = g.to_dot("gig", &labels, Some(&[Some(0), Some(1), Some(0)]));
        assert!(dot.starts_with("graph \"gig\""));
        assert!(dot.contains("n0 -- n1;"));
        assert!(dot.contains("n1 -- n2;"));
        assert!(!dot.contains("n0 -- n2;"));
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(dot.contains("fillcolor=lightgreen"));
        let plain = g.to_dot("gig", &labels, None);
        assert!(plain.contains("fillcolor=white"));
    }

    #[test]
    #[should_panic(expected = "one label per node")]
    fn dot_rejects_wrong_label_count() {
        Graph::new(2).to_dot("g", &[], None);
    }
}
