//! Interference graphs and coloring for the `regbal` allocator.
//!
//! Implements the three graphs of paper §3.2:
//!
//! * **GIG** (global interference graph): all live ranges, an edge
//!   whenever two ranges are co-live at some program point
//!   ([`build_gig`]);
//! * **BIG** (boundary interference graph): boundary nodes only, an edge
//!   only when two nodes are live across the *same* CSB
//!   ([`build_big`]);
//! * **IIG** (internal interference graph, one per non-switch region):
//!   the internal nodes of that region with their interference edges
//!   ([`build_iigs`]);
//!
//! plus the coloring machinery used by the bound estimation and the
//! allocators: greedy sequential coloring and DSATUR ([`Graph::dsatur`]).
//!
//! # Example
//!
//! ```
//! use regbal_ir::parse_func;
//! use regbal_analysis::ProgramInfo;
//! use regbal_igraph::build_gig;
//!
//! let f = parse_func(
//!     "func f {\nbb0:\n v0 = mov 1\n v1 = mov 2\n v2 = add v0, v1\n store scratch[v2+0], v2\n halt\n}",
//! )?;
//! let info = ProgramInfo::compute(&f);
//! let gig = build_gig(&info);
//! assert!(gig.has_edge(0, 1)); // v0 and v1 are co-live
//! let coloring = gig.dsatur(None);
//! assert!(gig.check_coloring(&coloring.colors).is_ok());
//! # Ok::<(), regbal_ir::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod graph;

pub use build::{build_big, build_big_naive, build_gig, build_gig_naive, build_iigs, Iig};
pub use graph::{Coloring, Graph};
