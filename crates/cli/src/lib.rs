//! Command-line driver for the `regbal` allocator.
//!
//! The binary is `regbal`; every subcommand reads programs in the
//! textual assembly syntax of `regbal-ir` (one or more `func` blocks per
//! file; each function becomes one hardware thread, in order):
//!
//! ```text
//! regbal analyze  prog.rba                 # analyses + §5 bounds
//! regbal alloc    --nreg 64 t0.rba t1.rba  # balance threads, print code
//! regbal alloc    --nreg 64 --spill ...    # spill when sharing can't fit
//! regbal alloc    --nreg 64 --ladder ...   # degrade down the ladder, never fail
//! regbal run      --cycles 100000 a.rba    # simulate, print statistics
//! regbal eval     --smoke                  # strategy sweep -> BENCH_EVAL.json
//! regbal serve    --stdio                  # resident allocation server
//! regbal serve    --replay trace.json      # benchmark a server on a trace
//! ```
//!
//! The driver logic lives in this library so it can be tested without
//! spawning processes; [`run_cli`] takes the argument vector and an
//! output sink and returns the process exit code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use regbal_analysis::ProgramInfo;
use regbal_core::{
    allocate_ladder_with, allocate_threads_stats, allocate_threads_with_spill, estimate_bounds,
    force_min_bounds, EngineConfig, EngineStats, LadderConfig,
};
use regbal_eval::{
    run_device_eval, run_eval, validate_json, CellStatus, DeviceEvalConfig, EvalConfig, Json,
};
use regbal_ir::{parse_module, Func};
use regbal_serve::{ReplayConfig, ServeConfig, TraceFile, Verdict};
use regbal_sim::{SanitizerConfig, SimConfig, Simulator, StopWhen};
use regbal_workloads::{Arrival, TraceConfig};
use std::fmt::Write as _;

/// Runs the CLI with `args` (excluding the program name), writing
/// human-readable output to `out`.
///
/// # Errors
///
/// Returns a user-facing message on bad usage, unparsable input or an
/// allocation failure; the caller maps it to a non-zero exit code.
pub fn run_cli(args: &[String], out: &mut String) -> Result<(), String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("analyze") => analyze(&collect_files(it)?, out),
        Some("alloc") => alloc(args[1..].to_vec(), out),
        Some("run") => run(args[1..].to_vec(), out),
        Some("eval") => eval(args[1..].to_vec(), out),
        Some("device") => device(args[1..].to_vec(), out),
        Some("serve") => serve(args[1..].to_vec(), out),
        Some("fuzz") => fuzz(args[1..].to_vec(), out),
        Some("dot") => dot(args[1..].to_vec(), out),
        Some("help") | None => {
            out.push_str(USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

const USAGE: &str = "\
regbal — cross-thread register allocation for network processors

USAGE:
  regbal analyze <files...>                   per-function analyses and bounds
  regbal alloc [OPTS] <files...>              allocate threads, print physical code
      --nreg <N>       register file size (default 128)
      --spill          fall back to spilling when sharing cannot fit
      --ladder         never fail: walk the degradation ladder
                       balanced -> balanced-spill -> fixed-partition ->
                       spill-all, reporting every forced transition
      --min            squeeze each thread to its (MinPR, MinR) bound
      --naive          disable engine memoization and parallelism
      --stats          print engine statistics (iterations, candidate
                       cache hits, per-phase wall time); with --json,
                       adds the wall-clock `engine` member to the
                       otherwise deterministic document
      --quiet          summary only, no code
      --json           machine-readable allocation summary (JSON, no code)
  regbal run [OPTS] <files...>                simulate the threads
      --cycles <N>     cycle budget (default 1000000)
      --iterations <N> stop when all threads did N iterations
      --trace <N>      keep and print the first N scheduler events
      --sanitize       arm the register-clobber sanitizer; any violation
                       (cross-thread clobber, foreign-bank write) is an
                       error, uninitialized reads are warnings
  regbal eval [OPTS]                          traffic-driven strategy evaluation
      --smoke          fast sweep (fewer packets, two file sizes)
      --packets <N>    packets per thread (default 64; 12 with --smoke)
      --nreg <LIST>    comma-separated register-file sizes to sweep
      --out <FILE>     where to write the report (default BENCH_EVAL.json)
      --validate <F>   validate an existing report instead of running
      --sanitize       instrument every measured run with the clobber
                       sanitizer; any report fails the sweep
      --workers <N>    shard the sweep over N worker threads (default:
                       the machine's cores; 1 = serial). Any count
                       produces a byte-identical report
      --timing         record wall-clock timing in the report (on for
                       the full sweep, off with --smoke)
  regbal device [OPTS]                        device-scale scenario family: a
                                              command processor feeding 4/16/64
                                              worker PUs, run under the
                                              reference slice loop, the serial
                                              event core and the threaded event
                                              core; fails on any report
                                              divergence, digest mismatch or
                                              sanitizer finding
      --smoke          4- and 16-PU scenarios only (the CI gate)
      --nreg <N>       register file for the Ladder-compiled build (default 64)
      --cycles <N>     cycle budget per run (default 20000000)
      --seed <N>       packet-generator seed (default 53710)
      --os-threads <N> OS threads for the threaded-core identity gate
                       (default 4)
      --sanitize       arm the clobber sanitizer on the compiled runs;
                       any violation fails the family
      --out <FILE>     also write the machine-readable report
                       (regbal-device/1 JSON)
  regbal serve [MODE] [OPTS]                  resident allocation server
                                              (line-delimited JSON requests,
                                              regbal-serve/2; responses are
                                              byte-identical to
                                              `regbal alloc --json`)
    modes (exactly one):
      --stdio          serve requests on stdin, responses on stdout
      --listen <ADDR>  serve concurrent TCP connections over one shared
                       persistent cache (e.g. 127.0.0.1:7421); shutdown
                       drains: in-flight requests finish, acks go last
      --gen-trace <F>  write a seeded regbal-trace/1 workload file
      --replay <F>     replay a trace file against a fresh resident
                       server, reporting per-pass latency and cache
                       behaviour; a cache miss on any warm pass is an
                       error
      --check-concurrent <F>  split the trace's kernels across N TCP
                       clients, serve them concurrently, and demand each
                       client's transcript be byte-identical to serving
                       it alone; with --cache-dir also proves a
                       restarted server answers warm
    server options (--stdio, --listen, --replay, --check-concurrent):
      --workers <N>    worker threads per request wave (default 1; any
                       count produces byte-identical responses)
      --queue-cap <N>  bounded admission queue (default 256)
      --cache-cap <N>  response-cache entries (default 4096)
      --trajectory-cap <N>  resident module trajectories (default 256)
      --cache-dir <D>  content-addressed on-disk cache: outcomes and
                       modules persist across restarts; corrupt entries
                       degrade to cold misses
      --cache-dir-cap <BYTES>  byte cap on the on-disk cache (default
                       0 = unbounded): after each store, least-recently-
                       accessed entries are deleted until it fits
      --deadline-ms <N>  per-request deadline (default 0 = none): a
                       request still queued when it expires answers an
                       in-band `timeout` error instead of being computed
      --shutdown-token <T>  require `\"token\": \"<T>\"` on shutdown
                       requests; others get an in-band `unauthorized`
                       error and the server keeps serving
      --faults <SPEC>  arm the deterministic fault-injection plane
                       (chaos testing): comma-separated key=value with
                       seed=<N>, stall_ms=<N>, and a per-mille rate per
                       site (write_fail, write_short, rename_fail,
                       read_corrupt, disconnect, reader_stall,
                       write_err); with --replay this runs the chaos
                       harness instead: multi-session replay under
                       injected faults, every admitted request must be
                       answered with the fault-free baseline document,
                       then a fault-free healing pass over the surviving
                       cache dir must serve the baseline again
      --max-conns <N>  concurrent TCP connections admitted (default
                       unlimited); extra connections get one in-band
                       `overloaded` error line
      --metrics        print the backpressure summary (queue high-water,
                       admission wait p50/p99, deferred/rejected,
                       per-connection totals) when the server exits
    trace generation (--gen-trace):
      --requests <N>   requests to generate (default 100)
      --seed <N>       trace seed (default 990951)
      --arrival <A>    uniform|bursty (default uniform)
      --mean-gap-us <N>  mean inter-arrival gap (default 500)
      --packets <N>    packets per thread in the kernels (default 4)
      --lines <F>      also write ready-to-pipe request lines
    replay (--replay):
      --passes <N>     passes over the trace (default 2; pass 1 cold)
      --window <N>     requests in flight (default 1)
      --paced          honour the trace's arrival times
      --verify         re-run every distinct request through the
                       one-shot `regbal alloc --json` path and demand
                       byte-identical documents
      --sanitize       re-run every distinct allocation on the
                       simulator with the clobber sanitizer armed
      --responses <F>  write every pass's response lines
      --out <F>        write the regbal-serve-bench/2 report
    concurrency check (--check-concurrent):
      --clients <N>    TCP clients to interleave (default 3)
  regbal fuzz [OPTS]                          time-budgeted stress-fuzz walk:
                                              seeded adversarial bundles
                                              through the full ladder contract
                                              (no panics, confined validated
                                              rewrites, preserved semantics,
                                              sanitizer-clean, no hangs)
      --seconds <N>    time budget in seconds (default 5; at least one
                       case always runs)
      --start-seed <N> first index of the deterministic case walk
                       (default 0)
      --cases <N>      run exactly N cases instead of a time budget
      --archive <F>    append every failing case line to F for replay
                       by tests/fuzz_regressions.rs (the committed
                       corpus is tests/fuzz_regressions.txt); each case
                       is deterministically minimized first (fewer
                       threads, smaller file, simpler class — while the
                       failure still reproduces)
      --minimize <F>   re-minimize every case line of archive F in
                       place (comments are preserved); no fuzz walk
  regbal dot [--ig] <files...>                Graphviz output (CFG, or the
                                              interference graph with --ig)
  regbal help                                 this text
";

fn collect_files<'a>(it: impl Iterator<Item = &'a String>) -> Result<Vec<String>, String> {
    let files: Vec<String> = it.cloned().collect();
    if files.is_empty() {
        return Err(format!("expected at least one input file\n{USAGE}"));
    }
    Ok(files)
}

/// Loads every function from every file, in order, then resolves
/// subroutines: functions that are `call`ed by others are treated as
/// subroutines and inlined; the remaining root functions become the
/// hardware threads.
fn load(files: &[String]) -> Result<Vec<Func>, String> {
    let mut module = Vec::new();
    for path in files {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let parsed = parse_module(&src).map_err(|e| format!("{path}: {e}"))?;
        if parsed.is_empty() {
            return Err(format!("{path}: no functions found"));
        }
        module.extend(parsed);
    }
    let called: std::collections::HashSet<String> = module
        .iter()
        .flat_map(|f| f.iter_insts())
        .filter_map(|(_, _, i)| match i {
            regbal_ir::Inst::Call { callee } => Some(callee.clone()),
            _ => None,
        })
        .collect();
    let roots: Vec<&Func> = module.iter().filter(|f| !called.contains(&f.name)).collect();
    if roots.is_empty() {
        return Err("every function is called by another; no thread entry point".into());
    }
    roots
        .iter()
        .map(|f| regbal_ir::inline_module(&module, &f.name).map_err(|e| e.to_string()))
        .collect()
}

fn analyze(files: &[String], out: &mut String) -> Result<(), String> {
    for func in load(files)? {
        let info = ProgramInfo::compute(&func);
        let est = estimate_bounds(&info);
        let boundary = info.boundary.count();
        let _ = writeln!(out, "function `{}`:", func.name);
        let _ = writeln!(
            out,
            "  instructions      {} ({} context switches, {:.0}%)",
            func.num_insts(),
            func.num_ctx_insts(),
            100.0 * func.num_ctx_insts() as f64 / func.num_insts() as f64
        );
        let _ = writeln!(
            out,
            "  live ranges       {} ({} boundary, {} internal)",
            info.num_vregs(),
            boundary,
            info.num_vregs() - boundary
        );
        let _ = writeln!(
            out,
            "  non-switch regions {} (avg {:.1} points)",
            info.nsr.num_regions(),
            info.nsr.avg_size()
        );
        let _ = writeln!(
            out,
            "  bounds            MinPR={} MinR={} MaxPR={} MaxR={}",
            est.bounds.min_pr, est.bounds.min_r, est.bounds.max_pr, est.bounds.max_r
        );
    }
    Ok(())
}

fn alloc(args: Vec<String>, out: &mut String) -> Result<(), String> {
    let mut nreg = 128usize;
    let mut spill = false;
    let mut ladder = false;
    let mut min = false;
    let mut quiet = false;
    let mut naive = false;
    let mut stats = false;
    let mut json = false;
    let mut files = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nreg" => {
                nreg = it
                    .next()
                    .ok_or("--nreg needs a value")?
                    .parse()
                    .map_err(|e| format!("--nreg: {e}"))?;
            }
            "--spill" => spill = true,
            "--ladder" => ladder = true,
            "--min" => min = true,
            "--quiet" => quiet = true,
            "--naive" => naive = true,
            "--stats" => stats = true,
            "--json" => json = true,
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    if json && min {
        return Err("--json cannot be combined with --min".into());
    }
    if ladder && (spill || min) {
        return Err("--ladder subsumes --spill and cannot be combined with --min".into());
    }
    let funcs = load(&files)?;

    if min {
        for func in &funcs {
            let t = force_min_bounds(func).map_err(|e| format!("{}: {e}", func.name))?;
            let _ = writeln!(
                out,
                "`{}`: PR={} R={} with {} move(s)",
                func.name,
                t.pr(),
                t.pr() + t.sr(),
                t.moves()
            );
        }
        return Ok(());
    }

    if ladder {
        let engine = if naive {
            EngineConfig::naive()
        } else {
            EngineConfig::default()
        };
        let config = LadderConfig {
            engine,
            ..LadderConfig::default()
        };
        let result = allocate_ladder_with(&funcs, nreg, &config).map_err(|e| e.to_string())?;
        if json {
            let verdict = Verdict::Ladder(Box::new(result));
            let doc = regbal_serve::verdict_doc(&funcs, nreg, &verdict);
            let _ = writeln!(out, "{}", doc.pretty());
            return Ok(());
        }
        let summaries = result.thread_summaries();
        for (i, t) in summaries.iter().enumerate() {
            let _ = writeln!(
                out,
                "thread {i} `{}`: PR={} SR={} moves={} spills={}",
                funcs[i].name, t.pr, t.sr, t.moves, t.spills
            );
        }
        for d in &result.degradations {
            let _ = writeln!(out, "degraded: {d}");
        }
        let _ = writeln!(
            out,
            "demand {} of {nreg} registers (rung `{}`, {} degradation(s))",
            result.registers_used(),
            result.step,
            result.degraded_count()
        );
        if !quiet {
            for f in &result.rewrite().map_err(|e| e.to_string())? {
                let _ = writeln!(out, "\n{f}");
            }
        }
        return Ok(());
    }

    let (physical, summary) = if spill {
        let hybrid =
            allocate_threads_with_spill(&funcs, nreg).map_err(|e| e.to_string())?;
        if json {
            let verdict = Verdict::Spill(hybrid);
            let doc = regbal_serve::verdict_doc(&funcs, nreg, &verdict);
            let _ = writeln!(out, "{}", doc.pretty());
            return Ok(());
        }
        let mut s = String::new();
        for (i, t) in hybrid.alloc.threads.iter().enumerate() {
            let _ = writeln!(
                s,
                "thread {i} `{}`: PR={} SR={} moves={} spills={}",
                funcs[i].name,
                t.pr(),
                t.sr(),
                t.moves(),
                hybrid.spills[i]
            );
        }
        let _ = writeln!(
            s,
            "demand {} of {nreg} registers (SGR={})",
            hybrid.alloc.total_registers(),
            hybrid.alloc.sgr()
        );
        (hybrid.rewrite(), s)
    } else {
        let config = if naive {
            EngineConfig::naive()
        } else {
            EngineConfig::default()
        };
        let (alloc, engine_stats) =
            allocate_threads_stats(&funcs, nreg, config).map_err(|e| e.to_string())?;
        if json {
            let verdict = Verdict::Balanced(alloc);
            let mut doc = regbal_serve::verdict_doc(&funcs, nreg, &verdict);
            // The engine member carries wall-clock timings, so it would
            // break the document's determinism (and the serve cache's
            // byte-identity contract); it is opt-in via --stats.
            if stats {
                if let Json::Obj(members) = &mut doc {
                    members.push(("engine".into(), engine_json(&engine_stats, config)));
                }
            }
            let _ = writeln!(out, "{}", doc.pretty());
            return Ok(());
        }
        let mut s = String::new();
        for (i, t) in alloc.threads.iter().enumerate() {
            let _ = writeln!(
                s,
                "thread {i} `{}`: PR={} SR={} moves={}",
                funcs[i].name,
                t.pr(),
                t.sr(),
                t.moves()
            );
        }
        let _ = writeln!(
            s,
            "demand {} of {nreg} registers (SGR={})",
            alloc.total_registers(),
            alloc.sgr()
        );
        if stats {
            s.push_str(&format_stats(&engine_stats, config));
        }
        (alloc.rewrite_funcs(&funcs), s)
    };
    out.push_str(&summary);
    if !quiet {
        for f in &physical {
            let _ = writeln!(out, "\n{f}");
        }
    }
    Ok(())
}

/// The optional `engine` member of the `regbal alloc --json` document
/// (`--stats --json`); the document skeleton itself lives in
/// [`regbal_serve::alloc_doc`] so the server provably prints the same
/// bytes.
fn engine_json(stats: &EngineStats, config: EngineConfig) -> Json {
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    Json::Obj(vec![
        ("iterations".into(), Json::uint(stats.iterations as u64)),
        ("evaluated".into(), Json::uint(stats.evaluated as u64)),
        ("cached".into(), Json::uint(stats.cached as u64)),
        ("memoized".into(), Json::Bool(config.memoize)),
        ("init_us".into(), Json::float(us(stats.init))),
        ("search_us".into(), Json::float(us(stats.search))),
        ("verify_us".into(), Json::float(us(stats.verify))),
        ("total_us".into(), Json::float(us(stats.total))),
    ])
}

/// The `regbal eval` subcommand: run the strategy-evaluation sweep and
/// write `BENCH_EVAL.json`, or validate an existing report.
fn eval(args: Vec<String>, out: &mut String) -> Result<(), String> {
    let mut smoke = false;
    let mut sanitize = false;
    let mut timing = false;
    let mut out_path = "BENCH_EVAL.json".to_string();
    let mut packets: Option<u32> = None;
    let mut workers: Option<usize> = None;
    let mut nreg_sweep: Option<Vec<usize>> = None;
    let mut validate_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--sanitize" => sanitize = true,
            "--timing" => timing = true,
            "--workers" => {
                workers = Some(
                    it.next()
                        .ok_or("--workers needs a value")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                );
            }
            "--out" => out_path = it.next().ok_or("--out needs a value")?,
            "--packets" => {
                packets = Some(
                    it.next()
                        .ok_or("--packets needs a value")?
                        .parse()
                        .map_err(|e| format!("--packets: {e}"))?,
                );
            }
            "--nreg" => {
                let list = it.next().ok_or("--nreg needs a value")?;
                nreg_sweep = Some(
                    list.split(',')
                        .map(|n| n.trim().parse().map_err(|e| format!("--nreg `{n}`: {e}")))
                        .collect::<Result<_, _>>()?,
                );
            }
            "--validate" => validate_path = Some(it.next().ok_or("--validate needs a value")?),
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }

    if let Some(path) = validate_path {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let doc = regbal_eval::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let summary = validate_json(&doc).map_err(|e| format!("{path}: {e}"))?;
        let _ = writeln!(out, "{path}: OK ({summary})");
        return Ok(());
    }

    let mut config = if smoke { EvalConfig::smoke() } else { EvalConfig::full() };
    if let Some(p) = packets {
        config.packets = p;
    }
    if let Some(sweep) = nreg_sweep {
        config.nreg_sweep = sweep;
    }
    if let Some(w) = workers {
        config.workers = w;
    }
    config.sanitize = sanitize;
    config.timing |= timing;
    let report = run_eval(&config);

    // A compact throughput table per scenario: rows are strategies,
    // columns the swept register-file sizes.
    for scenario in &report.scenarios {
        let _ = writeln!(
            out,
            "{} ({}){}",
            scenario.name,
            scenario.description,
            if scenario.register_hungry { " [hungry]" } else { "" }
        );
        for strategy in &report.strategies {
            let cells: Vec<String> = report
                .nreg_sweep
                .iter()
                .map(|&nreg| match scenario.cell(strategy, nreg) {
                    Some(c) if c.status == CellStatus::Ok => format!(
                        "{nreg}: {:.2}{}",
                        c.throughput_ipkc,
                        if c.checksum_ok { "" } else { " BAD-CHECKSUM" }
                    ),
                    Some(_) | None => format!("{nreg}: -"),
                })
                .collect();
            let _ = writeln!(out, "  {strategy:>15}  {}", cells.join("  "));
        }
    }
    let text = report.to_json_string();
    std::fs::write(&out_path, text + "\n").map_err(|e| format!("{out_path}: {e}"))?;
    let _ = writeln!(
        out,
        "wrote {out_path} ({} scenarios x {} strategies x {} sizes, {} packets/thread)",
        report.scenarios.len(),
        report.strategies.len(),
        report.nreg_sweep.len(),
        report.packets
    );
    if let Some(t) = &report.timing {
        let _ = writeln!(
            out,
            "timing: {} worker(s) on {} thread(s), {:.1} ms wall",
            t.workers, t.threads, t.wall_ms
        );
    }
    if sanitize {
        let (violations, warnings) = report
            .scenarios
            .iter()
            .flat_map(|s| &s.cells)
            .fold((0usize, 0usize), |(v, w), c| {
                (v + c.sanitizer_violations, w + c.sanitizer_warnings)
            });
        let _ = writeln!(
            out,
            "sanitizer: {violations} violation(s), {warnings} warning(s) across the sweep"
        );
        if violations + warnings > 0 {
            return Err(format!(
                "sanitizer reported {violations} violation(s) and {warnings} warning(s)"
            ));
        }
    }
    Ok(())
}

/// The `regbal device` subcommand: run the device scenario family
/// (command processor + worker PUs) under all three chip cores and
/// check report identity, digest correctness and sanitizer silence.
fn device(args: Vec<String>, out: &mut String) -> Result<(), String> {
    let mut smoke = false;
    let mut sanitize = false;
    let mut out_path: Option<String> = None;
    let mut nreg: Option<usize> = None;
    let mut cycles: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut os_threads: Option<usize> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--sanitize" => sanitize = true,
            "--out" => out_path = Some(it.next().ok_or("--out needs a value")?),
            "--nreg" => {
                nreg = Some(
                    it.next()
                        .ok_or("--nreg needs a value")?
                        .parse()
                        .map_err(|e| format!("--nreg: {e}"))?,
                );
            }
            "--cycles" => {
                cycles = Some(
                    it.next()
                        .ok_or("--cycles needs a value")?
                        .parse()
                        .map_err(|e| format!("--cycles: {e}"))?,
                );
            }
            "--seed" => {
                seed = Some(
                    it.next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                );
            }
            "--os-threads" => {
                os_threads = Some(
                    it.next()
                        .ok_or("--os-threads needs a value")?
                        .parse()
                        .map_err(|e| format!("--os-threads: {e}"))?,
                );
            }
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }

    let mut config = if smoke {
        DeviceEvalConfig::smoke()
    } else {
        DeviceEvalConfig::full()
    };
    if let Some(n) = nreg {
        config.nreg = n;
    }
    if let Some(c) = cycles {
        config.cycle_budget = c;
    }
    if let Some(s) = seed {
        config.seed = s;
    }
    if let Some(t) = os_threads {
        config.os_threads = t.max(1);
    }
    config.sanitize = sanitize;
    let report = run_device_eval(&config);

    for s in &report.scenarios {
        let gate = |ok: bool| if ok { "ok" } else { "FAIL" };
        let _ = writeln!(
            out,
            "{}: {} worker PU(s), {} ring(s), {} packet(s)",
            s.name, s.pus, s.rings, s.packets
        );
        let _ = writeln!(
            out,
            "  reference    {:>9} cycles  digest {:08x} ({})",
            s.reference.cycles,
            s.reference.digest,
            gate(s.reference.digest == s.expected_digest && s.reference.halted)
        );
        let _ = writeln!(
            out,
            "  event        reports identical: {}",
            gate(s.event_identical)
        );
        let _ = writeln!(
            out,
            "  event+{}thr   reports identical: {}",
            config.os_threads,
            gate(s.threads_identical)
        );
        let _ = writeln!(
            out,
            "  ladder@{:<3}   {:>9} cycles  digest {:08x} ({}), {} sanitizer finding(s), limits {:?}",
            config.nreg,
            s.physical.cycles,
            s.physical.digest,
            gate(s.physical.digest == s.expected_digest
                && s.physical.halted
                && s.physical.sanitizer_violations == 0),
            s.physical.sanitizer_violations,
            s.physical_limits.iter().take(4).collect::<Vec<_>>()
        );
    }
    if let Some(path) = out_path {
        std::fs::write(&path, report.to_json().pretty() + "\n")
            .map_err(|e| format!("{path}: {e}"))?;
        let _ = writeln!(out, "wrote {path}");
    }
    if report.ok() {
        let _ = writeln!(out, "device family OK ({} scenario(s))", report.scenarios.len());
        Ok(())
    } else {
        Err("device family FAILED: report divergence, digest mismatch, stall or sanitizer finding".into())
    }
}

/// The `regbal serve` subcommand: the resident allocation server
/// (stdio or TCP), the seeded trace generator, and the trace-replay
/// benchmark client.
fn serve(args: Vec<String>, out: &mut String) -> Result<(), String> {
    enum Mode {
        Stdio,
        Listen(String),
        GenTrace(String),
        Replay(String),
        CheckConcurrent(String),
    }
    let mut mode: Option<Mode> = None;
    let mut server = ServeConfig::default();
    let mut trace_config = TraceConfig::default();
    let mut lines_path: Option<String> = None;
    let mut passes = 2usize;
    let mut window = 1usize;
    let mut paced = false;
    let mut verify = false;
    let mut sanitize = false;
    let mut metrics_summary = false;
    let mut clients = 3usize;
    let mut responses_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let set_mode = |m: Mode, current: &mut Option<Mode>| -> Result<(), String> {
        if current.is_some() {
            return Err(
                "pick exactly one of --stdio, --listen, --gen-trace, --replay, --check-concurrent"
                    .into(),
            );
        }
        *current = Some(m);
        Ok(())
    };
    fn parse<T: std::str::FromStr>(what: &str, v: String) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        v.parse().map_err(|e| format!("{what}: {e}"))
    }
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{what} needs a value"));
        match a.as_str() {
            "--stdio" => set_mode(Mode::Stdio, &mut mode)?,
            "--listen" => {
                let addr = value("--listen")?;
                set_mode(Mode::Listen(addr), &mut mode)?;
            }
            "--gen-trace" => {
                let path = value("--gen-trace")?;
                set_mode(Mode::GenTrace(path), &mut mode)?;
            }
            "--replay" => {
                let path = value("--replay")?;
                set_mode(Mode::Replay(path), &mut mode)?;
            }
            "--check-concurrent" => {
                let path = value("--check-concurrent")?;
                set_mode(Mode::CheckConcurrent(path), &mut mode)?;
            }
            "--workers" => server.workers = parse("--workers", value("--workers")?)?,
            "--queue-cap" => server.queue_cap = parse("--queue-cap", value("--queue-cap")?)?,
            "--cache-cap" => server.cache_cap = parse("--cache-cap", value("--cache-cap")?)?,
            "--trajectory-cap" => {
                server.trajectory_cap = parse("--trajectory-cap", value("--trajectory-cap")?)?;
            }
            "--cache-dir" => server.cache_dir = Some(value("--cache-dir")?),
            "--cache-dir-cap" => {
                server.cache_dir_cap = parse("--cache-dir-cap", value("--cache-dir-cap")?)?;
            }
            "--deadline-ms" => {
                server.deadline_ms = parse("--deadline-ms", value("--deadline-ms")?)?;
            }
            "--shutdown-token" => server.shutdown_token = Some(value("--shutdown-token")?),
            "--faults" => {
                let plan = regbal_serve::FaultPlan::parse_spec(&value("--faults")?)?;
                server.faults = Some(std::sync::Arc::new(plan));
            }
            "--max-conns" => server.max_conns = parse("--max-conns", value("--max-conns")?)?,
            "--metrics" => metrics_summary = true,
            "--clients" => clients = parse("--clients", value("--clients")?)?,
            "--requests" => trace_config.requests = parse("--requests", value("--requests")?)?,
            "--seed" => trace_config.seed = parse("--seed", value("--seed")?)?,
            "--arrival" => trace_config.arrival = Arrival::parse(&value("--arrival")?)?,
            "--mean-gap-us" => {
                trace_config.mean_gap_us = parse("--mean-gap-us", value("--mean-gap-us")?)?;
            }
            "--packets" => trace_config.packets = parse("--packets", value("--packets")?)?,
            "--lines" => lines_path = Some(value("--lines")?),
            "--passes" => passes = parse("--passes", value("--passes")?)?,
            "--window" => window = parse("--window", value("--window")?)?,
            "--paced" => paced = true,
            "--verify" => verify = true,
            "--sanitize" => sanitize = true,
            "--responses" => responses_path = Some(value("--responses")?),
            "--out" => out_path = Some(value("--out")?),
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }

    match mode.ok_or("pick one of --stdio, --listen, --gen-trace, --replay, --check-concurrent")? {
        Mode::Stdio => {
            // Responses go straight to the process stdout so the mode
            // is usable in a pipeline; `out` stays empty. The metrics
            // summary goes to stderr for the same reason.
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut cache = server
                .open_cache()
                .map_err(|e| format!("--cache-dir: {e}"))?;
            let metrics = regbal_serve::ServeMetrics::default();
            regbal_serve::serve_lines_metered(stdin, stdout, &server, &mut cache, &metrics)
                .map_err(|e| format!("stdio transport: {e}"))?;
            if metrics_summary {
                eprint!("{}", metrics.snapshot().summary(&metrics.connections()));
            }
            Ok(())
        }
        Mode::Listen(addr) => {
            let mut announce = std::io::stderr();
            let metrics = regbal_serve::ServeMetrics::default();
            regbal_serve::serve_tcp_metered(&addr, &server, &mut announce, &metrics)
                .map_err(|e| format!("{addr}: {e}"))?;
            if metrics_summary {
                eprint!("{}", metrics.snapshot().summary(&metrics.connections()));
            }
            Ok(())
        }
        Mode::GenTrace(path) => {
            let file = TraceFile::generate(&trace_config);
            std::fs::write(&path, file.to_json().pretty())
                .map_err(|e| format!("{path}: {e}"))?;
            let _ = writeln!(
                out,
                "wrote {path} ({} requests, seed {}, {} arrival, {} packets/thread)",
                file.requests.len(),
                file.seed,
                file.arrival.name(),
                file.packets
            );
            if let Some(lines_path) = lines_path {
                let wire = regbal_serve::materialize(&file.requests, file.packets);
                let mut text = String::new();
                for (i, req) in wire.iter().enumerate() {
                    let _ = writeln!(
                        text,
                        "{}",
                        regbal_serve::request_line(i as u64, req, false)
                    );
                }
                std::fs::write(&lines_path, text).map_err(|e| format!("{lines_path}: {e}"))?;
                let _ = writeln!(out, "wrote {lines_path} (ready-to-pipe request lines)");
            }
            Ok(())
        }
        Mode::Replay(path) => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            let trace = TraceFile::from_text(&text).map_err(|e| format!("{path}: {e}"))?;
            if server.faults.is_some() {
                // An armed fault plane turns replay into the chaos
                // harness: multi-session replay under injected faults,
                // baseline document identity, and a healing pass.
                let report = regbal_serve::chaos_replay(&trace, &server)?;
                let _ = writeln!(
                    out,
                    "chaos: {} request(s) all answered across {} session(s): \
                     {} injected disconnect(s), {} torn line(s) answered in-band, {} timeout(s)",
                    report.requests,
                    report.sessions,
                    report.disconnects,
                    report.partials,
                    report.timeouts
                );
                let _ = writeln!(out, "chaos: faults fired: {}", report.fault_summary);
                let _ = writeln!(
                    out,
                    "chaos: healing pass served the baseline documents ({} response(s))",
                    report.heal_responses.len()
                );
                if let Some(responses_path) = responses_path {
                    let mut text = String::new();
                    for line in &report.heal_responses {
                        text.push_str(line);
                        text.push('\n');
                    }
                    std::fs::write(&responses_path, text)
                        .map_err(|e| format!("{responses_path}: {e}"))?;
                    let _ = writeln!(out, "wrote {responses_path}");
                }
                if let Some(out_path) = out_path {
                    let doc = regbal_serve::chaos_json(&report);
                    std::fs::write(&out_path, doc.pretty())
                        .map_err(|e| format!("{out_path}: {e}"))?;
                    let _ = writeln!(out, "wrote {out_path}");
                }
                if verify {
                    let checked = verify_against_oneshot(&trace, &report.heal_responses)?;
                    let _ = writeln!(
                        out,
                        "verify: {checked} distinct request(s) byte-identical to one-shot \
                         `regbal alloc --json` after healing"
                    );
                }
                if sanitize {
                    let (checked, skipped) = regbal_serve::sanitize_check(&trace)?;
                    let _ = writeln!(
                        out,
                        "sanitize: {checked} allocation(s) replayed on the simulator with 0 violations ({skipped} infeasible skipped)"
                    );
                }
                check_cache_dir_cap(&server, out)?;
                return Ok(());
            }
            let config = ReplayConfig {
                serve: server,
                passes: passes.max(1),
                window,
                paced,
            };
            let metrics = regbal_serve::ServeMetrics::default();
            let reports = regbal_serve::replay_with_metrics(&trace, &config, &metrics)?;
            for (i, r) in reports.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "pass {i} ({}): {} requests in {} us, p50 {} us, p99 {} us, {:.0} req/s, {} hit(s), {} miss(es)",
                    if i == 0 { "cold" } else { "warm" },
                    trace.requests.len(),
                    r.wall_us,
                    r.p50_us,
                    r.p99_us,
                    r.rps,
                    r.hits,
                    r.misses
                );
            }
            if let Some(responses_path) = responses_path {
                let mut text = String::new();
                for r in &reports {
                    for line in &r.responses {
                        text.push_str(line);
                        text.push('\n');
                    }
                }
                std::fs::write(&responses_path, text)
                    .map_err(|e| format!("{responses_path}: {e}"))?;
                let _ = writeln!(out, "wrote {responses_path}");
            }
            if let Some(out_path) = out_path {
                let doc = Json::Obj(vec![
                    ("schema".into(), Json::str("regbal-serve-bench/2")),
                    ("trace".into(), Json::str(path.clone())),
                    ("requests".into(), Json::uint(trace.requests.len() as u64)),
                    ("workers".into(), Json::uint(config.serve.workers as u64)),
                    ("window".into(), Json::uint(window as u64)),
                    (
                        "passes".into(),
                        Json::Arr(reports.iter().map(regbal_serve::pass_json).collect()),
                    ),
                    ("metrics".into(), metrics.snapshot().to_json()),
                ]);
                std::fs::write(&out_path, doc.pretty()).map_err(|e| format!("{out_path}: {e}"))?;
                let _ = writeln!(out, "wrote {out_path}");
            }
            if metrics_summary {
                let _ = write!(out, "{}", metrics.snapshot().summary(&metrics.connections()));
            }
            if verify {
                let checked = verify_against_oneshot(&trace, &reports[0].responses)?;
                let _ = writeln!(
                    out,
                    "verify: {checked} distinct request(s) byte-identical to one-shot `regbal alloc --json`"
                );
            }
            if sanitize {
                let (checked, skipped) = regbal_serve::sanitize_check(&trace)?;
                let _ = writeln!(
                    out,
                    "sanitize: {checked} allocation(s) replayed on the simulator with 0 violations ({skipped} infeasible skipped)"
                );
            }
            check_cache_dir_cap(&config.serve, out)?;
            Ok(())
        }
        Mode::CheckConcurrent(path) => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            let trace = TraceFile::from_text(&text).map_err(|e| format!("{path}: {e}"))?;
            check_concurrent(&trace, &server, clients.max(1), metrics_summary, out)
        }
    }
}

/// The `regbal fuzz` subcommand: walks the deterministic stress-fuzz
/// case sequence ([`regbal::fuzz::FuzzCase::from_index`]) under a time
/// or case budget, checking every case against the full ladder
/// contract. Failing cases are minimized, reported, and appended to
/// `--archive` for permanent replay; any failure makes the run exit
/// non-zero. `--minimize <file>` skips the walk and re-minimizes an
/// existing archive in place instead.
fn fuzz(args: Vec<String>, out: &mut String) -> Result<(), String> {
    let mut seconds = 5u64;
    let mut start = 0u64;
    let mut cases: Option<u64> = None;
    let mut archive: Option<String> = None;
    let mut reminimize: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{what} needs a value"));
        match a.as_str() {
            "--seconds" => {
                seconds = value("--seconds")?
                    .parse()
                    .map_err(|e| format!("--seconds: {e}"))?;
            }
            "--start-seed" => {
                start = value("--start-seed")?
                    .parse()
                    .map_err(|e| format!("--start-seed: {e}"))?;
            }
            "--cases" => {
                cases = Some(
                    value("--cases")?
                        .parse()
                        .map_err(|e| format!("--cases: {e}"))?,
                );
            }
            "--archive" => archive = Some(value("--archive")?),
            "--minimize" => reminimize = Some(value("--minimize")?),
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    if let Some(path) = reminimize {
        return minimize_archive(&path, out);
    }
    let started = std::time::Instant::now();
    let budget = std::time::Duration::from_secs(seconds);
    let mut checked = 0u64;
    let mut failures: Vec<(String, String, String)> = Vec::new();
    let mut index = start;
    loop {
        let done = match cases {
            Some(n) => checked >= n,
            None => checked > 0 && started.elapsed() >= budget,
        };
        if done {
            break;
        }
        let case = regbal::fuzz::FuzzCase::from_index(index);
        if let Err(e) = case.check() {
            let _ = writeln!(out, "FAIL {}: {e}", case.line());
            let min = case.minimize();
            if min.line() != case.line() {
                let _ = writeln!(out, "  minimized to {}", min.line());
            }
            failures.push((case.line(), min.line(), e));
        }
        checked += 1;
        index += 1;
    }
    if let Some(path) = &archive {
        if !failures.is_empty() {
            let mut text = String::new();
            for (found, line, error) in &failures {
                let _ = writeln!(text, "# {error}");
                if found != line {
                    let _ = writeln!(text, "# found as {found}");
                }
                let _ = writeln!(text, "{line}");
            }
            use std::io::Write as IoWrite;
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("{path}: {e}"))?;
            file.write_all(text.as_bytes())
                .map_err(|e| format!("{path}: {e}"))?;
            let _ = writeln!(out, "archived {} failing case(s) to {path}", failures.len());
        }
    }
    let _ = writeln!(
        out,
        "fuzz: {checked} case(s) from index {start} in {:.1}s, {} failure(s)",
        started.elapsed().as_secs_f64(),
        failures.len()
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "fuzz: {} of {checked} case(s) violated the ladder contract",
            failures.len()
        ))
    }
}

/// `regbal fuzz --minimize <file>`: re-runs the deterministic minimizer
/// over every case line of an existing archive and rewrites the file in
/// place. Comment lines survive untouched; a case that now passes its
/// contract (or is already minimal) is kept verbatim, so re-minimizing
/// a healthy corpus is the identity.
fn minimize_archive(path: &str, out: &mut String) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut rewritten = String::new();
    let mut seen = 0usize;
    let mut shrunk = 0usize;
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            let _ = writeln!(rewritten, "{raw}");
            continue;
        }
        let case = regbal::fuzz::FuzzCase::parse(line).map_err(|e| format!("{path}: {line}: {e}"))?;
        let min = case.minimize();
        seen += 1;
        if min.line() != line {
            shrunk += 1;
            let _ = writeln!(out, "{line}  ->  {}", min.line());
        }
        let _ = writeln!(rewritten, "{}", min.line());
    }
    if rewritten != text {
        std::fs::write(path, rewritten).map_err(|e| format!("{path}: {e}"))?;
    }
    let _ = writeln!(out, "minimize: {seen} case(s) in {path}, {shrunk} shrunk");
    Ok(())
}

/// When a replay ran with both `--cache-dir` and `--cache-dir-cap`,
/// audits the directory after the fact: the GC must have held the
/// store's on-disk footprint at or under the cap. The bytes are
/// re-counted from the filesystem, not taken from the store's own
/// accounting.
fn check_cache_dir_cap(server: &ServeConfig, out: &mut String) -> Result<(), String> {
    let (Some(dir), cap) = (&server.cache_dir, server.cache_dir_cap) else {
        return Ok(());
    };
    if cap == 0 {
        return Ok(());
    }
    let mut bytes = 0u64;
    for tier in ["responses", "modules"] {
        let tier_dir = std::path::Path::new(dir).join(tier);
        let entries = match std::fs::read_dir(&tier_dir) {
            Ok(entries) => entries,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            if let Ok(meta) = entry.metadata() {
                if meta.is_file() {
                    bytes += meta.len();
                }
            }
        }
    }
    if bytes > cap {
        return Err(format!(
            "--cache-dir-cap: {dir} holds {bytes} byte(s), over the {cap}-byte cap — GC failed"
        ));
    }
    let _ = writeln!(out, "gc: {dir} holds {bytes} of {cap} byte(s) allowed");
    Ok(())
}

/// The `--check-concurrent` gate: partitions the trace's kernels
/// across `clients` disjoint TCP clients (distinct kernels have
/// distinct content hashes, so no client's cache keys overlap
/// another's), serves them all at once against one shared server, and
/// demands each client's transcript be byte-identical to serving its
/// script alone over a fresh single-connection server. With a
/// `--cache-dir` it then restarts the server over the populated store
/// and demands the first repeated request answer `"cached": true`.
fn check_concurrent(
    trace: &TraceFile,
    server: &ServeConfig,
    clients: usize,
    metrics_summary: bool,
    out: &mut String,
) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write as IoWrite};

    let wire = regbal_serve::materialize(&trace.requests, trace.packets);
    // Partition by kernel so each client's content hashes are disjoint
    // from every other client's.
    let mut kernels: Vec<&str> = Vec::new();
    for req in &wire {
        if !kernels.contains(&req.kernel.name()) {
            kernels.push(req.kernel.name());
        }
    }
    if kernels.len() < clients {
        return Err(format!(
            "check-concurrent: the trace has {} distinct kernel(s) but --clients {} \
             needs at least that many for disjoint partitions — generate a larger trace",
            kernels.len(),
            clients
        ));
    }
    let mut scripts: Vec<Vec<String>> = vec![Vec::new(); clients];
    for req in &wire {
        let k = kernels
            .iter()
            .position(|n| *n == req.kernel.name())
            .expect("kernel was just collected");
        let script = &mut scripts[k % clients];
        let id = script.len() as u64;
        script.push(regbal_serve::request_line(id, req, false));
    }

    // Sequential baselines: each script alone against a fresh
    // memory-only server (the shared run starts cold too, so the
    // `cached` flags line up).
    let solo_config = ServeConfig {
        cache_dir: None,
        ..server.clone()
    };
    let mut baselines: Vec<Vec<String>> = Vec::with_capacity(clients);
    for script in &scripts {
        let mut cache = solo_config
            .open_cache()
            .expect("a memory-only cache cannot fail to open");
        let input = script.join("\n").into_bytes();
        let mut output = Vec::new();
        regbal_serve::serve_lines(&input[..], &mut output, &solo_config, &mut cache)
            .map_err(|e| format!("check-concurrent baseline: {e}"))?;
        baselines.push(
            String::from_utf8_lossy(&output)
                .lines()
                .map(str::to_string)
                .collect(),
        );
    }

    // The concurrent run: all clients at once over one shared server.
    let listener = std::net::TcpListener::bind("127.0.0.1:0")
        .map_err(|e| format!("check-concurrent: bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("check-concurrent: local_addr: {e}"))?;
    let metrics = regbal_serve::ServeMetrics::default();
    let transcripts: Vec<Result<Vec<String>, String>> = std::thread::scope(|scope| {
        let server_thread = {
            let metrics = &metrics;
            scope.spawn(move || {
                let mut log = std::io::sink();
                regbal_serve::serve_listener(listener, server, &mut log, metrics)
            })
        };
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                scope.spawn(move || -> Result<Vec<String>, String> {
                    let mut stream = std::net::TcpStream::connect(addr)
                        .map_err(|e| format!("connect: {e}"))?;
                    for line in script {
                        writeln!(stream, "{line}").map_err(|e| format!("send: {e}"))?;
                    }
                    stream
                        .shutdown(std::net::Shutdown::Write)
                        .map_err(|e| format!("half-close: {e}"))?;
                    let mut reader = BufReader::new(stream);
                    let mut responses = Vec::with_capacity(script.len());
                    for i in 0..script.len() {
                        let mut line = String::new();
                        match reader.read_line(&mut line) {
                            Ok(0) => return Err(format!("server closed before response {i}")),
                            Ok(_) => responses.push(line.trim_end().to_string()),
                            Err(e) => return Err(format!("response {i}: {e}")),
                        }
                    }
                    Ok(responses)
                })
            })
            .collect();
        let transcripts: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect();
        // All clients are done — shut the server down from a control
        // connection and let it drain.
        let shutdown = (|| -> Result<(), String> {
            let mut control = std::net::TcpStream::connect(addr)
                .map_err(|e| format!("shutdown connect: {e}"))?;
            writeln!(control, r#"{{"id": "bye", "kind": "shutdown"}}"#)
                .map_err(|e| format!("shutdown send: {e}"))?;
            let mut ack = String::new();
            BufReader::new(control)
                .read_line(&mut ack)
                .map_err(|e| format!("shutdown ack: {e}"))?;
            let ack = regbal_eval::json::parse(ack.trim_end())
                .map_err(|e| format!("shutdown ack was not JSON: {e}"))?;
            if ack.get("ok").and_then(Json::as_bool) != Some(true) {
                return Err(format!("unexpected shutdown ack: {}", ack.compact()));
            }
            Ok(())
        })();
        let served = server_thread
            .join()
            .expect("server thread panicked")
            .map_err(|e| format!("check-concurrent server: {e}"));
        if let Err(e) = shutdown.and(served) {
            return vec![Err(e)];
        }
        transcripts
    });

    for (i, (transcript, baseline)) in transcripts.iter().zip(&baselines).enumerate() {
        let transcript = transcript
            .as_ref()
            .map_err(|e| format!("check-concurrent client {i}: {e}"))?;
        if transcript != baseline {
            let at = transcript
                .iter()
                .zip(baseline)
                .position(|(a, b)| a != b)
                .unwrap_or(baseline.len().min(transcript.len()));
            return Err(format!(
                "check-concurrent: client {i}'s transcript diverged from sequential \
                 service at response {at}:\nconcurrent: {:?}\nsequential: {:?}",
                transcript.get(at),
                baseline.get(at)
            ));
        }
    }
    let _ = writeln!(
        out,
        "check-concurrent: {} client(s), {} request(s): every transcript byte-identical to sequential service",
        clients,
        wire.len()
    );

    // Restart-warm: a brand-new server over the populated store must
    // answer the very first repeated request from cache.
    if server.cache_dir.is_some() {
        let mut cache = server
            .open_cache()
            .map_err(|e| format!("check-concurrent restart: {e}"))?;
        let first = scripts
            .iter()
            .find_map(|s| s.first())
            .ok_or("check-concurrent: the trace produced no requests")?;
        let input = format!("{first}\n").into_bytes();
        let mut output = Vec::new();
        regbal_serve::serve_lines(&input[..], &mut output, server, &mut cache)
            .map_err(|e| format!("check-concurrent restart: {e}"))?;
        let line = String::from_utf8_lossy(&output);
        let doc = regbal_eval::json::parse(line.trim_end())
            .map_err(|e| format!("check-concurrent restart: bad response: {e}"))?;
        if doc.get("cached").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "check-concurrent: the restarted server missed on its first repeated \
                 request — the on-disk cache did not survive: {}",
                doc.compact()
            ));
        }
        let _ = writeln!(
            out,
            "check-concurrent: restarted server answered warm from the cache dir"
        );
    }
    if metrics_summary {
        let _ = write!(out, "{}", metrics.snapshot().summary(&metrics.connections()));
    }
    Ok(())
}

/// Replays each distinct cold-pass response through the one-shot
/// `regbal alloc --json` path and demands byte identity: served
/// documents must match the CLI's stdout, served errors the CLI's
/// error message.
fn verify_against_oneshot(trace: &TraceFile, responses: &[String]) -> Result<usize, String> {
    let wire = regbal_serve::materialize(&trace.requests, trace.packets);
    if wire.len() != responses.len() {
        return Err(format!(
            "verify: {} responses for {} requests",
            responses.len(),
            wire.len()
        ));
    }
    let mut seen = std::collections::HashSet::new();
    let mut checked = 0usize;
    for (req, line) in wire.iter().zip(responses) {
        if !seen.insert((req.hash, req.nthd, req.nreg, req.strategy)) {
            continue;
        }
        let doc = regbal_eval::json::parse(line)
            .map_err(|e| format!("verify: response is not JSON: {e}"))?;
        let served = match (doc.get("alloc"), doc.get("error")) {
            (Some(alloc), _) => Ok(alloc.pretty()),
            (None, Some(error)) => Err(error
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string()),
            (None, None) => return Err(format!("verify: malformed response: {line}")),
        };
        let file = std::env::temp_dir().join(format!(
            "regbal-verify-{}-{:016x}.rba",
            std::process::id(),
            req.hash
        ));
        let file = file.to_string_lossy().into_owned();
        std::fs::write(&file, &req.text).map_err(|e| format!("{file}: {e}"))?;
        let mut args: Vec<String> = vec!["alloc".into(), "--json".into()];
        args.extend(req.strategy.cli_flags().iter().map(|s| s.to_string()));
        args.push("--nreg".into());
        args.push(req.nreg.to_string());
        args.extend((0..req.nthd).map(|_| file.clone()));
        let mut one_shot = String::new();
        let direct = match run_cli(&args, &mut one_shot) {
            Ok(()) => Ok(one_shot),
            Err(message) => Err(message),
        };
        let _ = std::fs::remove_file(&file);
        let matches = match (&served, &direct) {
            // The CLI appends one newline to the pretty document.
            (Ok(s), Ok(d)) => format!("{s}\n") == *d,
            (Err(s), Err(d)) => s == d,
            _ => false,
        };
        if !matches {
            return Err(format!(
                "verify: served response diverged from one-shot for {} nthd {} nreg {} {}:\nserved: {:?}\none-shot: {:?}",
                req.kernel.name(),
                req.nthd,
                req.nreg,
                req.strategy.name(),
                served,
                direct
            ));
        }
        checked += 1;
    }
    Ok(checked)
}

fn format_stats(stats: &EngineStats, config: EngineConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "engine: {} iteration(s), {} candidate(s) evaluated, {} from cache{}",
        stats.iterations,
        stats.evaluated,
        stats.cached,
        if config.memoize { "" } else { " (naive engine)" }
    );
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let _ = writeln!(
        s,
        "engine: init {:.1}us, search {:.1}us, verify {:.1}us, total {:.1}us",
        us(stats.init),
        us(stats.search),
        us(stats.verify),
        us(stats.total)
    );
    s
}

fn run(args: Vec<String>, out: &mut String) -> Result<(), String> {
    let mut cycles = 1_000_000u64;
    let mut iterations: Option<u64> = None;
    let mut trace: Option<usize> = None;
    let mut sanitize = false;
    let mut files = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sanitize" => sanitize = true,
            "--trace" => {
                trace = Some(
                    it.next()
                        .ok_or("--trace needs a value")?
                        .parse()
                        .map_err(|e| format!("--trace: {e}"))?,
                );
            }
            "--cycles" => {
                cycles = it
                    .next()
                    .ok_or("--cycles needs a value")?
                    .parse()
                    .map_err(|e| format!("--cycles: {e}"))?;
            }
            "--iterations" => {
                iterations = Some(
                    it.next()
                        .ok_or("--iterations needs a value")?
                        .parse()
                        .map_err(|e| format!("--iterations: {e}"))?,
                );
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    let funcs = load(&files)?;
    let mut sim = Simulator::new(SimConfig::default());
    if let Some(n) = trace {
        sim.enable_trace(n);
    }
    if sanitize {
        // No bank layout is known for hand-written input: bank checks
        // are skipped, clobber and uninitialized-read checks run.
        sim.enable_sanitizer(SanitizerConfig::default());
    }
    for f in &funcs {
        sim.add_thread(f.clone());
    }
    let stop = match iterations {
        Some(n) => StopWhen::Iterations(n),
        None => StopWhen::Cycles(cycles),
    };
    let report = sim.run(stop);
    let _ = writeln!(out, "cycles: {} (idle {})", report.cycles, report.idle_cycles);
    for (i, t) in report.threads.iter().enumerate() {
        let _ = writeln!(
            out,
            "thread {i} `{}`: {} instructions, {} iterations, {} switches, {:.0}% busy{}{}",
            funcs[i].name,
            t.instructions,
            t.iterations,
            t.ctx_switches,
            100.0 * t.busy_cycles as f64 / report.cycles.max(1) as f64,
            if t.halted { ", halted" } else { "" },
            if t.cycles_per_iteration.is_finite() {
                format!(", {:.0} cycles/iteration", t.cycles_per_iteration)
            } else {
                String::new()
            }
        );
    }
    if !report.violations.is_empty() {
        let _ = writeln!(out, "REGISTER-SAFETY VIOLATIONS: {}", report.violations.len());
    }
    let sanitizer_violations = report.sanitizer_violations().count();
    if !report.sanitizer.is_empty() {
        let _ = writeln!(
            out,
            "sanitizer: {} violation(s), {} warning(s)",
            sanitizer_violations,
            report.sanitizer.len() - sanitizer_violations
        );
        for r in &report.sanitizer {
            let _ = writeln!(out, "  {r}");
        }
        if report.sanitizer_dropped > 0 {
            let _ = writeln!(
                out,
                "  ({} further report(s) dropped)",
                report.sanitizer_dropped
            );
        }
    }
    for event in sim.trace() {
        let _ = writeln!(out, "{event:?}");
    }
    if report.trace_dropped > 0 {
        let _ = writeln!(
            out,
            "({} trace event(s) dropped; raise --trace to keep more)",
            report.trace_dropped
        );
    }
    if let Some(err) = &report.error {
        return Err(err.to_string());
    }
    if sanitizer_violations > 0 {
        return Err(format!(
            "sanitizer reported {sanitizer_violations} violation(s)"
        ));
    }
    Ok(())
}

fn dot(args: Vec<String>, out: &mut String) -> Result<(), String> {
    let mut interference = false;
    let mut files = Vec::new();
    for a in args {
        match a.as_str() {
            "--ig" => interference = true,
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown option `{other}`
{USAGE}")),
        }
    }
    for func in load(&files)? {
        if interference {
            let info = ProgramInfo::compute(&func);
            let gig = regbal_igraph::build_gig(&info);
            let labels: Vec<String> = (0..info.num_vregs())
                .map(|v| {
                    if info.boundary.contains(v) {
                        format!("v{v}*")
                    } else {
                        format!("v{v}")
                    }
                })
                .collect();
            let est = estimate_bounds(&info);
            out.push_str(&gig.to_dot(&func.name, &labels, Some(&est.coloring)));
        } else {
            out.push_str(&func.to_dot());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!("regbal-cli-{}-{name}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const PROG: &str = "func t {\nbb0:\n v0 = mov 64\n v1 = load sram[v0+0]\n v1 = add v1, 1\n store sram[v0+0], v1\n iter_end\n halt\n}";

    #[test]
    fn help_prints_usage() {
        let mut out = String::new();
        run_cli(&[], &mut out).unwrap();
        assert!(out.contains("USAGE"));
        let mut out = String::new();
        run_cli(&["help".into()], &mut out).unwrap();
        assert!(out.contains("alloc"));
    }

    #[test]
    fn unknown_command_errors() {
        let mut out = String::new();
        let err = run_cli(&["frobnicate".into()], &mut out).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn analyze_reports_bounds() {
        let path = write_temp("analyze.rba", PROG);
        let mut out = String::new();
        run_cli(&["analyze".into(), path], &mut out).unwrap();
        assert!(out.contains("function `t`"), "{out}");
        assert!(out.contains("MinPR="), "{out}");
    }

    #[test]
    fn alloc_prints_physical_code() {
        let path = write_temp("alloc.rba", PROG);
        let mut out = String::new();
        run_cli(
            &["alloc".into(), "--nreg".into(), "8".into(), path],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("PR="), "{out}");
        assert!(out.contains("r0"), "{out}");
        assert!(!out.contains("v0"), "no virtual registers left: {out}");
    }

    #[test]
    fn alloc_quiet_suppresses_code() {
        let path = write_temp("quiet.rba", PROG);
        let mut out = String::new();
        run_cli(
            &["alloc".into(), "--quiet".into(), path],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("demand"), "{out}");
        assert!(!out.contains("bb0:"), "{out}");
    }

    #[test]
    fn alloc_stats_prints_engine_counters() {
        let path = write_temp("stats.rba", PROG);
        let mut out = String::new();
        run_cli(
            &["alloc".into(), "--stats".into(), "--quiet".into(), path],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("candidate(s) evaluated"), "{out}");
        assert!(out.contains("total"), "{out}");
        assert!(!out.contains("naive engine"), "{out}");
    }

    #[test]
    fn alloc_naive_engine_matches_default() {
        let path = write_temp("naive.rba", PROG);
        let mut fast = String::new();
        run_cli(
            &["alloc".into(), "--nreg".into(), "8".into(), path.clone()],
            &mut fast,
        )
        .unwrap();
        let mut naive = String::new();
        run_cli(
            &[
                "alloc".into(),
                "--nreg".into(),
                "8".into(),
                "--naive".into(),
                path.clone(),
            ],
            &mut naive,
        )
        .unwrap();
        assert_eq!(fast, naive, "engines must agree on the allocation");
        let mut out = String::new();
        run_cli(
            &["alloc".into(), "--naive".into(), "--stats".into(), "--quiet".into(), path],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("naive engine"), "{out}");
    }

    #[test]
    fn alloc_min_reports_moves() {
        let path = write_temp("min.rba", PROG);
        let mut out = String::new();
        run_cli(&["alloc".into(), "--min".into(), path], &mut out).unwrap();
        assert!(out.contains("move(s)"), "{out}");
    }

    #[test]
    fn alloc_infeasible_is_an_error_and_spill_rescues_it() {
        // Two hungry threads cannot share 4 registers...
        let hungry = "func h {\nbb0:\n v0 = mov 1\n v1 = mov 2\n v2 = mov 3\n ctx\n v3 = add v0, v1\n v3 = add v3, v2\n store scratch[v3+0], v3\n halt\n}";
        let p0 = write_temp("h0.rba", hungry);
        let p1 = write_temp("h1.rba", hungry);
        let mut out = String::new();
        let err = run_cli(
            &["alloc".into(), "--nreg".into(), "4".into(), p0.clone(), p1.clone()],
            &mut out,
        )
        .unwrap_err();
        assert!(err.contains("cannot fit"), "{err}");
        // ...unless spilling is allowed.
        let mut out = String::new();
        run_cli(
            &[
                "alloc".into(),
                "--nreg".into(),
                "4".into(),
                "--spill".into(),
                "--quiet".into(),
                p0,
                p1,
            ],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("spills="), "{out}");
    }

    #[test]
    fn alloc_json_emits_the_shared_schema() {
        let path = write_temp("json.rba", PROG);
        let mut out = String::new();
        run_cli(
            &["alloc".into(), "--json".into(), "--nreg".into(), "8".into(), path.clone()],
            &mut out,
        )
        .unwrap();
        let doc = regbal_eval::json::parse(&out).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(regbal_eval::Json::as_str),
            Some("regbal-alloc/1")
        );
        assert_eq!(
            doc.get("strategy").and_then(regbal_eval::Json::as_str),
            Some("balanced")
        );
        assert_eq!(doc.get("nreg").and_then(|n| n.as_u64()), Some(8));
        let threads = doc.get("threads").and_then(regbal_eval::Json::as_arr).unwrap();
        assert_eq!(threads.len(), 1);
        for key in ["name", "pr", "sr", "moves", "spills"] {
            assert!(threads[0].get(key).is_some(), "thread object has `{key}`");
        }
        assert!(
            doc.get("engine").is_none(),
            "the default document is deterministic — engine timings are opt-in"
        );
        assert!(!out.contains("bb0:"), "no code with --json: {out}");

        // --stats opts the wall-clock engine member back in.
        let mut out = String::new();
        run_cli(
            &[
                "alloc".into(),
                "--json".into(),
                "--stats".into(),
                "--nreg".into(),
                "8".into(),
                path.clone(),
            ],
            &mut out,
        )
        .unwrap();
        let doc = regbal_eval::json::parse(&out).unwrap();
        let engine = doc.get("engine").expect("--stats adds engine");
        assert!(engine.get("total_us").is_some());

        // The spill variant uses the same thread schema, no engine.
        let mut out = String::new();
        run_cli(
            &[
                "alloc".into(),
                "--json".into(),
                "--spill".into(),
                "--nreg".into(),
                "8".into(),
                path,
            ],
            &mut out,
        )
        .unwrap();
        let doc = regbal_eval::json::parse(&out).unwrap();
        assert_eq!(
            doc.get("strategy").and_then(regbal_eval::Json::as_str),
            Some("balanced-spill")
        );
        assert!(doc.get("engine").is_none());
    }

    #[test]
    fn alloc_ladder_succeeds_where_plain_alloc_fails() {
        let hungry = "func h {\nbb0:\n v0 = mov 1\n v1 = mov 2\n v2 = mov 3\n ctx\n v3 = add v0, v1\n v3 = add v3, v2\n store scratch[v3+0], v3\n halt\n}";
        let p0 = write_temp("lad0.rba", hungry);
        let p1 = write_temp("lad1.rba", hungry);
        let args = |extra: &[&str]| -> Vec<String> {
            ["alloc", "--nreg", "4", "--ladder"]
                .iter()
                .copied()
                .chain(extra.iter().copied())
                .map(String::from)
                .chain([p0.clone(), p1.clone()])
                .collect()
        };
        let mut out = String::new();
        run_cli(&args(&["--quiet"]), &mut out).unwrap();
        assert!(
            out.contains("degraded: balanced -> balanced-scratch"),
            "{out}"
        );
        assert!(out.contains("rung `"), "{out}");
        assert!(!out.contains("rung `balanced`"), "a fallback rung settled: {out}");

        let mut out = String::new();
        run_cli(&args(&["--json"]), &mut out).unwrap();
        let doc = regbal_eval::json::parse(&out).expect("valid JSON");
        assert_eq!(
            doc.get("strategy").and_then(regbal_eval::Json::as_str),
            Some("ladder")
        );
        let ladder = doc.get("ladder").expect("ladder member");
        assert!(ladder.get("degraded").and_then(|v| v.as_u64()).unwrap() >= 1);
        let degradations = ladder
            .get("degradations")
            .and_then(regbal_eval::Json::as_arr)
            .unwrap();
        assert!(!degradations.is_empty());
        for d in degradations {
            for key in ["from", "to", "code", "reason"] {
                assert!(d.get(key).is_some(), "degradation object has `{key}`");
            }
        }
    }

    #[test]
    fn alloc_ladder_is_quiet_about_a_clean_fit() {
        let path = write_temp("lad-clean.rba", PROG);
        let mut out = String::new();
        run_cli(
            &["alloc".into(), "--ladder".into(), "--quiet".into(), path],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("rung `balanced`, 0 degradation(s)"), "{out}");
        assert!(!out.contains("degraded:"), "{out}");
    }

    #[test]
    fn alloc_ladder_rejects_conflicting_flags() {
        let err = run_cli(
            &["alloc".into(), "--ladder".into(), "--spill".into()],
            &mut String::new(),
        )
        .unwrap_err();
        assert!(err.contains("--ladder"), "{err}");
        let err = run_cli(
            &["alloc".into(), "--ladder".into(), "--min".into()],
            &mut String::new(),
        )
        .unwrap_err();
        assert!(err.contains("--ladder"), "{err}");
    }

    #[test]
    fn alloc_json_rejects_min() {
        let err = run_cli(
            &["alloc".into(), "--json".into(), "--min".into()],
            &mut String::new(),
        )
        .unwrap_err();
        assert!(err.contains("--json"), "{err}");
    }

    #[test]
    fn run_simulates_and_reports() {
        let path = write_temp("run.rba", PROG);
        let mut out = String::new();
        run_cli(
            &["run".into(), "--cycles".into(), "10000".into(), path],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("cycles:"), "{out}");
        assert!(out.contains("halted"), "{out}");
    }

    #[test]
    fn run_sanitize_flags_a_cross_thread_clobber() {
        // Thread `a` parks 41 in r0 across the `ctx`; thread `b`
        // overwrites r0 while `a` is switched out.
        let a = write_temp(
            "san-a.rba",
            "func a {\nbb0:\n r0 = mov 41\n ctx\n r1 = add r0, 1\n store scratch[r1+0], r1\n halt\n}",
        );
        let b = write_temp(
            "san-b.rba",
            "func b {\nbb0:\n r0 = mov 7\n store scratch[r0+8], r0\n halt\n}",
        );
        let mut out = String::new();
        let err = run_cli(
            &["run".into(), "--sanitize".into(), a.clone(), b.clone()],
            &mut out,
        )
        .unwrap_err();
        assert!(err.contains("violation"), "{err}");
        assert!(out.contains("clobber: r0"), "{out}");

        // Without --sanitize the same program runs silently.
        let mut out = String::new();
        run_cli(&["run".into(), a, b], &mut out).unwrap();
        assert!(!out.contains("sanitizer"), "{out}");
    }

    #[test]
    fn run_sanitize_warns_on_uninitialized_reads_without_failing() {
        let path = write_temp(
            "san-uninit.rba",
            "func u {\nbb0:\n r1 = add r5, 1\n store scratch[r1+0], r1\n halt\n}",
        );
        let mut out = String::new();
        run_cli(&["run".into(), "--sanitize".into(), path], &mut out).unwrap();
        assert!(out.contains("1 warning(s)"), "{out}");
        assert!(out.contains("never-written"), "{out}");
    }

    #[test]
    fn fuzz_runs_a_fixed_case_budget_deterministically() {
        let mut out = String::new();
        run_cli(
            &[
                "fuzz".into(),
                "--cases".into(),
                "3".into(),
                "--start-seed".into(),
                "6".into(),
            ],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("3 case(s) from index 6"), "{out}");
        assert!(out.contains("0 failure(s)"), "{out}");
    }

    #[test]
    fn fuzz_minimize_rewrites_an_archive_and_keeps_comments() {
        // A healthy corpus (every case passes its contract) re-minimizes
        // to itself: the minimizer never touches a passing case.
        let corpus = "# pinned starter case\nseed=16294208416658607535 class=csb-dense threads=2 nreg=8\n";
        let path = write_temp("fuzz-min.txt", corpus);
        let mut out = String::new();
        run_cli(&["fuzz".into(), "--minimize".into(), path.clone()], &mut out).unwrap();
        assert!(out.contains("1 case(s)"), "{out}");
        assert!(out.contains("0 shrunk"), "{out}");
        let after = std::fs::read_to_string(&path).unwrap();
        assert_eq!(after, corpus, "identity re-minimization must not rewrite");
    }

    #[test]
    fn fuzz_minimize_rejects_a_malformed_archive_line() {
        let path = write_temp("fuzz-min-bad.txt", "seed=1 class=warp threads=2 nreg=8\n");
        let err = run_cli(
            &["fuzz".into(), "--minimize".into(), path],
            &mut String::new(),
        )
        .unwrap_err();
        assert!(err.contains("class"), "{err}");
    }

    #[test]
    fn missing_file_errors_cleanly() {
        let mut out = String::new();
        let err = run_cli(
            &["analyze".into(), "/nonexistent/x.rba".into()],
            &mut out,
        )
        .unwrap_err();
        assert!(err.contains("/nonexistent/x.rba"));
    }

    #[test]
    fn bad_option_value_errors() {
        let err = run_cli(
            &["alloc".into(), "--nreg".into(), "lots".into()],
            &mut String::new(),
        )
        .unwrap_err();
        assert!(err.contains("--nreg"));
    }
}

#[cfg(test)]
mod serve_tests {
    use super::*;

    fn temp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("regbal-cli-serve-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn serve_requires_exactly_one_mode() {
        let err = run_cli(&["serve".into()], &mut String::new()).unwrap_err();
        assert!(err.contains("--stdio"), "{err}");
        let err = run_cli(
            &["serve".into(), "--stdio".into(), "--replay".into(), "x".into()],
            &mut String::new(),
        )
        .unwrap_err();
        assert!(err.contains("exactly one"), "{err}");
    }

    #[test]
    fn gen_trace_writes_a_round_tripping_file_and_request_lines() {
        let trace_path = temp("trace.json");
        let lines_path = temp("lines.txt");
        let mut out = String::new();
        run_cli(
            &[
                "serve".into(),
                "--gen-trace".into(),
                trace_path.clone(),
                "--requests".into(),
                "10".into(),
                "--seed".into(),
                "7".into(),
                "--arrival".into(),
                "bursty".into(),
                "--lines".into(),
                lines_path.clone(),
            ],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("10 requests"), "{out}");
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let trace = TraceFile::from_text(&text).unwrap();
        assert_eq!(trace.requests.len(), 10);
        assert_eq!(trace.seed, 7);
        let lines = std::fs::read_to_string(&lines_path).unwrap();
        assert_eq!(lines.lines().count(), 10);
        for line in lines.lines() {
            match regbal_serve::parse_request(line) {
                regbal_serve::Request::Alloc(Ok(_)) => {}
                other => panic!("generated line did not parse: {other:?}"),
            }
        }
    }

    #[test]
    fn replay_reports_passes_verifies_and_writes_artifacts() {
        let trace_path = temp("replay-trace.json");
        run_cli(
            &[
                "serve".into(),
                "--gen-trace".into(),
                trace_path.clone(),
                "--requests".into(),
                "6".into(),
            ],
            &mut String::new(),
        )
        .unwrap();
        let responses_path = temp("responses.txt");
        let bench_path = temp("bench.json");
        let mut out = String::new();
        run_cli(
            &[
                "serve".into(),
                "--replay".into(),
                trace_path,
                "--passes".into(),
                "2".into(),
                "--workers".into(),
                "2".into(),
                "--verify".into(),
                "--responses".into(),
                responses_path.clone(),
                "--out".into(),
                bench_path.clone(),
            ],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("pass 0 (cold)"), "{out}");
        assert!(out.contains("pass 1 (warm)"), "{out}");
        assert!(out.contains("0 miss(es)"), "warm pass all hits: {out}");
        assert!(out.contains("byte-identical to one-shot"), "{out}");
        let responses = std::fs::read_to_string(&responses_path).unwrap();
        assert_eq!(responses.lines().count(), 12, "6 requests x 2 passes");
        let bench = regbal_eval::json::parse(&std::fs::read_to_string(&bench_path).unwrap()).unwrap();
        assert_eq!(
            bench.get("schema").and_then(Json::as_str),
            Some("regbal-serve-bench/2")
        );
        assert_eq!(
            bench.get("passes").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        let metrics = bench.get("metrics").expect("the /2 report carries metrics");
        assert!(metrics.get("queue_depth_high_water").and_then(Json::as_u64).is_some());
        assert!(metrics.get("pool_tasks").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn replay_with_faults_runs_the_chaos_harness_and_audits_the_cap() {
        let dir = std::env::temp_dir().join(format!("regbal-cli-chaos-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.json");
        let cache_dir = dir.join("cache");
        let chaos_path = dir.join("chaos.json");
        run_cli(
            &[
                "serve".into(),
                "--gen-trace".into(),
                trace_path.to_string_lossy().into_owned(),
                "--requests".into(),
                "8".into(),
            ],
            &mut String::new(),
        )
        .unwrap();
        let mut out = String::new();
        run_cli(
            &[
                "serve".into(),
                "--replay".into(),
                trace_path.to_string_lossy().into_owned(),
                "--faults".into(),
                "seed=5,write_fail=250,read_corrupt=250,disconnect=200".into(),
                "--cache-dir".into(),
                cache_dir.to_string_lossy().into_owned(),
                "--cache-dir-cap".into(),
                "1000000".into(),
                "--verify".into(),
                "--out".into(),
                chaos_path.to_string_lossy().into_owned(),
            ],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("all answered"), "{out}");
        assert!(out.contains("healing pass served the baseline"), "{out}");
        assert!(out.contains("byte-identical to one-shot"), "{out}");
        assert!(out.contains("gc:"), "the cap audit must report: {out}");
        let doc =
            regbal_eval::json::parse(&std::fs::read_to_string(&chaos_path).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("regbal-serve-chaos/1")
        );
        assert_eq!(doc.get("answered").and_then(Json::as_u64), Some(8));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn check_concurrent_passes_and_restarts_warm() {
        let dir = std::env::temp_dir().join(format!("regbal-cli-chk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let trace_path = dir.join("trace.json");
        let cache_dir = dir.join("cache");
        std::fs::create_dir_all(&dir).unwrap();
        let mut out = String::new();
        run_cli(
            &[
                "serve".into(),
                "--gen-trace".into(),
                trace_path.to_string_lossy().into_owned(),
                "--requests".into(),
                "18".into(),
                "--seed".into(),
                "7".into(),
            ],
            &mut out,
        )
        .unwrap();
        let mut out = String::new();
        run_cli(
            &[
                "serve".into(),
                "--check-concurrent".into(),
                trace_path.to_string_lossy().into_owned(),
                "--clients".into(),
                "3".into(),
                "--workers".into(),
                "2".into(),
                "--cache-dir".into(),
                cache_dir.to_string_lossy().into_owned(),
                "--metrics".into(),
            ],
            &mut out,
        )
        .unwrap();
        assert!(
            out.contains("byte-identical to sequential service"),
            "{out}"
        );
        assert!(out.contains("restarted server answered warm"), "{out}");
        assert!(out.contains("queue high-water"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod subroutine_tests {
    use super::*;

    #[test]
    fn subroutines_are_inlined_and_roots_become_threads() {
        let src = "
func rx {
bb0:
    v0 = mov 64
    call checksum
    store scratch[v0+0], v1
    halt
}
func tx {
bb0:
    v0 = mov 128
    call checksum
    store scratch[v0+0], v1
    halt
}
func checksum {
bb0:
    v1 = load sram[v0+0]
    v1 = add v1, 7
    halt
}";
        let path = std::env::temp_dir().join(format!("regbal-cli-sub-{}.rba", std::process::id()));
        std::fs::write(&path, src).unwrap();
        let mut out = String::new();
        run_cli(
            &["analyze".into(), path.to_string_lossy().into_owned()],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("function `rx`"), "{out}");
        assert!(out.contains("function `tx`"), "{out}");
        assert!(!out.contains("function `checksum`"), "subroutine inlined: {out}");
    }
}

#[cfg(test)]
mod dot_and_trace_tests {
    use super::*;

    const PROG2: &str = "func t {\nbb0:\n v0 = mov 64\n v1 = load sram[v0+0]\n ctx\n store sram[v0+0], v1\n iter_end\n halt\n}";

    fn temp(name: &str) -> String {
        let path = std::env::temp_dir().join(format!("regbal-cli2-{}-{name}", std::process::id()));
        std::fs::write(&path, PROG2).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn dot_cfg_output() {
        let path = temp("cfg.rba");
        let mut out = String::new();
        run_cli(&["dot".into(), path], &mut out).unwrap();
        assert!(out.starts_with("digraph"), "{out}");
        assert!(out.contains("bb0"), "{out}");
    }

    #[test]
    fn dot_interference_output() {
        let path = temp("ig.rba");
        let mut out = String::new();
        run_cli(&["dot".into(), "--ig".into(), path], &mut out).unwrap();
        assert!(out.starts_with("graph"), "{out}");
        assert!(out.contains("v0*"), "boundary marker: {out}");
    }

    #[test]
    fn run_trace_prints_events() {
        let path = temp("trace.rba");
        let mut out = String::new();
        run_cli(
            &["run".into(), "--trace".into(), "16".into(), path],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("Switch"), "{out}");
        assert!(out.contains("MemIssue"), "{out}");
    }

    #[test]
    fn run_reports_dropped_trace_events() {
        let path = temp("drop.rba");
        let mut out = String::new();
        run_cli(
            &["run".into(), "--trace".into(), "1".into(), path],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("dropped"), "{out}");
    }
}

#[cfg(test)]
mod eval_tests {
    use super::*;

    fn temp_report(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("regbal-cli-eval-{}-{name}.json", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn eval_smoke_writes_a_validating_report() {
        let path = temp_report("smoke");
        let mut out = String::new();
        run_cli(
            &[
                "eval".into(),
                "--smoke".into(),
                "--packets".into(),
                "2".into(),
                "--out".into(),
                path.clone(),
            ],
            &mut out,
        )
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        assert!(out.contains("fixed-partition"), "{out}");

        let mut out = String::new();
        run_cli(&["eval".into(), "--validate".into(), path], &mut out).unwrap();
        assert!(out.contains("OK"), "{out}");
    }

    #[test]
    fn eval_sanitize_smoke_is_clean_and_round_trips() {
        let path = temp_report("sanitize");
        let mut out = String::new();
        run_cli(
            &[
                "eval".into(),
                "--smoke".into(),
                "--sanitize".into(),
                "--packets".into(),
                "2".into(),
                "--nreg".into(),
                "48".into(),
                "--out".into(),
                path.clone(),
            ],
            &mut out,
        )
        .unwrap();
        assert!(
            out.contains("sanitizer: 0 violation(s), 0 warning(s)"),
            "{out}"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"sanitizer_violations\""), "{text}");

        let mut out = String::new();
        run_cli(&["eval".into(), "--validate".into(), path], &mut out).unwrap();
        assert!(out.contains("OK"), "{out}");
    }

    #[test]
    fn eval_validate_rejects_garbage() {
        let path = temp_report("garbage");
        std::fs::write(&path, "{\"schema\": \"something-else\"}").unwrap();
        let err = run_cli(
            &["eval".into(), "--validate".into(), path],
            &mut String::new(),
        )
        .unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn eval_rejects_bad_nreg_list() {
        let err = run_cli(
            &["eval".into(), "--nreg".into(), "48,many".into()],
            &mut String::new(),
        )
        .unwrap_err();
        assert!(err.contains("--nreg"), "{err}");
    }
}
