//! The `regbal` command-line binary; all logic lives in `regbal-cli`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    match regbal_cli::run_cli(&args, &mut out) {
        Ok(()) => print!("{out}"),
        Err(msg) => {
            print!("{out}");
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
