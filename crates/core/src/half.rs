//! Half-points: the *before* and *after* positions of a program point.
//!
//! Live ranges and their splits are represented over half-points so that
//! a split "at" a context switch is expressible: the value is in one
//! register up to `Out(p)` and in another from `In(q)` on, with the move
//! instruction materialised between `p` and `q` at rewrite time.

use regbal_analysis::Point;
use std::fmt;

/// The position just before (`In`) or just after (`Out`) a program
/// point, encoded as `2·p` / `2·p + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HalfPoint(pub u32);

impl HalfPoint {
    /// The position just before `p` executes.
    pub fn before(p: Point) -> HalfPoint {
        HalfPoint(p.0 * 2)
    }

    /// The position just after `p` executes.
    pub fn after(p: Point) -> HalfPoint {
        HalfPoint(p.0 * 2 + 1)
    }

    /// The program point this half-point belongs to.
    pub fn point(self) -> Point {
        Point(self.0 / 2)
    }

    /// Whether this is a *before* position.
    pub fn is_before(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// Whether this is an *after* position.
    pub fn is_after(self) -> bool {
        self.0 % 2 == 1
    }

    /// Dense index (for bit sets over `2 × num_points`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a half-point from its dense index.
    pub fn from_index(i: usize) -> HalfPoint {
        HalfPoint(i as u32)
    }
}

impl fmt::Display for HalfPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_before() {
            write!(f, "in({})", self.point())
        } else {
            write!(f, "out({})", self.point())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = Point(7);
        assert_eq!(HalfPoint::before(p).point(), p);
        assert_eq!(HalfPoint::after(p).point(), p);
        assert!(HalfPoint::before(p).is_before());
        assert!(HalfPoint::after(p).is_after());
        assert!(!HalfPoint::after(p).is_before());
        assert_eq!(HalfPoint::before(p).index(), 14);
        assert_eq!(HalfPoint::after(p).index(), 15);
        assert_eq!(HalfPoint::from_index(15), HalfPoint::after(p));
    }

    #[test]
    fn ordering_follows_execution() {
        let p = Point(3);
        let q = Point(4);
        assert!(HalfPoint::before(p) < HalfPoint::after(p));
        assert!(HalfPoint::after(p) < HalfPoint::before(q));
    }

    #[test]
    fn display() {
        assert_eq!(HalfPoint::before(Point(2)).to_string(), "in(p2)");
        assert_eq!(HalfPoint::after(Point(2)).to_string(), "out(p2)");
    }
}
