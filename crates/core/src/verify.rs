//! Static verification of allocation safety invariants.
//!
//! These checks encode the safety argument of the paper: with them
//! satisfied, no thread can ever observe another thread's write to a
//! register it relies on across a context switch.

use crate::alloc::ThreadAlloc;
use regbal_ir::VReg;
use std::fmt;

/// A violated allocation invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A register's live half-points are not exactly partitioned by its
    /// fragments.
    BadPartition(VReg),
    /// A fragment separates a fused `In/Out` pair (a move inside an
    /// instruction, which cannot be materialised).
    AtomSplit(VReg),
    /// A fragment's boundary flag disagrees with its points.
    BadBoundaryFlag(VReg),
    /// A boundary fragment carries a non-private color.
    SharedBoundary {
        /// The offending register.
        vreg: VReg,
        /// The non-private color it carries.
        color: u32,
    },
    /// A fragment's color is in neither palette.
    UnknownColor {
        /// The offending register.
        vreg: VReg,
        /// The unknown color.
        color: u32,
    },
    /// The private and shared palettes overlap.
    PaletteOverlap(u32),
    /// Two co-live fragments of different registers share a color.
    Interference {
        /// First register.
        a: VReg,
        /// Second register.
        b: VReg,
        /// The shared color.
        color: u32,
    },
    /// The combined multi-thread demand exceeds the register file.
    OverCommitted {
        /// `Σ PRᵢ + max SRᵢ`.
        needed: usize,
        /// Physical registers available.
        available: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadPartition(v) => write!(f, "{v}: fragments do not partition live range"),
            VerifyError::AtomSplit(v) => write!(f, "{v}: fragment splits an In/Out atom"),
            VerifyError::BadBoundaryFlag(v) => write!(f, "{v}: stale boundary flag"),
            VerifyError::SharedBoundary { vreg, color } =>

                write!(f, "{vreg}: boundary fragment holds shared color {color}"),
            VerifyError::UnknownColor { vreg, color } => {
                write!(f, "{vreg}: color {color} not in any palette")
            }
            VerifyError::PaletteOverlap(c) => write!(f, "color {c} is both private and shared"),
            VerifyError::Interference { a, b, color } => {
                write!(f, "co-live {a} and {b} share color {color}")
            }
            VerifyError::OverCommitted { needed, available } => {
                write!(f, "demand {needed} exceeds {available} registers")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks every invariant of a single thread's allocation state.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn check_thread(alloc: &ThreadAlloc) -> Result<(), VerifyError> {
    let live = alloc.live_map();
    // Palettes disjoint.
    for c in alloc.private_palette() {
        if alloc.shared_palette().contains(c) {
            return Err(VerifyError::PaletteOverlap(*c));
        }
    }

    // Per-register partition, atom closure, flags, palette membership.
    for vi in 0..live.num_vregs() {
        let v = VReg(vi as u32);
        let mut covered = regbal_ir::BitSet::new(live.num_halves());
        let frags: Vec<_> = alloc
            .node_ids()
            .filter(|&id| alloc.node_vreg(id) == v)
            .collect();
        for &id in &frags {
            let pts = alloc.node_points(id);
            if pts.intersects(&covered) {
                return Err(VerifyError::BadPartition(v));
            }
            covered.union_with(pts);
            if !live.is_atom_closed(v, pts) {
                return Err(VerifyError::AtomSplit(v));
            }
            let is_boundary = pts.intersects(live.boundary_halves(v));
            if is_boundary != alloc.node_is_boundary(id) {
                return Err(VerifyError::BadBoundaryFlag(v));
            }
            let color = alloc.node_color(id);
            let private = alloc.private_palette().contains(&color);
            let shared = alloc.shared_palette().contains(&color);
            if !private && !shared {
                return Err(VerifyError::UnknownColor { vreg: v, color });
            }
            if is_boundary && !private {
                return Err(VerifyError::SharedBoundary { vreg: v, color });
            }
        }
        if &covered != live.live(v) {
            return Err(VerifyError::BadPartition(v));
        }
    }

    // Same-color fragments of different registers never overlap.
    let ids: Vec<_> = alloc.node_ids().collect();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            if alloc.node_vreg(a) == alloc.node_vreg(b) {
                continue;
            }
            if alloc.node_color(a) == alloc.node_color(b)
                && alloc.node_points(a).intersects(alloc.node_points(b))
            {
                return Err(VerifyError::Interference {
                    a: alloc.node_vreg(a),
                    b: alloc.node_vreg(b),
                    color: alloc.node_color(a),
                });
            }
        }
    }
    Ok(())
}

/// Checks the cross-thread feasibility condition of paper §2:
/// `Σ PRᵢ + max SRᵢ ≤ Nreg`, plus every per-thread invariant.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn check_threads(threads: &[ThreadAlloc], nreg: usize) -> Result<(), VerifyError> {
    for t in threads {
        check_thread(t)?;
    }
    let needed: usize = threads.iter().map(ThreadAlloc::pr).sum::<usize>()
        + threads.iter().map(ThreadAlloc::sr).max().unwrap_or(0);
    if needed > nreg {
        return Err(VerifyError::OverCommitted {
            needed,
            available: nreg,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::livemap::LiveMap;
    use regbal_analysis::ProgramInfo;
    use regbal_ir::parse_func;
    use std::sync::Arc;

    fn alloc_for(src: &str, colors: &[Option<u32>], pr: usize, r: usize) -> ThreadAlloc {
        let f = parse_func(src).unwrap();
        let info = ProgramInfo::compute(&f);
        let live = Arc::new(LiveMap::compute(&info));
        ThreadAlloc::new(live, colors, pr, r)
    }

    #[test]
    fn clean_allocation_passes() {
        let a = alloc_for(
            "func f {\nbb0:\n v0 = mov 1\n ctx\n v1 = add v0, 1\n store scratch[v1+0], v0\n halt\n}",
            &[Some(0), Some(1)],
            1,
            2,
        );
        assert_eq!(check_thread(&a), Ok(()));
        assert_eq!(check_threads(&[a.clone(), a], 4), Ok(()));
    }

    #[test]
    fn overcommit_detected() {
        let a = alloc_for(
            "func f {\nbb0:\n v0 = mov 1\n ctx\n store scratch[v0+0], v0\n halt\n}",
            &[Some(0)],
            1,
            1,
        );
        let threads = vec![a.clone(), a.clone(), a];
        match check_threads(&threads, 2) {
            Err(VerifyError::OverCommitted { needed, available }) => {
                assert_eq!(needed, 3);
                assert_eq!(available, 2);
            }
            other => panic!("expected overcommit, got {other:?}"),
        }
    }

    #[test]
    fn error_messages_are_informative() {
        use regbal_ir::VReg;
        let cases: Vec<(VerifyError, &str)> = vec![
            (VerifyError::BadPartition(VReg(1)), "partition"),
            (VerifyError::AtomSplit(VReg(2)), "atom"),
            (VerifyError::BadBoundaryFlag(VReg(3)), "boundary"),
            (
                VerifyError::SharedBoundary {
                    vreg: VReg(4),
                    color: 7,
                },
                "shared color 7",
            ),
            (
                VerifyError::UnknownColor {
                    vreg: VReg(5),
                    color: 9,
                },
                "color 9",
            ),
            (VerifyError::PaletteOverlap(3), "both"),
            (
                VerifyError::Interference {
                    a: VReg(0),
                    b: VReg(1),
                    color: 2,
                },
                "share color 2",
            ),
            (
                VerifyError::OverCommitted {
                    needed: 9,
                    available: 8,
                },
                "exceeds",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    // ------------------------------------------------------------------
    // Detection tests: manufacture each corruption with the fault-
    // injection API and assert the verifier names it precisely.
    // ------------------------------------------------------------------

    use crate::alloc::NodeId;
    use regbal_ir::VReg;

    /// The (sole) fragment of `v`.
    fn node_of(alloc: &ThreadAlloc, v: VReg) -> NodeId {
        alloc
            .node_ids()
            .find(|&id| alloc.node_vreg(id) == v)
            .expect("vreg has a fragment")
    }

    /// The clean two-color allocation of the `clean_allocation_passes`
    /// program: `v0` boundary (private color 0), `v1` internal (shared
    /// color 1).
    fn clean() -> ThreadAlloc {
        alloc_for(
            "func f {\nbb0:\n v0 = mov 1\n ctx\n v1 = add v0, 1\n store scratch[v1+0], v0\n halt\n}",
            &[Some(0), Some(1)],
            1,
            2,
        )
    }

    #[test]
    fn shared_boundary_detected() {
        let mut a = clean();
        let v0 = node_of(&a, VReg(0));
        assert!(a.node_is_boundary(v0), "v0 lives across the ctx");
        a.force_color(v0, 1); // 1 is the shared color
        match check_thread(&a) {
            Err(VerifyError::SharedBoundary { vreg, color }) => {
                assert_eq!((vreg, color), (VReg(0), 1));
            }
            other => panic!("expected SharedBoundary, got {other:?}"),
        }
    }

    #[test]
    fn unknown_color_detected() {
        let mut a = clean();
        a.force_color(node_of(&a, VReg(1)), 9);
        match check_thread(&a) {
            Err(VerifyError::UnknownColor { vreg, color }) => {
                assert_eq!((vreg, color), (VReg(1), 9));
            }
            other => panic!("expected UnknownColor, got {other:?}"),
        }
    }

    #[test]
    fn palette_overlap_detected() {
        let mut a = clean();
        a.force_palettes(vec![0], vec![0, 1]);
        assert_eq!(check_thread(&a), Err(VerifyError::PaletteOverlap(0)));
    }

    #[test]
    fn stale_boundary_flag_detected() {
        let mut a = clean();
        let v1 = node_of(&a, VReg(1));
        assert!(!a.node_is_boundary(v1), "v1 is internal");
        a.force_boundary(v1, true);
        assert_eq!(check_thread(&a), Err(VerifyError::BadBoundaryFlag(VReg(1))));
    }

    #[test]
    fn bad_partition_detected() {
        // No ctx, so the (false) boundary flag of the emptied fragment
        // stays consistent and the partition check is what fires.
        let mut a = alloc_for(
            "func f {\nbb0:\n v0 = mov 1\n store scratch[v0+0], v0\n halt\n}",
            &[Some(0)],
            1,
            1,
        );
        let v0 = node_of(&a, VReg(0));
        let empty = regbal_ir::BitSet::new(a.node_points(v0).capacity());
        a.force_points(v0, empty);
        assert_eq!(check_thread(&a), Err(VerifyError::BadPartition(VReg(0))));
    }

    #[test]
    fn atom_split_detected() {
        // v0 flows *through* `v1 = add v0, 1` (live out, not redefined),
        // fusing that instruction's In/Out halves into one atom;
        // dropping exactly one of those halves from the fragment tears
        // it. Dropping a singleton-atom half instead leaves a partition
        // hole. Sweep every half and require both diagnoses to appear.
        let src = "func f {\nbb0:\n v0 = mov 1\n v1 = add v0, 1\n store scratch[v1+0], v0\n halt\n}";
        let colors = [Some(0), Some(1)];
        let mut saw_atom_split = false;
        let mut saw_bad_partition = false;
        let probe = alloc_for(src, &colors, 2, 2);
        let v0 = node_of(&probe, VReg(0));
        let halves: Vec<usize> = probe.node_points(v0).iter().collect();
        for h in halves {
            let mut a = alloc_for(src, &colors, 2, 2);
            let id = node_of(&a, VReg(0));
            let mut pts = a.node_points(id).clone();
            pts.remove(h);
            a.force_points(id, pts);
            match check_thread(&a) {
                Err(VerifyError::AtomSplit(v)) => {
                    assert_eq!(v, VReg(0));
                    saw_atom_split = true;
                }
                Err(VerifyError::BadPartition(v)) => {
                    assert_eq!(v, VReg(0));
                    saw_bad_partition = true;
                }
                other => panic!("corrupt fragment must be diagnosed, got {other:?}"),
            }
        }
        assert!(saw_atom_split, "some half tears the In/Out atom");
        assert!(saw_bad_partition, "some half leaves a partition hole");
    }

    #[test]
    fn interference_detected() {
        let mut a = alloc_for(
            "func f {\nbb0:\n v0 = mov 1\n v1 = mov 2\n v2 = add v0, v1\n store scratch[v2+0], v2\n halt\n}",
            &[Some(0), Some(1), Some(2)],
            3,
            3,
        );
        a.force_color(node_of(&a, VReg(1)), 0);
        match check_thread(&a) {
            Err(VerifyError::Interference { a, b, color }) => {
                assert_eq!(color, 0);
                assert_eq!(
                    {
                        let mut pair = [a.0, b.0];
                        pair.sort_unstable();
                        pair
                    },
                    [0, 1]
                );
            }
            other => panic!("expected Interference, got {other:?}"),
        }
    }
}
