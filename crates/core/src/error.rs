//! Allocator error type.

use std::fmt;

/// Failure of a register-allocation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The combined demand `Σ PRᵢ + max SRᵢ` cannot be reduced to fit
    /// the register file: every remaining reduction step is blocked by
    /// the per-thread lower bounds or by stuck recoloring.
    Infeasible {
        /// Registers still demanded when the allocator got stuck.
        needed: usize,
        /// Registers physically available.
        available: usize,
    },
    /// A reduction toward an explicitly requested bound got stuck before
    /// reaching it.
    TargetUnreachable {
        /// Thread index that could not be reduced further.
        thread: usize,
        /// Private registers reached.
        pr: usize,
        /// Total registers reached.
        r: usize,
    },
    /// The Chaitin baseline could not converge (pathological spill
    /// cascade).
    SpillDiverged {
        /// Number of spill rounds attempted.
        rounds: usize,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Infeasible { needed, available } => write!(
                f,
                "register demand of {needed} cannot fit in {available} physical registers"
            ),
            AllocError::TargetUnreachable { thread, pr, r } => write!(
                f,
                "thread {thread} stuck at PR={pr}, R={r} before reaching the requested bound"
            ),
            AllocError::SpillDiverged { rounds } => {
                write!(f, "spilling failed to converge after {rounds} rounds")
            }
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AllocError::Infeasible {
            needed: 40,
            available: 32,
        };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("32"));
        let e = AllocError::TargetUnreachable {
            thread: 1,
            pr: 3,
            r: 5,
        };
        assert!(e.to_string().contains("PR=3"));
        let e = AllocError::SpillDiverged { rounds: 9 };
        assert!(e.to_string().contains('9'));
    }
}
