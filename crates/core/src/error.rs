//! Allocator error taxonomy and the degradation-ladder vocabulary.
//!
//! Every failure of the allocation pipeline is a machine-readable
//! [`AllocError`]; nothing in the library crates panics on adversarial
//! input. The fallback ladder ([`crate::allocate_ladder`]) walks the
//! [`LadderStep`] rungs and records each forced transition as a
//! [`Degradation`], so callers (CLI, eval harness, simulator reports)
//! can surface *why* the primary strategy was abandoned.

use std::fmt;

/// Failure of a register-allocation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The combined demand `Σ PRᵢ + max SRᵢ` cannot be reduced to fit
    /// the register file: every remaining reduction step is blocked by
    /// the per-thread lower bounds or by stuck recoloring.
    Infeasible {
        /// Registers still demanded when the allocator got stuck.
        needed: usize,
        /// Registers physically available.
        available: usize,
    },
    /// A reduction toward an explicitly requested bound got stuck before
    /// reaching it.
    TargetUnreachable {
        /// Thread index that could not be reduced further.
        thread: usize,
        /// Private registers reached.
        pr: usize,
        /// Total registers reached.
        r: usize,
    },
    /// The Chaitin baseline could not converge (pathological spill
    /// cascade).
    SpillDiverged {
        /// Number of spill rounds attempted.
        rounds: usize,
    },
    /// The greedy reduction loop exhausted its deterministic iteration
    /// budget before the demand fit the file.
    IterationCapHit {
        /// Committed reduction steps before the budget ran out.
        iterations: usize,
        /// The configured budget.
        cap: usize,
    },
    /// A recolor-repair walk (vacating a color by recoloring its
    /// neighbourhood) exceeded its work budget without converging.
    RecolorDiverged {
        /// Thread whose repair diverged.
        thread: usize,
        /// Recoloring steps attempted before giving up.
        steps: usize,
    },
    /// Conflict repair ran out of room: more interfering fragments than
    /// the palette (or the repair budget) can absorb.
    ConflictOverflow {
        /// Thread whose conflicts could not be repaired.
        thread: usize,
        /// Interfering fragments competing for the palette.
        conflicts: usize,
        /// Colors (or repair steps) available.
        limit: usize,
    },
    /// A finished allocation failed the post-hoc safety verifier — an
    /// internal bug surfaced as data instead of a panic.
    InvalidAllocation {
        /// The verifier's diagnosis.
        reason: String,
    },
}

impl AllocError {
    /// A short, stable, machine-readable reason code (used as the
    /// `code` field of JSON reports).
    pub fn code(&self) -> &'static str {
        match self {
            AllocError::Infeasible { .. } => "infeasible",
            AllocError::TargetUnreachable { .. } => "target-unreachable",
            AllocError::SpillDiverged { .. } => "spill-diverged",
            AllocError::IterationCapHit { .. } => "iteration-cap",
            AllocError::RecolorDiverged { .. } => "recolor-diverged",
            AllocError::ConflictOverflow { .. } => "conflict-overflow",
            AllocError::InvalidAllocation { .. } => "invalid-allocation",
        }
    }
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Infeasible { needed, available } => write!(
                f,
                "register demand of {needed} cannot fit in {available} physical registers"
            ),
            AllocError::TargetUnreachable { thread, pr, r } => write!(
                f,
                "thread {thread} stuck at PR={pr}, R={r} before reaching the requested bound"
            ),
            AllocError::SpillDiverged { rounds } => {
                write!(f, "spilling failed to converge after {rounds} rounds")
            }
            AllocError::IterationCapHit { iterations, cap } => write!(
                f,
                "iteration budget of {cap} exhausted after {iterations} reduction steps"
            ),
            AllocError::RecolorDiverged { thread, steps } => write!(
                f,
                "thread {thread}: recolor repair diverged after {steps} steps"
            ),
            AllocError::ConflictOverflow {
                thread,
                conflicts,
                limit,
            } => write!(
                f,
                "thread {thread}: {conflicts} conflicting fragments overflow a limit of {limit}"
            ),
            AllocError::InvalidAllocation { reason } => {
                write!(f, "allocation failed verification: {reason}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// One rung of the fallback ladder, from the paper's balancing
/// allocator down to the guaranteed-to-terminate spill-everything
/// rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderStep {
    /// The paper's inter-thread balancing allocator (Fig. 8), no
    /// spilling.
    Balanced,
    /// Balancing plus spilling of the cheapest ranges of the most
    /// demanding thread, with the cheapest spills packed into the
    /// fast shared scratchpad (the RegDem-style tier) and the
    /// overflow sent to memory.
    BalancedScratch,
    /// Balancing plus last-resort spilling of the cheapest ranges of
    /// the most demanding thread, all spills to memory.
    BalancedSpill,
    /// The stock-compiler baseline: equal `Nreg / Nthd` private banks,
    /// Chaitin spilling within each.
    FixedPartition,
    /// The terminal rung: every original live range is pre-spilled to
    /// memory, leaving only instruction-local temporaries to color.
    SpillAll,
}

impl LadderStep {
    /// Stable identifier used in reports.
    pub fn name(self) -> &'static str {
        match self {
            LadderStep::Balanced => "balanced",
            LadderStep::BalancedScratch => "balanced-scratch",
            LadderStep::BalancedSpill => "balanced-spill",
            LadderStep::FixedPartition => "fixed-partition",
            LadderStep::SpillAll => "spill-all",
        }
    }

    /// The next rung down, if any.
    pub fn next(self) -> Option<LadderStep> {
        match self {
            LadderStep::Balanced => Some(LadderStep::BalancedScratch),
            LadderStep::BalancedScratch => Some(LadderStep::BalancedSpill),
            LadderStep::BalancedSpill => Some(LadderStep::FixedPartition),
            LadderStep::FixedPartition => Some(LadderStep::SpillAll),
            LadderStep::SpillAll => None,
        }
    }
}

impl fmt::Display for LadderStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A same-rung retry: rung `step` exhausted its iteration budget
/// (`cap`), so the ladder re-ran it once with a doubled — still
/// bounded — budget (`retry_cap`) before considering a descent.
/// Recorded whether or not the retry `recovered` the rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RungRetry {
    /// The rung that was retried.
    pub step: LadderStep,
    /// The budget the first attempt exhausted.
    pub cap: usize,
    /// The doubled budget of the retry.
    pub retry_cap: usize,
    /// Whether the retry succeeded (`true` keeps the ladder on `step`).
    pub recovered: bool,
}

impl fmt::Display for RungRetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: retried {} -> {} ({})",
            self.step,
            self.cap,
            self.retry_cap,
            if self.recovered { "recovered" } else { "failed" }
        )
    }
}

/// A checked transition down the fallback ladder: rung `from` failed
/// with `reason`, so the pipeline fell back to rung `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The rung that failed.
    pub from: LadderStep,
    /// The rung tried next.
    pub to: LadderStep,
    /// Why `from` failed.
    pub reason: AllocError,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}: {}", self.from, self.to, self.reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AllocError::Infeasible {
            needed: 40,
            available: 32,
        };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("32"));
        let e = AllocError::TargetUnreachable {
            thread: 1,
            pr: 3,
            r: 5,
        };
        assert!(e.to_string().contains("PR=3"));
        let e = AllocError::SpillDiverged { rounds: 9 };
        assert!(e.to_string().contains('9'));
        let e = AllocError::IterationCapHit {
            iterations: 17,
            cap: 17,
        };
        assert!(e.to_string().contains("17"));
        let e = AllocError::RecolorDiverged { thread: 2, steps: 96 };
        assert!(e.to_string().contains("96"));
        let e = AllocError::ConflictOverflow {
            thread: 0,
            conflicts: 9,
            limit: 4,
        };
        assert!(e.to_string().contains("overflow"));
        let e = AllocError::InvalidAllocation {
            reason: "palette overlap".into(),
        };
        assert!(e.to_string().contains("palette overlap"));
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            AllocError::Infeasible { needed: 1, available: 0 }.code(),
            AllocError::TargetUnreachable { thread: 0, pr: 0, r: 0 }.code(),
            AllocError::SpillDiverged { rounds: 0 }.code(),
            AllocError::IterationCapHit { iterations: 0, cap: 0 }.code(),
            AllocError::RecolorDiverged { thread: 0, steps: 0 }.code(),
            AllocError::ConflictOverflow { thread: 0, conflicts: 0, limit: 0 }.code(),
            AllocError::InvalidAllocation { reason: String::new() }.code(),
        ];
        let unique: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn ladder_walks_to_the_bottom() {
        let mut step = LadderStep::Balanced;
        let mut names = vec![step.name()];
        while let Some(next) = step.next() {
            step = next;
            names.push(step.name());
        }
        assert_eq!(
            names,
            [
                "balanced",
                "balanced-scratch",
                "balanced-spill",
                "fixed-partition",
                "spill-all"
            ]
        );
        assert_eq!(LadderStep::SpillAll.next(), None);
    }

    #[test]
    fn degradation_displays_the_transition() {
        let d = Degradation {
            from: LadderStep::Balanced,
            to: LadderStep::BalancedSpill,
            reason: AllocError::Infeasible { needed: 9, available: 8 },
        };
        let s = d.to_string();
        assert!(s.contains("balanced -> balanced-spill"), "{s}");
        assert!(s.contains("cannot fit"), "{s}");
    }
}
