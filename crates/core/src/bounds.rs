//! Register-requirement estimation (paper §5, Fig. 7).
//!
//! Lower bounds come straight from pressure analysis
//! (`MinPR = RegPCSBmax`, `MinR = RegPmax`). Upper bounds are found by
//! the paper's region-based coloring: color the BIG minimally first
//! (minimising `MaxPR` is preferred because private registers raise the
//! inter-thread total directly, while shared registers only matter
//! through the maximum), color each IIG independently, then merge and
//! repair the conflict edges — recoloring an endpoint, nudging a
//! neighbour, or growing `R` as a last resort.

use regbal_analysis::ProgramInfo;
use regbal_igraph::{build_big, build_gig, build_iigs, Graph};

/// Per-thread register-requirement bounds (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// `MinPR = RegPCSBmax`: reachable private-register minimum
    /// (Lemma 1).
    pub min_pr: usize,
    /// `MinR = RegPmax`: reachable total-register minimum.
    pub min_r: usize,
    /// `MaxPR`: private registers needed without any move insertion.
    pub max_pr: usize,
    /// `MaxR`: total registers needed without any move insertion.
    pub max_r: usize,
}

/// The result of [`estimate_bounds`]: the bounds plus a concrete
/// conflict-free coloring achieving (`MaxPR`, `MaxR`), used as the
/// starting context of the allocators.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// The register-requirement bounds.
    pub bounds: Bounds,
    /// A proper GIG coloring: boundary nodes `< max_pr`, all nodes
    /// `< max_r`. `None` for registers that are never live.
    pub coloring: Vec<Option<u32>>,
}

/// Runs the Fig. 7 estimation on one thread.
///
/// # Example
///
/// ```
/// use regbal_analysis::ProgramInfo;
/// use regbal_core::estimate_bounds;
///
/// let f = regbal_ir::parse_func(
///     "func f {\nbb0:\n v0 = mov 1\n ctx\n v1 = add v0, 1\n store scratch[v1+0], v0\n halt\n}",
/// )?;
/// let est = estimate_bounds(&ProgramInfo::compute(&f));
/// assert_eq!(est.bounds.min_pr, 1); // only v0 crosses the switch
/// assert!(est.bounds.min_r >= 2);
/// # Ok::<(), regbal_ir::ParseError>(())
/// ```
pub fn estimate_bounds(info: &ProgramInfo) -> Estimate {
    let gig = build_gig(info);
    let big = build_big(info);
    let iigs = build_iigs(info, &gig);
    let nv = info.num_vregs();

    // Which registers are live at all (have a node on the GIG).
    let mut is_live = vec![false; nv];
    for p in info.pmap.points() {
        for v in info.liveness.live_in(p).iter() {
            is_live[v] = true;
        }
        for d in info.liveness.defs_at(p) {
            is_live[d.index()] = true;
        }
    }

    // 1. Color the BIG minimally over the boundary nodes.
    let boundary_set = &info.boundary;
    let big_coloring = big.dsatur_subset(Some(boundary_set), None);
    let mut pr = big_coloring.num_colors;
    let mut colors: Vec<Option<u32>> = big_coloring.colors;

    // 2. Color each IIG independently with colors 0..k.
    let mut r = pr;
    for iig in &iigs {
        let c = iig.graph.dsatur(None);
        r = r.max(c.num_colors);
        for (pos, &v) in iig.members.iter().enumerate() {
            colors[v] = c.colors[pos];
        }
    }

    // Live registers not reached above (internal nodes outside every
    // region, e.g. dead definitions at a CSB) start at color 0 and are
    // fixed up by the repair loop.
    for (v, live) in is_live.iter().enumerate() {
        if *live && colors[v].is_none() {
            colors[v] = Some(0);
            r = r.max(1);
        }
    }
    if pr == 0 && info.boundary.is_empty() {
        // No boundary nodes at all: fine, PR stays 0.
    }

    // 3. Merge: repair every conflicting GIG edge.
    loop {
        let conflict = find_conflict(&gig, &colors);
        let Some((a, b)) = conflict else { break };
        // Prefer moving an internal node (cheapest for PR).
        let (node, limit) = if !boundary_set.contains(b) {
            (b, r)
        } else if !boundary_set.contains(a) {
            (a, r)
        } else {
            (b, pr)
        };
        if try_recolor(&gig, &mut colors, node, limit) {
            continue;
        }
        // Neighbour nudge: free a color for `node` by moving one
        // single blocking neighbour.
        if try_nudge(&gig, &mut colors, boundary_set, node, limit, pr, r) {
            continue;
        }
        // Grow the palette.
        if boundary_set.contains(node) {
            colors[node] = Some(pr as u32);
            pr += 1;
            r = r.max(pr);
        } else {
            colors[node] = Some(r as u32);
            r += 1;
        }
    }

    debug_assert!(gig.check_coloring(&colors).is_ok());
    let bounds = Bounds {
        min_pr: info.pressure.min_pr(),
        min_r: info.pressure.min_r(),
        max_pr: pr,
        max_r: r.max(pr),
    };
    Estimate { bounds, coloring: colors }
}

fn find_conflict(gig: &Graph, colors: &[Option<u32>]) -> Option<(usize, usize)> {
    for a in 0..gig.len() {
        let Some(ca) = colors[a] else { continue };
        for b in gig.neighbors(a).iter() {
            if b > a && colors[b] == Some(ca) {
                return Some((a, b));
            }
        }
    }
    None
}

/// Recolors `node` with any color `< limit` unused by its neighbours.
fn try_recolor(gig: &Graph, colors: &mut [Option<u32>], node: usize, limit: usize) -> bool {
    let used: Vec<u32> = gig
        .neighbors(node)
        .iter()
        .filter_map(|n| colors[n])
        .collect();
    for c in 0..limit as u32 {
        if !used.contains(&c) {
            colors[node] = Some(c);
            return true;
        }
    }
    false
}

/// Tries to free one color `< limit` for `node` by recoloring a single
/// blocking neighbour elsewhere.
fn try_nudge(
    gig: &Graph,
    colors: &mut [Option<u32>],
    boundary: &regbal_ir::BitSet,
    node: usize,
    limit: usize,
    pr: usize,
    r: usize,
) -> bool {
    for c in 0..limit as u32 {
        let blockers: Vec<usize> = gig
            .neighbors(node)
            .iter()
            .filter(|&n| colors[n] == Some(c))
            .collect();
        if blockers.len() != 1 {
            continue;
        }
        let blocker = blockers[0];
        let blocker_limit = if boundary.contains(blocker) { pr } else { r };
        let saved = colors[blocker];
        colors[blocker] = None;
        let mut used: Vec<u32> = gig
            .neighbors(blocker)
            .iter()
            .filter_map(|n| colors[n])
            .collect();
        used.push(c);
        let retarget = (0..blocker_limit as u32).find(|cc| !used.contains(cc));
        match retarget {
            Some(cc) => {
                colors[blocker] = Some(cc);
                colors[node] = Some(c);
                return true;
            }
            None => colors[blocker] = saved,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_analysis::ProgramInfo;
    use regbal_ir::parse_func;

    fn estimate(src: &str) -> Estimate {
        estimate_bounds(&ProgramInfo::compute(&parse_func(src).unwrap()))
    }

    #[test]
    fn figure5_bounds() {
        // Paper Fig. 5: sum/buf/len form both a BIG clique and, with
        // tmp1, a 4-clique on the GIG → MaxPR = 3, MaxR = 4.
        let src = "
func frag {
bb0:
    v0 = mov 0
    v1 = mov 256
    v2 = mov 16
    jump bb1
bb1:
    bne v2, 0, bb2, bb3
bb2:
    v3 = load sram[v1+0]
    v0 = add v0, v3
    v1 = add v1, 4
    v2 = sub v2, 1
    ctx
    jump bb1
bb3:
    v4 = load sram[v1+0]
    v0 = add v0, v4
    store scratch[v1+0], v0
    halt
}";
        let est = estimate(src);
        assert_eq!(est.bounds.max_pr, 3);
        assert_eq!(est.bounds.max_r, 4);
        assert!(est.bounds.min_pr <= est.bounds.max_pr);
        assert!(est.bounds.min_r <= est.bounds.max_r);
        // Boundary nodes colored below MaxPR.
        for v in [0usize, 1, 2] {
            assert!(est.coloring[v].unwrap() < est.bounds.max_pr as u32);
        }
    }

    #[test]
    fn bounds_ordering_invariants() {
        let srcs = [
            "func a {\nbb0:\n v0 = mov 1\n ctx\n v1 = add v0, 1\n store scratch[v1+0], v0\n halt\n}",
            "func b {\nbb0:\n v0 = mov 1\n v1 = mov 2\n v2 = mov 3\n v3 = add v0, v1\n v3 = add v3, v2\n store scratch[v3+0], v3\n halt\n}",
            "func c {\nbb0:\n halt\n}",
        ];
        for src in srcs {
            let est = estimate(src);
            let b = est.bounds;
            assert!(b.min_pr <= b.max_pr, "{src}: {b:?}");
            assert!(b.min_r <= b.max_r, "{src}: {b:?}");
            assert!(b.max_pr <= b.max_r, "{src}: {b:?}");
            assert!(b.min_pr <= b.min_r, "{src}: {b:?}");
        }
    }

    #[test]
    fn empty_function_all_zero() {
        let est = estimate("func z {\nbb0:\n halt\n}");
        assert_eq!(
            est.bounds,
            Bounds {
                min_pr: 0,
                min_r: 0,
                max_pr: 0,
                max_r: 0
            }
        );
    }

    #[test]
    fn pure_internal_function_has_zero_pr() {
        let est = estimate(
            "func i {\nbb0:\n v0 = mov 1\n v1 = add v0, 1\n v2 = add v1, v0\n store scratch[v2+0], v2\n halt\n}",
        );
        assert_eq!(est.bounds.max_pr, 0, "no value is live across a CSB");
        assert!(est.bounds.max_r >= 2);
    }

    #[test]
    fn coloring_is_proper_on_gig() {
        let src = "
func mix {
bb0:
    v0 = mov 1
    v1 = mov 2
    ctx
    v2 = add v0, v1
    v3 = add v2, v0
    v4 = add v3, v1
    store scratch[v4+0], v4
    ctx
    store scratch[v0+0], v1
    halt
}";
        let info = ProgramInfo::compute(&parse_func(src).unwrap());
        let est = estimate_bounds(&info);
        let gig = regbal_igraph::build_gig(&info);
        gig.check_coloring(&est.coloring).unwrap();
        for v in 0..info.num_vregs() {
            if info.boundary.contains(v) {
                assert!(est.coloring[v].unwrap() < est.bounds.max_pr as u32);
            }
            if let Some(c) = est.coloring[v] {
                assert!(c < est.bounds.max_r as u32);
            }
        }
    }

    #[test]
    fn dead_def_gets_a_color() {
        let est = estimate("func d {\nbb0:\n v0 = mov 1\n v1 = mov 2\n store scratch[v1+0], v1\n halt\n}");
        assert!(est.coloring[0].is_some(), "dead def still occupies a register");
    }
}
