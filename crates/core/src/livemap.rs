//! Per-register live half-point sets, value-flow edges and atoms.
//!
//! A virtual register's live range is the set of [`HalfPoint`]s where its
//! value occupies a register. *Flow edges* connect consecutive live
//! half-points along the CFG; cutting a flow edge with a `mov` splits the
//! live range (paper §7.1). Two kinds of adjacency exist:
//!
//! * `Out(p) → In(q)` between consecutive instructions — **cuttable**: a
//!   move can be materialised in the gap;
//! * `In(p) → Out(p)` through an instruction the value survives —
//!   **uncuttable** (there is no gap inside an instruction; for a context
//!   switch this is precisely why live-across values need private
//!   registers). The two halves form an *atom* that splits never
//!   separate.

use crate::half::HalfPoint;
use regbal_analysis::{ProgramInfo, RegionId};
use regbal_ir::{BitSet, VReg};

/// Live half-points, atoms, flow edges and boundary marks for every
/// virtual register of one thread.
#[derive(Debug, Clone)]
pub struct LiveMap {
    nv: usize,
    nh: usize,
    /// Per vreg: half-points where the value is live (occupies a
    /// register).
    live: Vec<BitSet>,
    /// Per vreg: `In(p)` half-points fused with their `Out(p)` (the
    /// value survives instruction `p`).
    fused: Vec<BitSet>,
    /// Per vreg: half-points that force *private* registers — `Out(csb)`
    /// positions where the value is live across the switch, plus
    /// `In(entry)` for entry-live values.
    boundary_halves: Vec<BitSet>,
    /// Per vreg: cuttable flow edges `Out(p) → In(q)`.
    flows: Vec<Vec<(HalfPoint, HalfPoint)>>,
    /// Region of each half-point's program point (`None` at CSBs).
    region_of_half: Vec<Option<RegionId>>,
    /// Per region: all half-points inside it.
    region_masks: Vec<BitSet>,
}

impl LiveMap {
    /// Derives the live map from the analysis bundle.
    pub fn compute(info: &ProgramInfo) -> LiveMap {
        let nv = info.num_vregs();
        let np = info.pmap.num_points();
        let nh = np * 2;
        let mut live = vec![BitSet::new(nh); nv];
        let mut fused = vec![BitSet::new(nh); nv];
        let mut boundary_halves = vec![BitSet::new(nh); nv];
        let mut flows: Vec<Vec<(HalfPoint, HalfPoint)>> = vec![Vec::new(); nv];
        let mut region_of_half = vec![None; nh];

        for p in info.pmap.points() {
            let hin = HalfPoint::before(p);
            let hout = HalfPoint::after(p);
            region_of_half[hin.index()] = info.nsr.region_of(p);
            region_of_half[hout.index()] = info.nsr.region_of(p);
            let defs = info.liveness.defs_at(p);
            for v in info.liveness.live_in(p).iter() {
                live[v].insert(hin.index());
            }
            for v in info.liveness.live_out(p).iter() {
                live[v].insert(hout.index());
                if !defs.contains(&VReg(v as u32)) {
                    // The value flows through p: fuse In(p) with Out(p).
                    fused[v].insert(hin.index());
                    if info.csbs.is_csb(p) {
                        boundary_halves[v].insert(hout.index());
                    }
                }
            }
            for d in defs {
                // A def occupies a register just after p even when dead.
                live[d.index()].insert(hout.index());
            }
            // Cuttable flow edges to successor points. A branch with
            // both targets equal contributes a single edge.
            let mut seen: Vec<regbal_analysis::Point> = Vec::with_capacity(2);
            for &q in info.pmap.succs(p) {
                if seen.contains(&q) {
                    continue;
                }
                seen.push(q);
                let qin = HalfPoint::before(q);
                for v in info.liveness.live_out(p).iter() {
                    if info.liveness.live_in(q).contains(v) {
                        flows[v].push((hout, qin));
                    }
                }
            }
        }
        // Entry-live values must already sit in a private register when
        // the thread first runs.
        let entry_in = HalfPoint::before(info.pmap.entry());
        for v in info.liveness.live_in(info.pmap.entry()).iter() {
            boundary_halves[v].insert(entry_in.index());
        }
        let mut region_masks = vec![BitSet::new(nh); info.nsr.num_regions()];
        for (h, region) in region_of_half.iter().enumerate() {
            if let Some(r) = region {
                region_masks[r.index()].insert(h);
            }
        }
        LiveMap {
            nv,
            nh,
            live,
            fused,
            boundary_halves,
            flows,
            region_of_half,
            region_masks,
        }
    }

    /// All half-points belonging to a region.
    pub fn region_mask(&self, r: RegionId) -> &BitSet {
        &self.region_masks[r.index()]
    }

    /// Number of non-switch regions.
    pub fn num_regions(&self) -> usize {
        self.region_masks.len()
    }

    /// Number of virtual registers.
    pub fn num_vregs(&self) -> usize {
        self.nv
    }

    /// Number of half-points (`2 ×` program points).
    pub fn num_halves(&self) -> usize {
        self.nh
    }

    /// The live half-point set of `v`.
    pub fn live(&self, v: VReg) -> &BitSet {
        &self.live[v.index()]
    }

    /// The boundary half-points of `v` (positions that require a private
    /// register). A live range containing any of them is a *boundary
    /// node*.
    pub fn boundary_halves(&self, v: VReg) -> &BitSet {
        &self.boundary_halves[v.index()]
    }

    /// Whether `v` is live at all.
    pub fn is_live(&self, v: VReg) -> bool {
        !self.live[v.index()].is_empty()
    }

    /// The cuttable flow edges of `v`.
    pub fn flows(&self, v: VReg) -> &[(HalfPoint, HalfPoint)] {
        &self.flows[v.index()]
    }

    /// The region of a half-point's program point (`None` at CSBs).
    pub fn region_of(&self, h: HalfPoint) -> Option<RegionId> {
        self.region_of_half[h.index()]
    }

    /// Expands `mask ∩ points-of-v` to full atoms: the returned set
    /// contains exactly the atoms of `points` that intersect `mask`.
    /// The result is atom-closed by construction.
    pub fn atoms_touching(&self, v: VReg, points: &BitSet, mask: &BitSet) -> BitSet {
        let mut out = BitSet::new(self.nh);
        let fused = &self.fused[v.index()];
        for h in points.iter() {
            if !mask.contains(h) {
                continue;
            }
            out.insert(h);
            let hp = HalfPoint::from_index(h);
            if hp.is_before() {
                if fused.contains(h) && points.contains(h + 1) {
                    out.insert(h + 1);
                }
            } else if h > 0 && fused.contains(h - 1) && points.contains(h - 1) {
                out.insert(h - 1);
            }
        }
        out
    }

    /// Enumerates the atoms of `points` (for register `v`) in ascending
    /// half-point order: fused `In/Out` pairs stay together, everything
    /// else is a singleton.
    pub fn atoms(&self, v: VReg, points: &BitSet) -> Vec<BitSet> {
        let fused = &self.fused[v.index()];
        let mut out = Vec::new();
        let mut skip_next: Option<usize> = None;
        for h in points.iter() {
            if skip_next == Some(h) {
                continue;
            }
            let mut atom = BitSet::new(self.nh);
            atom.insert(h);
            let hp = HalfPoint::from_index(h);
            if hp.is_before() && fused.contains(h) && points.contains(h + 1) {
                atom.insert(h + 1);
                skip_next = Some(h + 1);
            }
            out.push(atom);
        }
        out
    }

    /// Checks that `points ⊆ live(v)` and that no fused `In/Out` pair is
    /// separated by the set boundary.
    pub fn is_atom_closed(&self, v: VReg, points: &BitSet) -> bool {
        if !points.is_subset(&self.live[v.index()]) {
            return false;
        }
        for h in points.iter() {
            let hp = HalfPoint::from_index(h);
            let fused = &self.fused[v.index()];
            if hp.is_before() {
                if fused.contains(h) && !points.contains(h + 1) && self.live[v.index()].contains(h + 1)
                {
                    return false;
                }
            } else if h > 0
                && fused.contains(h - 1)
                && self.live[v.index()].contains(h - 1)
                && !points.contains(h - 1)
            {
                return false;
            }
        }
        true
    }

    /// Number of moves needed if `v`'s live range is partitioned so that
    /// `part` is one side: the count of cuttable flow edges crossing the
    /// boundary of `part`.
    pub fn cut_cost(&self, v: VReg, part: &BitSet) -> usize {
        self.flows[v.index()]
            .iter()
            .filter(|(a, b)| part.contains(a.index()) != part.contains(b.index()))
            .count()
    }

    /// Number of moves between two specific parts (flow edges with one
    /// endpoint in each).
    pub fn moves_between(&self, v: VReg, a: &BitSet, b: &BitSet) -> usize {
        self.flows[v.index()]
            .iter()
            .filter(|(x, y)| {
                (a.contains(x.index()) && b.contains(y.index()))
                    || (b.contains(x.index()) && a.contains(y.index()))
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_analysis::{Point, ProgramInfo};
    use regbal_ir::parse_func;

    fn map(src: &str) -> (ProgramInfo, LiveMap) {
        let f = parse_func(src).unwrap();
        let info = ProgramInfo::compute(&f);
        let lm = LiveMap::compute(&info);
        (info, lm)
    }

    #[test]
    fn straight_line_live_halves() {
        // p0: v0 = mov 1 | p1: store [v0], v0 | p2: halt
        let (_, lm) = map("func f {\nbb0:\n v0 = mov 1\n store scratch[v0+0], v0\n halt\n}");
        let v0 = VReg(0);
        let pts: Vec<usize> = lm.live(v0).iter().collect();
        // Out(p0) = 1, In(p1) = 2. Dead after the store.
        assert_eq!(pts, vec![1, 2]);
        assert!(lm.is_live(v0));
    }

    #[test]
    fn flow_edges_connect_consecutive_points() {
        let (_, lm) = map("func f {\nbb0:\n v0 = mov 1\n nop\n store scratch[v0+0], v0\n halt\n}");
        let v0 = VReg(0);
        // Out(p0)→In(p1), Out(p1)→In(p2)
        assert_eq!(
            lm.flows(v0),
            &[
                (HalfPoint(1), HalfPoint(2)),
                (HalfPoint(3), HalfPoint(4))
            ]
        );
        // v0 survives the nop: In(p1) fused with Out(p1).
        let mut part = BitSet::new(lm.num_halves());
        part.insert(1);
        part.insert(2);
        // This part separates In(p1) from Out(p1): not atom-closed, and
        // it crosses no cuttable flow edge.
        assert!(!lm.is_atom_closed(v0, &part));
        assert_eq!(lm.cut_cost(v0, &part), 0);
        part.insert(3);
        // Atom-closed split between the nop and the store: one move.
        assert!(lm.is_atom_closed(v0, &part));
        assert_eq!(lm.cut_cost(v0, &part), 1);
    }

    #[test]
    fn boundary_halves_at_csb() {
        let (_, lm) = map(
            "func f {\nbb0:\n v0 = mov 1\n ctx\n store scratch[v0+0], v0\n halt\n}",
        );
        let v0 = VReg(0);
        let bh: Vec<usize> = lm.boundary_halves(v0).iter().collect();
        // ctx is p1: Out(p1) has index 3.
        assert_eq!(bh, vec![HalfPoint::after(Point(1)).index()]);
    }

    #[test]
    fn load_destination_has_no_boundary_half() {
        let (_, lm) = map(
            "func f {\nbb0:\n v0 = mov 256\n v1 = load sram[v0+0]\n store scratch[v0+0], v1\n halt\n}",
        );
        assert!(lm.boundary_halves(VReg(1)).is_empty(), "transfer-reg rule");
        assert!(!lm.boundary_halves(VReg(0)).is_empty(), "base survives load");
    }

    #[test]
    fn value_consumed_by_csb_not_boundary() {
        let (_, lm) = map(
            "func f {\nbb0:\n v0 = mov 1\n v1 = mov 2\n store scratch[v1+0], v0\n halt\n}",
        );
        assert!(lm.boundary_halves(VReg(0)).is_empty());
        assert!(lm.boundary_halves(VReg(1)).is_empty());
    }

    #[test]
    fn entry_live_marked_boundary() {
        let (info, lm) = map("func f {\nbb0:\n store scratch[v0+0], v0\n halt\n}");
        let entry_in = HalfPoint::before(info.pmap.entry());
        assert!(lm.boundary_halves(VReg(0)).contains(entry_in.index()));
    }

    #[test]
    fn atoms_touching_expands_to_pairs() {
        let (_, lm) = map("func f {\nbb0:\n v0 = mov 1\n nop\n store scratch[v0+0], v0\n halt\n}");
        let v0 = VReg(0);
        // Mask covering only In(p1) (index 2) must pull in Out(p1) (3).
        let mut mask = BitSet::new(lm.num_halves());
        mask.insert(2);
        let atoms = lm.atoms_touching(v0, lm.live(v0), &mask);
        let got: Vec<usize> = atoms.iter().collect();
        assert_eq!(got, vec![2, 3]);
        assert!(lm.is_atom_closed(v0, &atoms) || !atoms.is_subset(lm.live(v0)));
    }

    #[test]
    fn dead_def_occupies_out_half() {
        let (_, lm) = map("func f {\nbb0:\n v0 = mov 1\n halt\n}");
        let pts: Vec<usize> = lm.live(VReg(0)).iter().collect();
        assert_eq!(pts, vec![1], "dead def occupies Out(p0) only");
    }

    #[test]
    fn moves_between_counts_boundary_edges() {
        let (_, lm) = map(
            "func f {\nbb0:\n v0 = mov 1\n nop\n nop\n store scratch[v0+0], v0\n halt\n}",
        );
        let v0 = VReg(0);
        // Split after the first nop: A = {Out(p0), In(p1), Out(p1)},
        // B = {In(p2), Out(p2), In(p3)}.
        let a: BitSet = {
            let mut s = BitSet::new(lm.num_halves());
            s.extend([1usize, 2, 3]);
            s
        };
        let b: BitSet = {
            let mut s = BitSet::new(lm.num_halves());
            s.extend([4usize, 5, 6]);
            s
        };
        assert_eq!(lm.moves_between(v0, &a, &b), 1);
        assert_eq!(lm.cut_cost(v0, &a), 1);
        assert!(lm.is_atom_closed(v0, &a));
        assert!(lm.is_atom_closed(v0, &b));
    }

    #[test]
    fn branch_fans_out_flow_edges() {
        let (_, lm) = map(
            "func f {\nbb0:\n v0 = mov 1\n beq v0, 0, bb1, bb2\nbb1:\n store scratch[v0+0], v0\n halt\nbb2:\n store scratch[v0+4], v0\n halt\n}",
        );
        let v0 = VReg(0);
        // Edges: Out(p0)→In(p1), Out(p1)→In(p2) (bb1), Out(p1)→In(p4) (bb2).
        assert_eq!(lm.flows(v0).len(), 3);
    }
}
