//! Dual-bank register-file diagnostics.
//!
//! The real IXP splits its GPRs into two banks (A and B); an ALU
//! instruction reading **two registers** must take one operand from
//! each bank. The paper deliberately abstracts this away (its model has
//! one uniform file; bank-aware allocation is the subject of George &
//! Blume's PLDI 2003 compiler, the paper's reference [19]). This module
//! provides the companion *diagnostic*: given allocated physical code,
//! decide whether a consistent A/B assignment of the registers exists —
//! i.e. whether the operand-pair graph is bipartite — and produce one,
//! or report an odd cycle that would force fix-up copies.

use regbal_ir::{Func, Inst, Operand, Reg, Terminator};
use std::collections::HashMap;
use std::fmt;

/// One of the two register banks of a banked GPR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bank {
    /// The A bank.
    A,
    /// The B bank.
    B,
}

impl Bank {
    /// The opposite bank.
    pub fn other(self) -> Bank {
        match self {
            Bank::A => Bank::B,
            Bank::B => Bank::A,
        }
    }
}

/// A consistent bank assignment for every physical register that
/// appears as one of a two-register operand pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankAssignment {
    banks: HashMap<u32, Bank>,
}

impl BankAssignment {
    /// The bank of a register; `None` if the register is unconstrained
    /// (never paired with another register in one instruction).
    pub fn bank_of(&self, preg: u32) -> Option<Bank> {
        self.banks.get(&preg).copied()
    }

    /// Number of constrained registers.
    pub fn len(&self) -> usize {
        self.banks.len()
    }

    /// Whether no register is constrained.
    pub fn is_empty(&self) -> bool {
        self.banks.is_empty()
    }
}

/// The operand-pair graph contains an odd cycle: no two-bank split can
/// satisfy every instruction, and a compiler for the banked file would
/// have to insert copy fix-ups (George & Blume's problem).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankConflict {
    /// A register on the odd cycle.
    pub reg: u32,
    /// The neighbouring register that closes the cycle.
    pub with: u32,
}

impl fmt::Display for BankConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "registers r{} and r{} close an odd operand-pair cycle; no A/B split exists",
            self.reg, self.with
        )
    }
}

impl std::error::Error for BankConflict {}

/// Collects the two-register operand pairs of an instruction stream.
fn operand_pairs(funcs: &[Func]) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    let mut add = |a: Reg, b: Reg| {
        if let (Reg::Phys(x), Reg::Phys(y)) = (a, b) {
            if x != y {
                pairs.push((x.0, y.0));
            }
        }
    };
    for f in funcs {
        for (_, _, inst) in f.iter_insts() {
            if let Inst::Bin {
                lhs,
                rhs: Operand::Reg(r),
                ..
            } = inst
            {
                add(*lhs, *r);
            }
        }
        for (_, b) in f.iter_blocks() {
            if let Terminator::Branch {
                lhs,
                rhs: Operand::Reg(r),
                ..
            } = &b.term
            {
                add(*lhs, *r);
            }
        }
    }
    pairs
}

/// Computes a consistent A/B bank assignment for the physical registers
/// of `funcs` (typically the output of
/// [`crate::MultiAllocation::rewrite_funcs`], with all threads passed
/// together since they share the file).
///
/// # Errors
///
/// Returns [`BankConflict`] when the operand-pair graph is not
/// bipartite.
///
/// # Example
///
/// ```
/// use regbal_core::banks::assign_banks;
///
/// let f = regbal_ir::parse_func(
///     "func f {\nbb0:\n r0 = mov 1\n r1 = mov 2\n r2 = add r0, r1\n halt\n}",
/// )?;
/// let banks = assign_banks(std::slice::from_ref(&f))?;
/// assert_ne!(banks.bank_of(0), banks.bank_of(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn assign_banks(funcs: &[Func]) -> Result<BankAssignment, BankConflict> {
    let pairs = operand_pairs(funcs);
    let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(a, b) in &pairs {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default().push(a);
    }
    let mut banks: HashMap<u32, Bank> = HashMap::new();
    let mut regs: Vec<u32> = adj.keys().copied().collect();
    regs.sort_unstable();
    for &start in &regs {
        if banks.contains_key(&start) {
            continue;
        }
        banks.insert(start, Bank::A);
        let mut queue = vec![start];
        while let Some(r) = queue.pop() {
            let bank = banks[&r];
            for &n in &adj[&r] {
                match banks.get(&n) {
                    None => {
                        banks.insert(n, bank.other());
                        queue.push(n);
                    }
                    Some(&nb) if nb == bank => {
                        return Err(BankConflict { reg: r, with: n });
                    }
                    Some(_) => {}
                }
            }
        }
    }
    Ok(BankAssignment { banks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::parse_func;

    #[test]
    fn chain_is_bipartite() {
        let f = parse_func(
            "func f {\nbb0:\n r0 = mov 1\n r1 = mov 2\n r2 = add r0, r1\n r3 = add r1, r2\n halt\n}",
        )
        .unwrap();
        let banks = assign_banks(std::slice::from_ref(&f)).unwrap();
        assert_ne!(banks.bank_of(0), banks.bank_of(1));
        assert_ne!(banks.bank_of(1), banks.bank_of(2));
        assert_eq!(banks.bank_of(0), banks.bank_of(2));
        assert!(!banks.is_empty());
    }

    #[test]
    fn triangle_conflicts() {
        let f = parse_func(
            "func f {\nbb0:\n r0 = mov 1\n r1 = mov 2\n r2 = mov 3\n r3 = add r0, r1\n r3 = add r1, r2\n r3 = add r2, r0\n halt\n}",
        )
        .unwrap();
        let err = assign_banks(std::slice::from_ref(&f)).unwrap_err();
        assert!(err.to_string().contains("odd"), "{err}");
    }

    #[test]
    fn branch_operands_constrain_too() {
        let f = parse_func(
            "func f {\nbb0:\n r0 = mov 1\n r1 = mov 2\n beq r0, r1, bb1, bb1\nbb1:\n halt\n}",
        )
        .unwrap();
        let banks = assign_banks(std::slice::from_ref(&f)).unwrap();
        assert_ne!(banks.bank_of(0), banks.bank_of(1));
    }

    #[test]
    fn unconstrained_registers_have_no_bank() {
        let f = parse_func(
            "func f {\nbb0:\n r0 = mov 1\n r1 = add r0, 3\n store scratch[r1+0], r0\n halt\n}",
        )
        .unwrap();
        // No instruction reads two registers via the ALU path
        // (store/base pairs are memory-path, not banked-ALU reads).
        let banks = assign_banks(std::slice::from_ref(&f)).unwrap();
        assert_eq!(banks.bank_of(0), None);
        assert_eq!(banks.bank_of(1), None);
        assert!(banks.is_empty());
        assert_eq!(banks.len(), 0);
    }

    #[test]
    fn threads_share_one_assignment() {
        let a = parse_func("func a {\nbb0:\n r0 = mov 1\n r2 = add r0, r1\n halt\n}").unwrap();
        let b = parse_func("func b {\nbb0:\n r1 = mov 1\n r3 = add r1, r2\n halt\n}").unwrap();
        let banks = assign_banks(&[a, b]).unwrap();
        // r0-r1 from thread a, r1-r2 from thread b: consistent chain.
        assert_ne!(banks.bank_of(0), banks.bank_of(1));
        assert_ne!(banks.bank_of(1), banks.bank_of(2));
    }

    #[test]
    fn real_allocation_is_usually_bankable() {
        use regbal_ir::parse_func as pf;
        let t = pf(
            "func t {\nbb0:\n v0 = mov 64\n v1 = load sram[v0+0]\n v2 = add v1, 1\n v3 = add v2, v1\n store sram[v0+4], v3\n halt\n}",
        )
        .unwrap();
        let funcs = vec![t.clone(), t];
        let alloc = crate::allocate_threads(&funcs, 16).unwrap();
        let physical = alloc.rewrite_funcs(&funcs);
        // Not guaranteed in general, but this simple chain must split.
        assert!(assign_banks(&physical).is_ok());
    }

    #[test]
    fn bank_other_flips() {
        assert_eq!(Bank::A.other(), Bank::B);
        assert_eq!(Bank::B.other(), Bank::A);
    }
}
