//! Graceful degradation: the cost-aware allocation fallback ladder.
//!
//! The paper's allocator reports failure when balancing cannot fit
//! `Σ PRᵢ + max SRᵢ` into the register file; a production compiler must
//! still emit *something*. This module walks a ladder of strategies,
//! from the paper's balanced allocator down to spilling every value,
//! recording each forced transition as a [`Degradation`] so callers
//! can tell a clean allocation from a degraded one:
//!
//! 1. **balanced** — the inter-thread greedy engine
//!    ([`crate::allocate_threads`]), no spills;
//! 2. **balanced-scratch** — balancing plus spilling, with the cheapest
//!    evictions packed into a small fast shared scratchpad and the
//!    overflow sent to memory
//!    ([`crate::allocate_threads_with_spill_scratch`]);
//! 3. **balanced-spill** — balancing plus last-resort spilling, all
//!    slots in memory ([`crate::allocate_threads_with_spill`]);
//! 4. **fixed-partition** — the stock compiler's model: each thread gets
//!    a private bank of `Nreg / Nthd` registers and a Chaitin allocator
//!    ([`crate::chaitin`]);
//! 5. **spill-all** — every original value lives in memory; only
//!    instruction-local temporaries occupy registers, so Chaitin
//!    coloring converges immediately.
//!
//! The walk is *cost-aware*: before trying anything, the ladder builds
//! a [`PlannedRung`] plan that prices each rung with a static estimate
//! of the spill traffic it would add (excess register pressure times
//! the tier's latency) and sorts the rungs cheapest-first, with ties
//! keeping the canonical order above. Statically infeasible rungs — a
//! scratchpad of zero capacity — are dropped from the plan entirely,
//! so a zero-capacity configuration reproduces the classic four-rung
//! ladder bit for bit. Within a spilling rung, candidates are evicted
//! in ascending static-cost order ([`regbal_analysis::SpillCosts`])
//! and every pick's cost is recorded in the trail
//! ([`LadderAllocation::spill_picks`]).
//!
//! Every rung is bounded: the balanced rungs inherit the caller's
//! [`EngineConfig::max_iterations`] budget, the Chaitin rungs carry
//! their own round caps. When a balanced rung fails with
//! [`AllocError::IterationCapHit`] — a starved budget, not a proof of
//! infeasibility — the ladder retries that rung once with a doubled
//! (still bounded) budget before descending, recording the attempt as
//! a [`RungRetry`]. A rung fails with a structured [`AllocError`] —
//! never a panic — and the ladder either returns the first rung that
//! works (with the trail of [`Degradation`]s and [`RungRetry`]s that
//! led there) or a [`LadderError`] carrying the full trail plus the
//! final error.

use crate::chaitin::{self, ChaitinConfig};
use crate::engine::{allocate_threads_with, EngineConfig, IterationBudget, MultiAllocation};
use crate::error::{AllocError, Degradation, LadderStep, RungRetry};
use crate::hybrid::{
    allocate_threads_with_spill_scratch, allocate_threads_with_spill_seeded, HybridAllocation,
    ScratchParams, SpillPick,
};
use regbal_analysis::ProgramInfo;
use regbal_ir::{Func, MemSpace, Reg, VReg};

/// Default base address of the ladder's spill region (shared with the
/// plain hybrid allocator's default, so single-chip callers see one
/// spill area).
pub const DEFAULT_LADDER_SPILL_BASE: i64 = 0x7_8000;

/// Default scratchpad capacity of the balanced-scratch rung, in 32-bit
/// words shared by the whole thread group.
pub const DEFAULT_SCRATCH_CAPACITY: usize = 16;

/// Byte stride between the spill areas of consecutive ladder rungs.
const RUNG_STRIDE: i64 = 0x1_0000;

/// Byte stride between per-thread spill areas within one rung.
const THREAD_STRIDE: i64 = 0x1000;

/// Per-access latency (cycles) the rung plan charges a scratchpad slot.
const SCRATCH_EST_LATENCY: u64 = 4;

/// Per-access latency (cycles) the rung plan charges a memory slot.
const MEM_EST_LATENCY: u64 = 20;

/// Configuration of the fallback ladder.
#[derive(Debug, Clone)]
pub struct LadderConfig {
    /// Engine knobs (including the iteration budget) used by the
    /// balanced rungs.
    pub engine: EngineConfig,
    /// Memory space holding spill slots for the spilling rungs.
    pub spill_space: MemSpace,
    /// Base address of the ladder's spill region. Each rung uses a
    /// disjoint `0x1_0000`-byte area above this base, with per-thread
    /// sub-areas `0x1000` bytes apart. Callers allocating several
    /// thread groups over one memory (e.g. per-PU) must give each
    /// group a disjoint base.
    pub spill_base: i64,
    /// Base byte address of this group's scratchpad spill area
    /// ([`regbal_ir::MemSpace::Spad`]). Callers allocating several
    /// groups over one scratchpad must give each a disjoint base.
    pub scratch_base: i64,
    /// Scratchpad words available to the balanced-scratch rung. Zero
    /// drops the rung from the plan, reproducing the four-rung ladder.
    pub scratch_capacity: usize,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            engine: EngineConfig::default(),
            spill_space: MemSpace::Sram,
            spill_base: DEFAULT_LADDER_SPILL_BASE,
            scratch_base: 0,
            scratch_capacity: DEFAULT_SCRATCH_CAPACITY,
        }
    }
}

impl LadderConfig {
    /// The spill area base of one rung. The balanced rung never spills,
    /// so the spilling rungs pack from the base: a full ladder occupies
    /// exactly `3 * RUNG_STRIDE` bytes above `spill_base`. The two
    /// balanced-spill rungs share one area — only one rung's output
    /// ever executes, and the scratch rung's memory overflow uses the
    /// same slot numbering as the plain spill rung (that is what makes
    /// a zero-capacity scratchpad bit-identical to balanced-spill).
    fn rung_base(&self, step: LadderStep) -> i64 {
        let rung = match step {
            LadderStep::Balanced | LadderStep::BalancedScratch | LadderStep::BalancedSpill => 0,
            LadderStep::FixedPartition => 1,
            LadderStep::SpillAll => 2,
        };
        self.spill_base + rung * RUNG_STRIDE
    }

    /// The scratchpad tier the balanced-scratch rung spills into.
    fn scratch_params(&self) -> ScratchParams {
        ScratchParams {
            base: self.scratch_base,
            capacity: self.scratch_capacity,
        }
    }
}

/// One rung of the cost-aware plan: the order the ladder will try it
/// in, plus the static cost estimate that put it there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedRung {
    /// The rung.
    pub step: LadderStep,
    /// Estimated cycles of spill traffic the rung would add: excess
    /// register pressure times the latency of the tier its slots live
    /// in (zero for the spill-free balanced rung).
    pub estimate: u64,
}

/// Prices every statically feasible rung and orders them cheapest
/// first; ties keep the canonical top-to-bottom ladder order. The
/// balanced rung is never skipped (its estimate is zero — it adds no
/// spill code), and the plan always ends with at least one
/// guaranteed-to-terminate Chaitin rung, so the walk cannot run dry.
fn plan_rungs(funcs: &[Func], nreg: usize, config: &LadderConfig) -> Vec<PlannedRung> {
    let pressures: Vec<u64> = funcs
        .iter()
        .map(|f| ProgramInfo::compute(f).pressure.regp_max as u64)
        .collect();
    let total: u64 = pressures.iter().sum();
    let excess = total.saturating_sub(nreg as u64);
    let nthd = funcs.len().max(1);
    let k = (nreg / nthd) as u64;
    let cap = config.scratch_capacity as u64;
    let scratch_est = excess.min(cap).saturating_mul(SCRATCH_EST_LATENCY)
        + excess.saturating_sub(cap).saturating_mul(MEM_EST_LATENCY);
    let spill_est = excess.saturating_mul(MEM_EST_LATENCY);
    let partition_est = pressures
        .iter()
        .map(|&p| p.saturating_sub(k))
        .sum::<u64>()
        .saturating_mul(MEM_EST_LATENCY);
    let spill_all_est = funcs
        .iter()
        .map(|f| f.num_vregs as u64)
        .sum::<u64>()
        .saturating_mul(MEM_EST_LATENCY);
    let mut plan = vec![PlannedRung {
        step: LadderStep::Balanced,
        estimate: 0,
    }];
    if config.scratch_capacity > 0 {
        plan.push(PlannedRung {
            step: LadderStep::BalancedScratch,
            estimate: scratch_est,
        });
    }
    plan.push(PlannedRung {
        step: LadderStep::BalancedSpill,
        estimate: spill_est,
    });
    plan.push(PlannedRung {
        step: LadderStep::FixedPartition,
        estimate: partition_est,
    });
    plan.push(PlannedRung {
        step: LadderStep::SpillAll,
        estimate: spill_all_est,
    });
    plan.sort_by_key(|r| (r.estimate, r.step));
    plan
}

/// How the ladder ultimately allocated the threads.
#[derive(Debug, Clone)]
pub enum LadderOutcome {
    /// The balanced engine succeeded with no spills.
    Balanced {
        /// The thread programs (unchanged inputs).
        funcs: Vec<Func>,
        /// The balancing allocation.
        alloc: MultiAllocation,
    },
    /// Balancing succeeded after spilling some live ranges (the
    /// balanced-scratch and balanced-spill rungs both produce this
    /// shape; the [`LadderAllocation::step`] distinguishes them, and
    /// [`HybridAllocation::scratch_spills`] says which slots landed in
    /// the scratchpad tier).
    BalancedSpill(HybridAllocation),
    /// Per-thread Chaitin allocation over fixed `Nreg / Nthd` banks
    /// (the third and fourth rungs both produce this shape; the
    /// [`LadderAllocation::step`] distinguishes them).
    Partitioned {
        /// The thread programs, already rewritten to physical
        /// registers (spill code included).
        funcs: Vec<Func>,
        /// Bank size per thread.
        k: usize,
        /// Live ranges spilled per thread.
        spills: Vec<usize>,
    },
}

/// Per-thread accounting of a ladder allocation, in the shape the
/// paper's tables use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadSummary {
    /// Private registers (bank size for partitioned outcomes).
    pub pr: usize,
    /// Shared registers (zero for partitioned outcomes).
    pub sr: usize,
    /// Split-live-range move instructions inserted.
    pub moves: usize,
    /// Live ranges spilled to memory.
    pub spills: usize,
}

/// A successful walk down the ladder: the first rung that produced a
/// verified allocation, plus the trail of degradations that led there.
#[derive(Debug, Clone)]
pub struct LadderAllocation {
    /// Size of the register file allocated against.
    pub nreg: usize,
    /// The rung that finally succeeded.
    pub step: LadderStep,
    /// The cost-aware plan that ordered the walk: every statically
    /// feasible rung with its estimate, cheapest first.
    pub plan: Vec<PlannedRung>,
    /// Forced transitions, in order (empty for a clean balanced run).
    pub degradations: Vec<Degradation>,
    /// Same-rung budget retries attempted along the way, in order.
    pub retries: Vec<RungRetry>,
    /// The allocation itself.
    pub outcome: LadderOutcome,
}

impl LadderAllocation {
    /// Number of forced fallback transitions (`0` means the primary
    /// balanced strategy succeeded directly).
    pub fn degraded_count(&self) -> usize {
        self.degradations.len()
    }

    /// The balancing allocation, when the ladder stopped on a
    /// balanced rung (used e.g. to derive sanitizer ownership maps).
    pub fn balanced_alloc(&self) -> Option<&MultiAllocation> {
        match &self.outcome {
            LadderOutcome::Balanced { alloc, .. } => Some(alloc),
            LadderOutcome::BalancedSpill(h) => Some(&h.alloc),
            LadderOutcome::Partitioned { .. } => None,
        }
    }

    /// Per-thread count of spill slots living in the scratchpad tier
    /// (all zero unless the balanced-scratch rung won).
    pub fn scratch_spills(&self) -> Vec<usize> {
        match &self.outcome {
            LadderOutcome::Balanced { alloc, .. } => vec![0; alloc.threads.len()],
            LadderOutcome::BalancedSpill(h) => h.scratch_spills.clone(),
            LadderOutcome::Partitioned { funcs, .. } => vec![0; funcs.len()],
        }
    }

    /// Every spill decision of the winning rung in eviction order,
    /// each with the static cost that chose it (empty for spill-free
    /// and partitioned outcomes, whose Chaitin spills are not
    /// cost-ordered).
    pub fn spill_picks(&self) -> &[SpillPick] {
        match &self.outcome {
            LadderOutcome::BalancedSpill(h) => &h.picks,
            _ => &[],
        }
    }

    /// Physical registers consumed by the allocation.
    pub fn registers_used(&self) -> usize {
        match &self.outcome {
            LadderOutcome::Balanced { alloc, .. } => alloc.total_registers(),
            LadderOutcome::BalancedSpill(h) => h.alloc.total_registers(),
            LadderOutcome::Partitioned { funcs, .. } => {
                let mut used = std::collections::BTreeSet::new();
                for f in funcs {
                    let mut note = |r: Reg| {
                        if let Reg::Phys(p) = r {
                            used.insert(p.0);
                        }
                    };
                    for (_, _, inst) in f.iter_insts() {
                        inst.defs().for_each(&mut note);
                        inst.uses().for_each(&mut note);
                    }
                    for (_, b) in f.iter_blocks() {
                        b.term.uses().for_each(&mut note);
                    }
                }
                used.len()
            }
        }
    }

    /// Per-thread `(PR, SR, moves, spills)` accounting.
    pub fn thread_summaries(&self) -> Vec<ThreadSummary> {
        match &self.outcome {
            LadderOutcome::Balanced { alloc, .. } => alloc
                .threads
                .iter()
                .map(|t| ThreadSummary {
                    pr: t.pr(),
                    sr: t.sr(),
                    moves: t.moves(),
                    spills: 0,
                })
                .collect(),
            LadderOutcome::BalancedSpill(h) => h
                .alloc
                .threads
                .iter()
                .zip(&h.spills)
                .map(|(t, &s)| ThreadSummary {
                    pr: t.pr(),
                    sr: t.sr(),
                    moves: t.moves(),
                    spills: s,
                })
                .collect(),
            LadderOutcome::Partitioned { k, spills, .. } => spills
                .iter()
                .map(|&s| ThreadSummary {
                    pr: *k,
                    sr: 0,
                    moves: 0,
                    spills: s,
                })
                .collect(),
        }
    }

    /// Rewrites every thread to physical registers.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidAllocation`] if the stored
    /// allocation does not match its own programs (an internal
    /// invariant violation — surfaced as an error, not a panic).
    pub fn rewrite(&self) -> Result<Vec<Func>, AllocError> {
        match &self.outcome {
            LadderOutcome::Balanced { funcs, alloc } => alloc.try_rewrite_funcs(funcs),
            LadderOutcome::BalancedSpill(h) => h.alloc.try_rewrite_funcs(&h.funcs),
            LadderOutcome::Partitioned { funcs, .. } => Ok(funcs.clone()),
        }
    }
}

/// The ladder ran out of rungs: every strategy failed. Carries the full
/// degradation trail and the last rung's error.
#[derive(Debug, Clone)]
pub struct LadderError {
    /// The transitions that were attempted, in order.
    pub degradations: Vec<Degradation>,
    /// Same-rung budget retries attempted along the way, in order.
    pub retries: Vec<RungRetry>,
    /// The error of the final rung.
    pub error: AllocError,
}

impl std::fmt::Display for LadderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "all ladder rungs failed: {}", self.error)?;
        for d in &self.degradations {
            write!(f, "; {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for LadderError {}

/// Allocates `funcs` over `nreg` registers, degrading gracefully
/// through the fallback ladder with the default configuration.
///
/// # Errors
///
/// Returns [`LadderError`] only when every rung fails (e.g. a register
/// file too small to hold even spill-address temporaries).
pub fn allocate_ladder(funcs: &[Func], nreg: usize) -> Result<LadderAllocation, LadderError> {
    allocate_ladder_with(funcs, nreg, &LadderConfig::default())
}

/// [`allocate_ladder`] with explicit engine/spill configuration.
///
/// # Errors
///
/// Returns [`LadderError`] when every rung fails.
pub fn allocate_ladder_with(
    funcs: &[Func],
    nreg: usize,
    config: &LadderConfig,
) -> Result<LadderAllocation, LadderError> {
    allocate_ladder_seeded(funcs, nreg, config, RungProviders::default())
}

/// Caller-supplied verdicts for the balanced rungs, so a caller that
/// already ran (or cached) the same allocation under the same `funcs`,
/// `nreg`, and engine config can hand it to the ladder instead of
/// paying for the search again. Each provider is consumed on that
/// rung's *first* attempt; the budget-doubling retry always re-runs
/// the engine itself (its budget differs from the cached one).
#[derive(Default)]
pub struct RungProviders<'a> {
    /// Verdict of the balanced rung
    /// ([`crate::allocate_threads_with`] on the unmodified `funcs`).
    pub balanced: Option<Box<dyn FnOnce() -> Result<MultiAllocation, AllocError> + 'a>>,
    /// Verdict of the balanced-scratch rung
    /// ([`crate::allocate_threads_with_spill_scratch`] at this ladder's
    /// rung base and scratch params).
    pub balanced_scratch: Option<Box<dyn FnOnce() -> Result<HybridAllocation, AllocError> + 'a>>,
    /// Verdict of the balanced-spill rung
    /// ([`crate::allocate_threads_with_spill_config`] at this ladder's
    /// rung base).
    pub balanced_spill: Option<Box<dyn FnOnce() -> Result<HybridAllocation, AllocError> + 'a>>,
}

/// [`allocate_ladder_with`], seeding the balanced rungs from
/// [`RungProviders`]. The engine is deterministic, so a correctly keyed
/// provider is behaviour-preserving: the ladder walks the same rungs
/// and returns the same allocation, it just skips recomputing verdicts
/// the caller already holds.
///
/// # Errors
///
/// Returns [`LadderError`] when every rung fails.
pub fn allocate_ladder_seeded(
    funcs: &[Func],
    nreg: usize,
    config: &LadderConfig,
    mut providers: RungProviders<'_>,
) -> Result<LadderAllocation, LadderError> {
    let plan = plan_rungs(funcs, nreg, config);
    let mut degradations: Vec<Degradation> = Vec::new();
    let mut retries: Vec<RungRetry> = Vec::new();
    let mut idx = 0;
    loop {
        let step = plan[idx].step;
        let result = match step {
            LadderStep::Balanced => match providers.balanced.take() {
                Some(provider) => provider().map(|alloc| LadderOutcome::Balanced {
                    funcs: funcs.to_vec(),
                    alloc,
                }),
                None => run_rung(funcs, nreg, config, step, config.engine),
            },
            LadderStep::BalancedScratch => match providers.balanced_scratch.take() {
                Some(provider) => provider().map(LadderOutcome::BalancedSpill),
                None => run_rung(funcs, nreg, config, step, config.engine),
            },
            LadderStep::BalancedSpill => match providers.balanced_spill.take() {
                Some(provider) => provider().map(LadderOutcome::BalancedSpill),
                None => run_rung(funcs, nreg, config, step, config.engine),
            },
            _ => run_rung(funcs, nreg, config, step, config.engine),
        };
        // Partial-rung retry: a starved budget is not a proof of
        // infeasibility, so before descending, re-run the rung once
        // with a doubled (still bounded) budget. A cap of zero is the
        // ladder's own "skip the balanced rungs" idiom and is honored
        // as-is.
        let result = match result {
            Err(AllocError::IterationCapHit { cap, .. })
                if cap > 0
                    && matches!(
                        step,
                        LadderStep::Balanced
                            | LadderStep::BalancedScratch
                            | LadderStep::BalancedSpill
                    ) =>
            {
                let retry_cap = cap.saturating_mul(2);
                let retried = run_rung(
                    funcs,
                    nreg,
                    config,
                    step,
                    EngineConfig {
                        max_iterations: IterationBudget::Fixed(retry_cap),
                        ..config.engine
                    },
                );
                retries.push(RungRetry {
                    step,
                    cap,
                    retry_cap,
                    recovered: retried.is_ok(),
                });
                retried
            }
            other => other,
        };
        match result {
            Ok(outcome) => {
                return Ok(LadderAllocation {
                    nreg,
                    step,
                    plan,
                    degradations,
                    retries,
                    outcome,
                })
            }
            Err(error) => {
                idx += 1;
                match plan.get(idx) {
                    Some(next) => {
                        degradations.push(Degradation {
                            from: step,
                            to: next.step,
                            reason: error,
                        });
                    }
                    None => {
                        return Err(LadderError {
                            degradations,
                            retries,
                            error,
                        })
                    }
                }
            }
        }
    }
}

/// Runs one rung of the ladder with an explicit engine config (the
/// budget-doubling retry passes a different budget than `config`'s).
fn run_rung(
    funcs: &[Func],
    nreg: usize,
    config: &LadderConfig,
    step: LadderStep,
    engine: EngineConfig,
) -> Result<LadderOutcome, AllocError> {
    match step {
        LadderStep::Balanced => {
            let alloc = allocate_threads_with(funcs, nreg, engine)?;
            Ok(LadderOutcome::Balanced {
                funcs: funcs.to_vec(),
                alloc,
            })
        }
        LadderStep::BalancedScratch => {
            let hybrid = allocate_threads_with_spill_scratch(
                funcs,
                nreg,
                config.rung_base(step),
                engine,
                None,
                &config.scratch_params(),
                None,
            )?;
            Ok(LadderOutcome::BalancedSpill(hybrid))
        }
        LadderStep::BalancedSpill => {
            let hybrid = allocate_threads_with_spill_seeded(
                funcs,
                nreg,
                config.rung_base(step),
                engine,
                None,
            )?;
            Ok(LadderOutcome::BalancedSpill(hybrid))
        }
        LadderStep::FixedPartition => partitioned_rung(funcs, nreg, config, step, false),
        LadderStep::SpillAll => partitioned_rung(funcs, nreg, config, step, true),
    }
}

/// The two Chaitin rungs: fixed `Nreg / Nthd` banks per thread, with
/// (`spill_all`) or without pre-spilling every original live range.
fn partitioned_rung(
    funcs: &[Func],
    nreg: usize,
    config: &LadderConfig,
    step: LadderStep,
    spill_all: bool,
) -> Result<LadderOutcome, AllocError> {
    let nthd = funcs.len().max(1);
    let k = nreg / nthd;
    if k == 0 {
        return Err(AllocError::Infeasible {
            needed: nthd,
            available: nreg,
        });
    }
    let rung = config.rung_base(step);
    let mut physical = Vec::with_capacity(funcs.len());
    let mut spills = vec![0usize; funcs.len()];
    for (t, func) in funcs.iter().enumerate() {
        let area = rung + (t as i64) * THREAD_STRIDE;
        let mut work = func.clone();
        if spill_all {
            // Evict every original value to its own slot; the lower
            // half of the thread area holds these, the upper half is
            // left for any residual Chaitin spills.
            for v in 0..func.num_vregs {
                spills[t] += 1;
                chaitin::insert_spill_code(
                    &mut work,
                    VReg(v),
                    area + (v as i64) * 4,
                    config.spill_space,
                );
            }
        }
        let chaitin_cfg = ChaitinConfig {
            k,
            phys_base: (t * k) as u32,
            spill_space: config.spill_space,
            spill_base: area + THREAD_STRIDE / 2,
        };
        let result = chaitin::allocate(&work, &chaitin_cfg)?;
        spills[t] += result.spilled;
        verify_partition(&result.func, t, k)?;
        physical.push(result.func);
    }
    Ok(LadderOutcome::Partitioned {
        funcs: physical,
        k,
        spills,
    })
}

/// Checks that a rewritten thread stays inside its private bank
/// `[t·k, (t+1)·k)` and holds no residual virtual registers.
fn verify_partition(func: &Func, t: usize, k: usize) -> Result<(), AllocError> {
    let lo = (t * k) as u32;
    let hi = ((t + 1) * k) as u32;
    let mut bad: Option<String> = None;
    let mut check = |r: Reg| match r {
        Reg::Phys(p) if p.0 < lo || p.0 >= hi => {
            bad.get_or_insert_with(|| {
                format!("thread {t} uses {p} outside its bank [{lo}, {hi})")
            });
        }
        Reg::Virt(v) => {
            bad.get_or_insert_with(|| format!("thread {t} still uses virtual register {v}"));
        }
        _ => {}
    };
    for (_, _, inst) in func.iter_insts() {
        inst.defs().for_each(&mut check);
        inst.uses().for_each(&mut check);
    }
    for (_, b) in func.iter_blocks() {
        b.term.uses().for_each(&mut check);
    }
    match bad {
        Some(reason) => Err(AllocError::InvalidAllocation { reason }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::parse_func;

    fn easy() -> Func {
        parse_func(
            "func e {\nbb0:\n v0 = mov 1\n ctx\n v1 = add v0, 1\n store scratch[v1+0], v0\n halt\n}",
        )
        .unwrap()
    }

    /// Five co-live values across a switch — MinPR 5 per thread.
    fn hot() -> Func {
        parse_func(
            "
func hot {
bb0:
    v0 = mov 1
    v1 = mov 2
    v2 = mov 3
    v3 = mov 4
    v4 = mov 5
    ctx
    v5 = add v0, v1
    v5 = add v5, v2
    v5 = add v5, v3
    v5 = add v5, v4
    store scratch[v5+0], v5
    halt
}",
        )
        .unwrap()
    }

    #[test]
    fn clean_run_stays_on_the_top_rung() {
        let funcs = vec![easy(), easy()];
        let a = allocate_ladder(&funcs, 16).unwrap();
        assert_eq!(a.step, LadderStep::Balanced);
        assert_eq!(a.degraded_count(), 0);
        assert!(a.registers_used() <= 16);
        let physical = a.rewrite().unwrap();
        for f in &physical {
            f.validate().unwrap();
        }
        let sums = a.thread_summaries();
        assert_eq!(sums.len(), 2);
        assert!(sums.iter().all(|s| s.spills == 0));
    }

    #[test]
    fn infeasible_budget_degrades_to_the_scratch_rung() {
        let funcs = vec![hot(), hot()];
        // 2 × MinPR = 10 > 8: balancing alone cannot fit, and the
        // scratchpad tier is the next-cheapest rung.
        let a = allocate_ladder(&funcs, 8).unwrap();
        assert_eq!(a.step, LadderStep::BalancedScratch);
        assert_eq!(a.degraded_count(), 1);
        assert_eq!(a.degradations[0].from, LadderStep::Balanced);
        assert_eq!(a.degradations[0].to, LadderStep::BalancedScratch);
        assert!(matches!(
            a.degradations[0].reason,
            AllocError::Infeasible { .. }
        ));
        assert!(a.thread_summaries().iter().any(|s| s.spills > 0));
        // Few spills, generous default capacity: every slot is fast.
        assert!(a.scratch_spills().iter().sum::<usize>() > 0);
        assert!(a.spill_picks().iter().all(|p| p.to_scratch));
        for f in a.rewrite().unwrap() {
            f.validate().unwrap();
        }
    }

    #[test]
    fn zero_capacity_config_reproduces_the_four_rung_ladder() {
        let funcs = vec![hot(), hot()];
        let config = LadderConfig {
            scratch_capacity: 0,
            ..LadderConfig::default()
        };
        let a = allocate_ladder_with(&funcs, 8, &config).unwrap();
        assert_eq!(a.step, LadderStep::BalancedSpill);
        assert_eq!(a.degradations[0].to, LadderStep::BalancedSpill);
        assert!(a.plan.iter().all(|r| r.step != LadderStep::BalancedScratch));
        assert!(a.scratch_spills().iter().all(|&s| s == 0));
        for f in a.rewrite().unwrap() {
            f.validate().unwrap();
        }
    }

    #[test]
    fn the_plan_prices_rungs_and_orders_cheapest_first() {
        let funcs = vec![hot(), hot()];
        let a = allocate_ladder(&funcs, 8).unwrap();
        // Every rung planned, cheapest first, canonical order on ties.
        assert_eq!(a.plan.len(), 5);
        assert_eq!(a.plan[0].step, LadderStep::Balanced);
        assert_eq!(a.plan[0].estimate, 0);
        for w in a.plan.windows(2) {
            assert!((w[0].estimate, w[0].step) <= (w[1].estimate, w[1].step));
        }
        // The excess pressure fits the default scratch capacity, so
        // the scratch tier is priced at 4 cycles a slot against 20
        // for memory.
        let excess: u64 = funcs
            .iter()
            .map(|f| ProgramInfo::compute(f).pressure.regp_max as u64)
            .sum::<u64>()
            - 8;
        assert!(excess > 0 && excess <= DEFAULT_SCRATCH_CAPACITY as u64);
        let est = |step: LadderStep| a.plan.iter().find(|r| r.step == step).unwrap().estimate;
        assert_eq!(est(LadderStep::BalancedScratch), excess * 4);
        assert_eq!(est(LadderStep::BalancedSpill), excess * 20);
        assert!(est(LadderStep::BalancedScratch) < est(LadderStep::BalancedSpill));
    }

    #[test]
    fn starved_iteration_budget_falls_through_to_partitioning() {
        let funcs = vec![hot(), hot()];
        let config = LadderConfig {
            engine: EngineConfig {
                max_iterations: IterationBudget::Fixed(0),
                ..EngineConfig::default()
            },
            ..LadderConfig::default()
        };
        // A file just below the zero-work demand forces reduction
        // steps; cap 0 starves both balanced rungs, while Chaitin
        // doesn't iterate the greedy engine and still delivers.
        let zero_work = allocate_ladder(&funcs, 64).unwrap();
        let nreg = zero_work.registers_used() - 1;
        let a = allocate_ladder_with(&funcs, nreg, &config).unwrap();
        assert_eq!(a.step, LadderStep::FixedPartition);
        assert_eq!(a.degraded_count(), 3);
        assert!(a
            .degradations
            .iter()
            .all(|d| matches!(d.reason, AllocError::IterationCapHit { .. })));
        // A zero budget is the deliberate "skip the balanced rungs"
        // idiom: doubling zero is still zero, so no retry is recorded.
        assert!(a.retries.is_empty());
        let k = nreg / funcs.len();
        for (t, f) in a.rewrite().unwrap().iter().enumerate() {
            f.validate().unwrap();
            verify_partition(f, t, k).unwrap();
        }
    }

    /// A loop whose boundary live ranges form an odd cycle plus a
    /// universal counter (`MaxPR > MinPR`): the greedy loop has real
    /// reduction work to do, so iteration budgets actually bind.
    fn odd_cycle() -> Func {
        parse_func(
            "func c5 {\nbb0:\n v9 = mov 10\n v4 = mov 44\n jump bb1\nbb1:\n v0 = mov 5\n ctx\n store scratch[v4+0], v4\n v1 = mov 1\n ctx\n store scratch[v0+0], v0\n v2 = mov 2\n ctx\n store scratch[v1+0], v1\n v3 = mov 3\n ctx\n store scratch[v2+0], v2\n v4 = mov 4\n ctx\n store scratch[v3+0], v3\n v9 = sub v9, 1\n bne v9, 0, bb1, bb2\nbb2:\n halt\n}",
        )
        .unwrap()
    }

    /// A register-file size where balancing `funcs` succeeds but needs
    /// at least `min_iters` committed reduction steps, plus that
    /// step count.
    fn feasible_size_with_work(funcs: &[Func], min_iters: usize) -> (usize, usize) {
        use crate::engine::allocate_threads_stats;
        for nreg in (8..=64).rev() {
            if let Ok((_, stats)) = allocate_threads_stats(funcs, nreg, EngineConfig::uncapped())
            {
                if stats.iterations >= min_iters {
                    return (nreg, stats.iterations);
                }
            }
        }
        panic!("no feasible size with >= {min_iters} iterations");
    }

    #[test]
    fn a_starved_budget_recovers_via_the_doubled_retry() {
        let funcs = vec![odd_cycle(), odd_cycle(), odd_cycle(), odd_cycle()];
        let (nreg, iters) = feasible_size_with_work(&funcs, 2);
        // Half the needed budget starves the first attempt; the
        // doubled retry covers the full descent, so the ladder settles
        // on the top rung with no degradations — only a retry record.
        let cap = (iters + 1) / 2;
        let config = LadderConfig {
            engine: EngineConfig {
                max_iterations: IterationBudget::Fixed(cap),
                ..EngineConfig::default()
            },
            ..LadderConfig::default()
        };
        let a = allocate_ladder_with(&funcs, nreg, &config).unwrap();
        assert_eq!(a.step, LadderStep::Balanced);
        assert_eq!(a.degraded_count(), 0);
        assert_eq!(
            a.retries,
            vec![RungRetry {
                step: LadderStep::Balanced,
                cap,
                retry_cap: cap * 2,
                recovered: true,
            }]
        );
    }

    #[test]
    fn an_unrecoverable_budget_retries_each_balanced_rung_once() {
        let funcs = vec![odd_cycle(), odd_cycle(), odd_cycle(), odd_cycle()];
        let (nreg, iters) = feasible_size_with_work(&funcs, 3);
        assert!(iters > 2);
        // A budget of one starves both attempts of all three balanced
        // rungs (the doubled retry cap of two is still below the
        // need), so the ladder descends to partitioning with three
        // failed retries on record, and the degradation reasons carry
        // the retry cap.
        let config = LadderConfig {
            engine: EngineConfig {
                max_iterations: IterationBudget::Fixed(1),
                ..EngineConfig::default()
            },
            ..LadderConfig::default()
        };
        let a = allocate_ladder_with(&funcs, nreg, &config).unwrap();
        assert_eq!(a.step, LadderStep::FixedPartition);
        assert_eq!(
            a.retries
                .iter()
                .map(|r| (r.step, r.cap, r.retry_cap, r.recovered))
                .collect::<Vec<_>>(),
            vec![
                (LadderStep::Balanced, 1, 2, false),
                (LadderStep::BalancedScratch, 1, 2, false),
                (LadderStep::BalancedSpill, 1, 2, false),
            ]
        );
        assert!(a
            .degradations
            .iter()
            .take(3)
            .all(|d| matches!(d.reason, AllocError::IterationCapHit { cap: 2, .. })));
    }

    #[test]
    fn seeded_providers_reproduce_the_unseeded_walk() {
        let funcs = vec![hot(), hot()];
        // Infeasible for pure balancing at 8 registers: the ladder
        // lands on balanced-scratch either way.
        let plain = allocate_ladder(&funcs, 8).unwrap();
        assert_eq!(plain.step, LadderStep::BalancedScratch);
        let config = LadderConfig::default();
        let providers = RungProviders {
            balanced: Some(Box::new(|| {
                allocate_threads_with(&funcs, 8, config.engine)
            })),
            balanced_scratch: None,
            balanced_spill: None,
        };
        let seeded = allocate_ladder_seeded(&funcs, 8, &config, providers).unwrap();
        assert_eq!(seeded.step, plain.step);
        assert_eq!(seeded.degraded_count(), plain.degraded_count());
        assert_eq!(seeded.rewrite().unwrap(), plain.rewrite().unwrap());
    }

    #[test]
    fn spill_all_rung_evicts_everything_and_verifies() {
        let funcs = vec![hot(), hot()];
        let outcome =
            partitioned_rung(&funcs, 16, &LadderConfig::default(), LadderStep::SpillAll, true)
                .unwrap();
        let LadderOutcome::Partitioned { funcs: phys, k, spills } = outcome else {
            panic!("partitioned outcome expected");
        };
        assert_eq!(k, 8);
        // Every original value was evicted.
        assert!(spills.iter().all(|&s| s >= hot().num_vregs as usize));
        for (t, f) in phys.iter().enumerate() {
            f.validate().unwrap();
            verify_partition(f, t, k).unwrap();
        }
    }

    #[test]
    fn exhausted_ladder_reports_the_full_trail() {
        let funcs = vec![hot(), hot()];
        // One register per thread cannot even hold a spill address plus
        // a value: every rung fails.
        let err = allocate_ladder(&funcs, 2).unwrap_err();
        assert_eq!(err.degradations.len(), 4);
        let steps: Vec<_> = err.degradations.iter().map(|d| (d.from, d.to)).collect();
        assert_eq!(
            steps,
            vec![
                (LadderStep::Balanced, LadderStep::BalancedScratch),
                (LadderStep::BalancedScratch, LadderStep::BalancedSpill),
                (LadderStep::BalancedSpill, LadderStep::FixedPartition),
                (LadderStep::FixedPartition, LadderStep::SpillAll),
            ]
        );
        let text = err.to_string();
        assert!(text.contains("all ladder rungs failed"), "{text}");
    }

    #[test]
    fn spilling_rung_areas_are_disjoint_and_packed() {
        let c = LadderConfig::default();
        let bases: Vec<i64> = [
            LadderStep::BalancedSpill,
            LadderStep::FixedPartition,
            LadderStep::SpillAll,
        ]
        .iter()
        .map(|&s| c.rung_base(s))
        .collect();
        for w in bases.windows(2) {
            assert_eq!(w[1] - w[0], RUNG_STRIDE);
        }
        assert_eq!(bases[0], c.spill_base, "first spilling rung packs at the base");
        // The scratch rung's memory overflow shares the plain spill
        // rung's area (only one rung's output ever executes), keeping
        // the ladder's footprint at three strides.
        assert_eq!(
            c.rung_base(LadderStep::BalancedScratch),
            c.rung_base(LadderStep::BalancedSpill)
        );
    }
}
