//! Chaitin-style graph-coloring register allocation with spilling — the
//! baseline the paper's evaluation compares against (the stock compiler
//! gives each thread a fixed 32-register partition and spills when it
//! runs out; spills are memory operations that cost a context switch).
//!
//! Standard Chaitin-Briggs: build the interference graph, simplify
//! (remove nodes of degree `< k`), optimistically push potential spills,
//! color on pop, insert spill code for the failures, repeat.
//!
//! Spill code addresses its slot by materialising the address in a
//! fresh temporary (`tmp = mov slot; store sram[tmp+0], v`), because the
//! ISA has no absolute addressing; this mirrors real IXP microcode,
//! where spill addresses also occupy a register.

use crate::error::AllocError;
use regbal_analysis::ProgramInfo;
use regbal_igraph::build_gig;
use regbal_ir::{
    Func, Inst, MemSpace, Operand, PReg, Reg, UnOp, VReg,
};

/// Configuration of the baseline allocator.
#[derive(Debug, Clone)]
pub struct ChaitinConfig {
    /// Colors (physical registers) available to this thread.
    pub k: usize,
    /// First physical register of the thread's bank.
    pub phys_base: u32,
    /// Memory space for spill slots.
    pub spill_space: MemSpace,
    /// Base byte address of the spill area.
    pub spill_base: i64,
}

impl ChaitinConfig {
    /// The paper's stock setup: a fixed bank of 32 registers per thread.
    pub fn fixed_partition(thread: usize) -> ChaitinConfig {
        ChaitinConfig {
            k: 32,
            phys_base: (thread * 32) as u32,
            spill_space: MemSpace::Sram,
            spill_base: 0x1_0000 + (thread as i64) * 0x1000,
        }
    }
}

/// Result of the baseline allocation.
#[derive(Debug, Clone)]
pub struct ChaitinResult {
    /// The function rewritten to physical registers, with spill code.
    pub func: Func,
    /// Virtual registers that were spilled to memory.
    pub spilled: usize,
    /// Spill reload (`load`) instructions inserted.
    pub spill_loads: usize,
    /// Spill store instructions inserted.
    pub spill_stores: usize,
    /// Build–spill rounds needed to converge.
    pub rounds: usize,
}

const MAX_ROUNDS: usize = 24;

/// Allocates `func` with `config.k` registers, spilling as needed.
///
/// # Errors
///
/// Returns [`AllocError::SpillDiverged`] if spilling fails to converge
/// within a bounded number of rounds (pathological inputs only).
///
/// # Example
///
/// ```
/// use regbal_core::chaitin::{allocate, ChaitinConfig};
///
/// let f = regbal_ir::parse_func(
///     "func f {\nbb0:\n v0 = mov 1\n v1 = add v0, 2\n store scratch[v1+0], v1\n halt\n}",
/// )?;
/// let result = allocate(&f, &ChaitinConfig::fixed_partition(0))?;
/// assert_eq!(result.spilled, 0);
/// assert_eq!(result.func.num_vregs, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn allocate(func: &Func, config: &ChaitinConfig) -> Result<ChaitinResult, AllocError> {
    let mut work = func.clone();
    // A wide burst defines (or reads) all its registers at one instant —
    // an unspillable clique. With a small bank, real microcode issues
    // narrower bursts; mirror that before coloring.
    let burst_cap = (config.k / 3).clamp(2, regbal_ir::MAX_BURST);
    split_wide_bursts(&mut work, burst_cap);
    let original_vregs = func.num_vregs;
    let mut spilled_total = 0usize;
    let mut spill_loads = 0usize;
    let mut spill_stores = 0usize;
    let mut next_slot = 0i64;
    let mut already_spilled: Vec<bool> = vec![false; original_vregs as usize];

    for round in 1..=MAX_ROUNDS {
        let info = ProgramInfo::compute(&work);
        let gig = build_gig(&info);
        let nv = work.num_vregs as usize;

        // Occurrence counts for the spill metric.
        let mut occurrences = vec![0usize; nv];
        let mut count = |r: Reg| {
            if let Reg::Virt(v) = r {
                occurrences[v.index()] += 1;
            }
        };
        for (_, _, inst) in work.iter_insts() {
            inst.defs().for_each(&mut count);
            inst.uses().for_each(&mut count);
        }
        for (_, b) in work.iter_blocks() {
            b.term.uses().for_each(&mut count);
        }

        let live: Vec<bool> = (0..nv).map(|v| occurrences[v] > 0).collect();
        let colors = color_with_spills(&gig, &live, config.k, |v| {
            // Spill-generated temporaries and already-spilled ranges get
            // infinite cost: re-spilling them cannot relieve pressure.
            if (v as u32) >= original_vregs || already_spilled[v] {
                f64::INFINITY
            } else {
                occurrences[v] as f64 / (gig.degree(v).max(1) as f64)
            }
        });

        let to_spill: Vec<VReg> = colors
            .iter()
            .enumerate()
            .filter(|&(v, c)| live[v] && c.is_none())
            .map(|(v, _)| VReg(v as u32))
            .collect();

        if to_spill.is_empty() {
            let rewritten = apply_colors(&work, &colors, config.phys_base);
            return Ok(ChaitinResult {
                func: rewritten,
                spilled: spilled_total,
                spill_loads,
                spill_stores,
                rounds: round,
            });
        }
        if to_spill.iter().any(|v| v.0 >= original_vregs) {
            return Err(AllocError::SpillDiverged { rounds: round });
        }
        spilled_total += to_spill.len();
        for v in to_spill {
            already_spilled[v.index()] = true;
            let slot = config.spill_base + next_slot;
            next_slot += 4;
            let (l, s) = insert_spill_code(&mut work, v, slot, config.spill_space);
            spill_loads += l;
            spill_stores += s;
        }
    }
    Err(AllocError::SpillDiverged { rounds: MAX_ROUNDS })
}

/// Chaitin-Briggs simplify/select. Returns a color `< k` per live node
/// or `None` for actual spills.
fn color_with_spills(
    gig: &regbal_igraph::Graph,
    live: &[bool],
    k: usize,
    spill_cost: impl Fn(usize) -> f64,
) -> Vec<Option<u32>> {
    let n = gig.len();
    let mut in_graph: Vec<bool> = live.to_vec();
    let degree = |v: usize, in_graph: &[bool]| {
        gig.neighbors(v).iter().filter(|&n| in_graph[n]).count()
    };
    let mut stack = Vec::with_capacity(n);
    loop {
        // Simplify: remove a trivially colorable node.
        if let Some(v) = (0..n).find(|&v| in_graph[v] && degree(v, &in_graph) < k) {
            in_graph[v] = false;
            stack.push(v);
            continue;
        }
        // Optimistic potential spill: cheapest remaining node.
        let Some(v) = (0..n)
            .filter(|&v| in_graph[v])
            .min_by(|&a, &b| {
                spill_cost(a)
                    .partial_cmp(&spill_cost(b))
                    .expect("spill costs are comparable")
            })
        else {
            break;
        };
        in_graph[v] = false;
        stack.push(v);
    }

    let mut colors: Vec<Option<u32>> = vec![None; n];
    while let Some(v) = stack.pop() {
        let used: Vec<u32> = gig.neighbors(v).iter().filter_map(|n| colors[n]).collect();
        colors[v] = (0..k as u32).find(|c| !used.contains(c));
    }
    colors
}

/// Splits burst memory operations wider than `max_len` words into
/// consecutive narrower bursts (each still a single context-switching
/// memory operation).
fn split_wide_bursts(func: &mut Func, max_len: usize) {
    for block in &mut func.blocks {
        let mut insts = Vec::with_capacity(block.insts.len());
        for inst in std::mem::take(&mut block.insts) {
            match inst {
                Inst::LoadBurst {
                    dsts,
                    base,
                    offset,
                    space,
                } if dsts.len() > max_len => {
                    for (i, chunk) in dsts.chunks(max_len).enumerate() {
                        insts.push(Inst::LoadBurst {
                            dsts: chunk.to_vec(),
                            base,
                            offset: offset + (i * max_len * 4) as i64,
                            space,
                        });
                    }
                }
                Inst::StoreBurst {
                    srcs,
                    base,
                    offset,
                    space,
                } if srcs.len() > max_len => {
                    for (i, chunk) in srcs.chunks(max_len).enumerate() {
                        insts.push(Inst::StoreBurst {
                            srcs: chunk.to_vec(),
                            base,
                            offset: offset + (i * max_len * 4) as i64,
                            space,
                        });
                    }
                }
                other => insts.push(other),
            }
        }
        block.insts = insts;
    }
}

/// Rewrites all virtual registers to `phys_base + color`.
fn apply_colors(func: &Func, colors: &[Option<u32>], phys_base: u32) -> Func {
    let map = |r: Reg| -> Reg {
        match r {
            Reg::Virt(v) => {
                let c = colors[v.index()].expect("colored before rewrite");
                Reg::Phys(PReg(phys_base + c))
            }
            phys => phys,
        }
    };
    let mut out = func.clone();
    for block in &mut out.blocks {
        for inst in &mut block.insts {
            inst.map_uses(map);
            inst.map_defs(map);
        }
        block.term.map_uses(map);
    }
    out.num_vregs = 0;
    out.validate().expect("rewritten function must be valid");
    out
}

/// Rewrites `func` so that `v` lives in memory slot `slot`: a store
/// after every definition, a reload into a fresh temporary before every
/// use. Returns `(loads, stores)` inserted.
pub fn insert_spill_code(func: &mut Func, v: VReg, slot: i64, space: MemSpace) -> (usize, usize) {
    let mut loads = 0usize;
    let mut stores = 0usize;
    let mut next_vreg = func.num_vregs;
    let mut fresh = || {
        let r = VReg(next_vreg);
        next_vreg += 1;
        r
    };

    for block in &mut func.blocks {
        let mut insts = Vec::with_capacity(block.insts.len());
        for mut inst in std::mem::take(&mut block.insts) {
            let uses_v = inst.uses().any(|r| r == Reg::Virt(v));
            if uses_v {
                let addr = fresh();
                let tmp = fresh();
                insts.push(Inst::Un {
                    op: UnOp::Mov,
                    dst: Reg::Virt(addr),
                    src: Operand::Imm(slot),
                });
                insts.push(Inst::Load {
                    dst: Reg::Virt(tmp),
                    base: Reg::Virt(addr),
                    offset: 0,
                    space,
                });
                loads += 1;
                inst.map_uses(|r| if r == Reg::Virt(v) { Reg::Virt(tmp) } else { r });
            }
            let defs_v = inst.defs().any(|r| r == Reg::Virt(v));
            insts.push(inst);
            if defs_v {
                let addr = fresh();
                insts.push(Inst::Un {
                    op: UnOp::Mov,
                    dst: Reg::Virt(addr),
                    src: Operand::Imm(slot),
                });
                insts.push(Inst::Store {
                    src: Reg::Virt(v),
                    base: Reg::Virt(addr),
                    offset: 0,
                    space,
                });
                stores += 1;
            }
        }
        // Terminator uses reload at the end of the block.
        if block.term.uses().any(|r| r == Reg::Virt(v)) {
            let addr = fresh();
            let tmp = fresh();
            insts.push(Inst::Un {
                op: UnOp::Mov,
                dst: Reg::Virt(addr),
                src: Operand::Imm(slot),
            });
            insts.push(Inst::Load {
                dst: Reg::Virt(tmp),
                base: Reg::Virt(addr),
                offset: 0,
                space,
            });
            loads += 1;
            block
                .term
                .map_uses(|r| if r == Reg::Virt(v) { Reg::Virt(tmp) } else { r });
        }
        block.insts = insts;
    }
    func.num_vregs = next_vreg;
    (loads, stores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::parse_func;

    #[test]
    fn no_spill_when_registers_suffice() {
        let f = parse_func(
            "func f {\nbb0:\n v0 = mov 1\n v1 = mov 2\n v2 = add v0, v1\n store scratch[v2+0], v2\n halt\n}",
        )
        .unwrap();
        let r = allocate(&f, &ChaitinConfig::fixed_partition(0)).unwrap();
        assert_eq!(r.spilled, 0);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.func.num_vregs, 0);
        assert_eq!(r.func.num_insts(), f.num_insts());
    }

    #[test]
    fn spills_when_pressure_exceeds_k() {
        // Five co-live values, two registers.
        let src = "
func hot {
bb0:
    v0 = mov 1
    v1 = mov 2
    v2 = mov 3
    v3 = mov 4
    v4 = mov 5
    v5 = add v0, v1
    v5 = add v5, v2
    v5 = add v5, v3
    v5 = add v5, v4
    store scratch[v5+0], v5
    halt
}";
        let f = parse_func(src).unwrap();
        let cfg = ChaitinConfig {
            k: 2,
            phys_base: 0,
            spill_space: MemSpace::Sram,
            spill_base: 0x8000,
        };
        let r = allocate(&f, &cfg).unwrap();
        assert!(r.spilled >= 3, "spilled {}", r.spilled);
        assert!(r.spill_loads > 0 && r.spill_stores > 0);
        assert!(r.func.num_ctx_insts() > f.num_ctx_insts());
        r.func.validate().unwrap();
    }

    #[test]
    fn colors_respect_k() {
        let src = "
func mid {
bb0:
    v0 = mov 1
    v1 = mov 2
    v2 = mov 3
    v3 = add v0, v1
    v3 = add v3, v2
    store scratch[v3+0], v3
    halt
}";
        let f = parse_func(src).unwrap();
        let cfg = ChaitinConfig {
            k: 3,
            phys_base: 10,
            spill_space: MemSpace::Sram,
            spill_base: 0,
        };
        let r = allocate(&f, &cfg).unwrap();
        // Every physical register must come from the bank 10..13, unless
        // spilling introduced temporaries (still inside the bank).
        for (_, _, inst) in r.func.iter_insts() {
            let check = |reg: Reg| {
                if let Reg::Phys(p) = reg {
                    assert!((10..13).contains(&p.0), "register {p} outside bank");
                }
            };
            inst.defs().for_each(check);
            inst.uses().for_each(check);
        }
    }

    #[test]
    fn loop_pressure_spills_converge() {
        // A loop with more co-live accumulators than registers.
        let src = "
func loopy {
bb0:
    v0 = mov 0
    v1 = mov 1
    v2 = mov 2
    v3 = mov 3
    v4 = mov 100
    jump bb1
bb1:
    v0 = add v0, v1
    v1 = add v1, v2
    v2 = add v2, v3
    v3 = add v3, 1
    v4 = sub v4, 1
    bne v4, 0, bb1, bb2
bb2:
    store scratch[v0+0], v1
    halt
}";
        let f = parse_func(src).unwrap();
        let cfg = ChaitinConfig {
            k: 3,
            phys_base: 0,
            spill_space: MemSpace::Sram,
            spill_base: 0,
        };
        let r = allocate(&f, &cfg).unwrap();
        assert!(r.spilled > 0);
        r.func.validate().unwrap();
    }

    #[test]
    fn fixed_partition_banks() {
        let c0 = ChaitinConfig::fixed_partition(0);
        let c2 = ChaitinConfig::fixed_partition(2);
        assert_eq!(c0.phys_base, 0);
        assert_eq!(c2.phys_base, 64);
        assert_eq!(c0.k, 32);
        assert_ne!(c0.spill_base, c2.spill_base);
    }
}
