//! Symmetric register allocation (paper §8).
//!
//! When all `Nthd` threads run the same program, the feasibility
//! condition collapses to `Nthd · PR + SR ≤ Nreg`. The solution space is
//! a one-dimensional frontier of `(PR, SR)` pairs, so the allocator
//! simply walks it greedily: a private reduction gains `Nthd` registers
//! on the left-hand side, a shared reduction gains one.

use crate::alloc::ThreadAlloc;
use crate::bounds::Bounds;
use crate::engine::{initial_thread, MultiAllocation, ThreadResult};
use crate::error::AllocError;
use regbal_ir::Func;

/// Result of a symmetric allocation: one allocation state shared by all
/// threads.
#[derive(Debug, Clone)]
pub struct SraAllocation {
    /// The common per-thread result.
    pub thread: ThreadResult,
    /// Number of threads the allocation serves.
    pub nthd: usize,
    /// Register-file size the allocation fits in.
    pub nreg: usize,
}

impl SraAllocation {
    /// Private registers per thread.
    pub fn pr(&self) -> usize {
        self.thread.pr()
    }

    /// Shared registers (also `SGR`, since all threads are equal).
    pub fn sr(&self) -> usize {
        self.thread.sr()
    }

    /// Move instructions inserted per thread.
    pub fn moves(&self) -> usize {
        self.thread.moves()
    }

    /// Total demand `Nthd · PR + SR`.
    pub fn total_registers(&self) -> usize {
        self.nthd * self.pr() + self.sr()
    }

    /// The thread's §5 bounds.
    pub fn bounds(&self) -> Bounds {
        self.thread.bounds
    }

    /// Expands to a [`MultiAllocation`] with `Nthd` identical threads
    /// (e.g. for rewriting and simulation).
    pub fn to_multi(&self) -> MultiAllocation {
        MultiAllocation {
            threads: vec![self.thread.clone(); self.nthd],
            nreg: self.nreg,
            degradations: Vec::new(),
        }
    }
}

/// Allocates registers for `nthd` copies of `func` sharing `nreg`
/// physical registers.
///
/// # Errors
///
/// Returns [`AllocError::Infeasible`] when `Nthd · PR + SR` cannot be
/// brought below `nreg`.
///
/// # Example
///
/// ```
/// use regbal_core::allocate_sra;
///
/// let f = regbal_ir::parse_func(
///     "func f {\nbb0:\n v0 = mov 1\n ctx\n v1 = add v0, 1\n store scratch[v1+0], v0\n halt\n}",
/// )?;
/// let sra = allocate_sra(&f, 4, 16).expect("fits");
/// assert!(4 * sra.pr() + sra.sr() <= 16);
/// # Ok::<(), regbal_ir::ParseError>(())
/// ```
pub fn allocate_sra(func: &Func, nthd: usize, nreg: usize) -> Result<SraAllocation, AllocError> {
    assert!(nthd > 0, "need at least one thread");
    let mut t = initial_thread(func);
    loop {
        let total = nthd * t.pr() + t.sr();
        if total <= nreg {
            break;
        }
        // Evaluate both directions; compare cost per register gained.
        // (A demotion keeps R: it frees `nthd` private slots for one
        // extra shared register, a net gain of `nthd - 1`.)
        let can_pr = t.pr() > t.bounds.min_pr;
        let can_sr = t.sr() > 0 && t.pr() + t.sr() > t.bounds.min_r;
        let pr_cost = if can_pr { peek(&t.alloc, true) } else { None };
        let sr_cost = if can_sr { peek(&t.alloc, false) } else { None };
        let choose_private = match (pr_cost, sr_cost) {
            (Some(p), Some(s)) => {
                // Normalise by gain: PR frees `nthd` registers at once.
                (p as f64) / nthd as f64 <= s as f64
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => {
                return Err(AllocError::Infeasible {
                    needed: total,
                    available: nreg,
                })
            }
        };
        if choose_private {
            t.alloc.reduce_private().expect("peek succeeded");
        } else {
            t.alloc.reduce_shared().expect("peek succeeded");
        }
    }
    crate::verify::check_thread(&t.alloc).expect("SRA produced an invalid allocation");
    Ok(SraAllocation {
        thread: t,
        nthd,
        nreg,
    })
}

/// Exhaustive symmetric allocation (paper §8: "due to the shrunk
/// solution space ... we can actually traverse all the possible PRs and
/// SRs to find the best solution"): every feasible `(PR, SR)` target
/// with `Nthd·PR + SR ≤ Nreg` is reached by reductions from the upper
/// bound, and the cheapest (fewest moves; ties broken by fewer total
/// registers) wins.
///
/// # Errors
///
/// Returns [`AllocError::Infeasible`] when no target fits.
pub fn allocate_sra_exhaustive(
    func: &Func,
    nthd: usize,
    nreg: usize,
) -> Result<SraAllocation, AllocError> {
    assert!(nthd > 0, "need at least one thread");
    let start = initial_thread(func);
    let b = start.bounds;
    let mut best: Option<(ThreadResult, usize)> = None;

    for pr in (b.min_pr..=b.max_pr).rev() {
        // Reaching private target `pr` costs the same regardless of the
        // shared target, so reduce PR first, then walk SR downward and
        // record every feasible stop.
        let mut t = start.clone();
        let mut ok = true;
        while t.pr() > pr {
            if t.alloc.reduce_private().is_none() {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        loop {
            let total = nthd * t.pr() + t.sr();
            if total <= nreg {
                let moves = t.moves();
                let better = match &best {
                    None => true,
                    Some((bt, bm)) => {
                        moves < *bm
                            || (moves == *bm && total < nthd * bt.pr() + bt.sr())
                    }
                };
                if better {
                    best = Some((t.clone(), moves));
                }
            }
            if t.sr() == 0 || t.pr() + t.sr() <= b.min_r {
                break;
            }
            if t.alloc.reduce_shared().is_none() {
                break;
            }
        }
    }
    match best {
        Some((thread, _)) => {
            crate::verify::check_thread(&thread.alloc).expect("exhaustive SRA must verify");
            Ok(SraAllocation { thread, nthd, nreg })
        }
        None => Err(AllocError::Infeasible {
            needed: nthd * b.min_pr + (b.min_r - b.min_pr),
            available: nreg,
        }),
    }
}

/// Walks the zero-cost frontier for the symmetric case: keep taking
/// reductions that insert no moves (private preferred — it counts
/// `Nthd`-fold), then stop. These are the (PR, SR) bars of the paper's
/// Figure 14.
pub fn sra_zero_cost_frontier(func: &Func, nthd: usize) -> SraAllocation {
    let t = crate::engine::zero_cost_frontier(func);
    let nreg = nthd * t.pr() + t.sr();
    SraAllocation {
        thread: t,
        nthd,
        nreg,
    }
}

fn peek(alloc: &ThreadAlloc, private: bool) -> Option<isize> {
    if private {
        alloc.peek_reduce_private()
    } else {
        alloc.peek_reduce_shared()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::parse_func;

    fn sample() -> Func {
        parse_func(
            "func s {\nbb0:\n v0 = mov 1\n v1 = mov 2\n ctx\n v2 = add v0, v1\n v3 = add v2, v0\n store scratch[v3+0], v3\n halt\n}",
        )
        .unwrap()
    }

    #[test]
    fn symmetric_condition_holds() {
        let sra = allocate_sra(&sample(), 4, 32).unwrap();
        assert!(4 * sra.pr() + sra.sr() <= 32);
        assert_eq!(sra.total_registers(), 4 * sra.pr() + sra.sr());
        assert_eq!(sra.nthd, 4);
    }

    #[test]
    fn to_multi_replicates_threads() {
        let sra = allocate_sra(&sample(), 3, 32).unwrap();
        let multi = sra.to_multi();
        assert_eq!(multi.threads.len(), 3);
        for t in &multi.threads {
            assert_eq!(t.pr(), sra.pr());
            assert_eq!(t.sr(), sra.sr());
        }
        assert_eq!(multi.sgr(), sra.sr());
    }

    #[test]
    fn tight_file_forces_private_reduction() {
        let generous = allocate_sra(&sample(), 4, 64).unwrap();
        let floor = generous.bounds().min_pr * 4 + generous.bounds().min_r
            - generous.bounds().min_pr;
        let tight = allocate_sra(&sample(), 4, floor.max(8)).unwrap();
        assert!(tight.pr() <= generous.pr());
        assert!(tight.total_registers() <= floor.max(8));
    }

    #[test]
    fn infeasible_when_below_floor() {
        let err = allocate_sra(&sample(), 4, 4).unwrap_err();
        assert!(matches!(err, AllocError::Infeasible { .. }));
    }

    #[test]
    fn frontier_reports_zero_moves() {
        let sra = sra_zero_cost_frontier(&sample(), 4);
        assert_eq!(sra.moves(), 0);
        assert!(sra.pr() <= sra.bounds().max_pr);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = allocate_sra(&sample(), 0, 32);
    }

    #[test]
    fn exhaustive_never_beats_the_budget_and_never_loses_to_greedy() {
        for nreg in [8, 12, 16, 32] {
            let greedy = allocate_sra(&sample(), 4, nreg);
            let exact = allocate_sra_exhaustive(&sample(), 4, nreg);
            match (greedy, exact) {
                (Ok(g), Ok(e)) => {
                    assert!(e.total_registers() <= nreg);
                    assert!(
                        e.moves() <= g.moves(),
                        "nreg={nreg}: exhaustive {} vs greedy {}",
                        e.moves(),
                        g.moves()
                    );
                }
                (Err(_), Err(_)) => {}
                (g, e) => panic!("feasibility disagreement at nreg={nreg}: {g:?} vs {e:?}"),
            }
        }
    }

    #[test]
    fn exhaustive_infeasible_below_floor() {
        assert!(matches!(
            allocate_sra_exhaustive(&sample(), 4, 3),
            Err(AllocError::Infeasible { .. })
        ));
    }
}
