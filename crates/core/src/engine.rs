//! The inter-thread register allocator (paper §6, Fig. 8) and the
//! single-thread reduction drivers used by the evaluation.
//!
//! Starting from each thread's upper-bound estimate, the greedy loop
//! repeatedly reduces the total demand `Σ PRᵢ + max SRᵢ` by one
//! register, always taking the direction of smallest move-insertion
//! cost:
//!
//! * reduce `PRᵢ` of one thread (direct gain of one register), or
//! * reduce `SRᵢ` of **every** thread at the current maximum (gain of
//!   one on the shared-register term).
//!
//! Each candidate's cost is evaluated by running the intra-thread
//! allocator on a scratch copy — the encapsulation the paper's framework
//! (Fig. 6) prescribes.

use crate::alloc::ThreadAlloc;
use crate::bounds::{estimate_bounds, Bounds};
use crate::error::AllocError;
use crate::livemap::LiveMap;
use crate::rewrite::{rewrite_thread, Layout};
use regbal_analysis::ProgramInfo;
use regbal_ir::Func;
use std::sync::Arc;

/// Final allocation of one thread.
#[derive(Debug, Clone)]
pub struct ThreadResult {
    /// The analysis bundle of the thread's program.
    pub info: ProgramInfo,
    /// The paper's §5 bounds for the thread.
    pub bounds: Bounds,
    /// The final intra-thread allocation state.
    pub alloc: ThreadAlloc,
}

impl ThreadResult {
    /// Private registers assigned (`PRᵢ`).
    pub fn pr(&self) -> usize {
        self.alloc.pr()
    }

    /// Shared registers needed (`SRᵢ`).
    pub fn sr(&self) -> usize {
        self.alloc.sr()
    }

    /// Move instructions the allocation inserts.
    pub fn moves(&self) -> usize {
        self.alloc.moves()
    }
}

/// The result of [`allocate_threads`]: one [`ThreadResult`] per thread
/// plus the machine-wide accounting.
#[derive(Debug, Clone)]
pub struct MultiAllocation {
    /// Per-thread results, in input order.
    pub threads: Vec<ThreadResult>,
    /// Size of the register file allocated against.
    pub nreg: usize,
}

impl MultiAllocation {
    /// The number of globally shared registers (`SGR = max SRᵢ`).
    pub fn sgr(&self) -> usize {
        self.threads.iter().map(ThreadResult::sr).max().unwrap_or(0)
    }

    /// Total physical registers consumed: `Σ PRᵢ + SGR`.
    pub fn total_registers(&self) -> usize {
        self.threads.iter().map(ThreadResult::pr).sum::<usize>() + self.sgr()
    }

    /// The physical register layout: disjoint private banks per thread
    /// followed by the shared bank.
    pub fn layout(&self) -> Layout {
        Layout::new(
            &self
                .threads
                .iter()
                .map(|t| (t.pr(), t.sr()))
                .collect::<Vec<_>>(),
            self.nreg,
        )
    }

    /// Rewrites every thread's function to physical registers,
    /// materialising the split-live-range moves.
    ///
    /// # Panics
    ///
    /// Panics if `funcs` are not the functions the allocation was
    /// computed from.
    pub fn rewrite_funcs(&self, funcs: &[Func]) -> Vec<Func> {
        assert_eq!(funcs.len(), self.threads.len(), "thread count mismatch");
        let layout = self.layout();
        funcs
            .iter()
            .zip(&self.threads)
            .enumerate()
            .map(|(i, (f, t))| rewrite_thread(f, &t.info, &t.alloc, &layout.color_map(i, &t.alloc)))
            .collect()
    }
}

/// Builds the initial (upper-bound) allocation state for one function.
pub(crate) fn initial_thread(func: &Func) -> ThreadResult {
    let info = ProgramInfo::compute(func);
    let est = estimate_bounds(&info);
    let live = Arc::new(LiveMap::compute(&info));
    let alloc = ThreadAlloc::new(live, &est.coloring, est.bounds.max_pr, est.bounds.max_r);
    ThreadResult {
        info,
        bounds: est.bounds,
        alloc,
    }
}

/// Allocates registers for `Nthd = funcs.len()` threads sharing `nreg`
/// physical registers (asymmetric register allocation, paper Fig. 8).
///
/// # Errors
///
/// Returns [`AllocError::Infeasible`] when the demand cannot be reduced
/// to fit: every thread is at its lower bound or stuck.
pub fn allocate_threads(funcs: &[Func], nreg: usize) -> Result<MultiAllocation, AllocError> {
    let mut threads: Vec<ThreadResult> = funcs.iter().map(initial_thread).collect();

    let objective = |threads: &[ThreadResult]| -> usize {
        threads.iter().map(ThreadResult::pr).sum::<usize>()
            + threads.iter().map(ThreadResult::sr).max().unwrap_or(0)
    };
    loop {
        let total = objective(&threads);
        if total <= nreg {
            break;
        }

        // Every candidate is evaluated on scratch copies; only steps
        // that strictly reduce the demand are considered (a PR demotion
        // that merely shifts the register into a new shared maximum
        // gains nothing).
        enum Step {
            Private(usize, crate::alloc::ThreadAlloc),
            SharedMax(Vec<(usize, crate::alloc::ThreadAlloc)>),
        }
        let mut best: Option<(Step, isize)> = None;

        for (i, t) in threads.iter().enumerate() {
            if t.pr() <= t.bounds.min_pr {
                continue;
            }
            let mut trial = t.alloc.clone();
            let Some(mut cost) = trial.reduce_private() else {
                continue;
            };
            let new_total = |trial: &crate::alloc::ThreadAlloc| -> usize {
                threads
                    .iter()
                    .enumerate()
                    .map(|(j, u)| if j == i { trial.pr() } else { u.pr() })
                    .sum::<usize>()
                    + threads
                        .iter()
                        .enumerate()
                        .map(|(j, u)| if j == i { trial.sr() } else { u.sr() })
                        .max()
                        .unwrap_or(0)
            };
            // A demotion can be objective-neutral when the demoted color
            // pushes this thread's SR to a new maximum; chase it with a
            // shared elimination on the same thread (a compound step).
            while new_total(&trial) >= total
                && trial.sr() > 0
                && trial.pr() + trial.sr() > t.bounds.min_r
            {
                match trial.reduce_shared() {
                    Some(c) => cost += c,
                    None => break,
                }
            }
            if new_total(&trial) >= total {
                continue;
            }
            if best.as_ref().is_none_or(|&(_, c)| cost < c) {
                best = Some((Step::Private(i, trial), cost));
            }
        }

        // Candidate: reduce SR of every thread at the maximum.
        let max_sr = threads.iter().map(ThreadResult::sr).max().unwrap_or(0);
        if max_sr > 0 {
            let holders: Vec<usize> = threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.sr() == max_sr)
                .map(|(i, _)| i)
                .collect();
            if holders.iter().all(|&i| can_reduce_shared(&threads[i])) {
                let mut cost = 0isize;
                let mut trials = Vec::new();
                let mut feasible = true;
                for &i in &holders {
                    let mut trial = threads[i].alloc.clone();
                    match trial.reduce_shared() {
                        Some(c) => {
                            cost += c;
                            trials.push((i, trial));
                        }
                        None => {
                            feasible = false;
                            break;
                        }
                    }
                }
                if feasible && best.as_ref().is_none_or(|&(_, c)| cost < c) {
                    best = Some((Step::SharedMax(trials), cost));
                }
            }
        }

        match best {
            Some((Step::Private(i, trial), _)) => threads[i].alloc = trial,
            Some((Step::SharedMax(trials), _)) => {
                for (i, trial) in trials {
                    threads[i].alloc = trial;
                }
            }
            None => {
                return Err(AllocError::Infeasible {
                    needed: total,
                    available: nreg,
                });
            }
        }
    }

    let result = MultiAllocation {
        threads,
        nreg,
    };
    crate::verify::check_threads(
        &result.threads.iter().map(|t| t.alloc.clone()).collect::<Vec<_>>(),
        nreg,
    )
    .expect("allocator produced an invalid allocation");
    Ok(result)
}

fn can_reduce_private(t: &ThreadResult) -> bool {
    t.pr() > t.bounds.min_pr
}

fn can_reduce_shared(t: &ThreadResult) -> bool {
    t.sr() > 0 && t.pr() + t.sr() > t.bounds.min_r
}

/// Reduces a single thread's registers as long as reductions are free
/// (zero inserted moves), preferring private reductions. This is the
/// stopping rule of the paper's Figure 14 evaluation: "the algorithm
/// continues until the cost returned is non-zero".
pub fn zero_cost_frontier(func: &Func) -> ThreadResult {
    let mut t = initial_thread(func);
    loop {
        if can_reduce_private(&t) {
            let mut trial = t.alloc.clone();
            if let Some(delta) = trial.reduce_private() {
                if delta <= 0 {
                    t.alloc = trial;
                    continue;
                }
            }
        }
        if can_reduce_shared(&t) {
            let mut trial = t.alloc.clone();
            if let Some(delta) = trial.reduce_shared() {
                if delta <= 0 {
                    t.alloc = trial;
                    continue;
                }
            }
        }
        return t;
    }
}

/// Forces a thread all the way down to its lower bounds
/// (`PR = MinPR`, `R = MinR`), counting the moves this costs — the
/// paper's Table 2 "extreme case".
///
/// # Errors
///
/// Returns [`AllocError::TargetUnreachable`] if a reduction step gets
/// stuck before the bound (the residual is reported in the error).
pub fn force_min_bounds(func: &Func) -> Result<ThreadResult, AllocError> {
    let mut t = initial_thread(func);
    // Demote private colors down to MinPR first (R is preserved: the
    // demoted colors become shared), then eliminate shared colors down
    // to MinR.
    loop {
        let pr_excess = t.pr() > t.bounds.min_pr;
        let r_excess = t.pr() + t.sr() > t.bounds.min_r;
        if !pr_excess && !r_excess {
            break;
        }
        if pr_excess && t.alloc.reduce_private().is_some() {
            continue;
        }
        if r_excess && t.sr() > 0 && t.alloc.reduce_shared().is_some() {
            continue;
        }
        return Err(AllocError::TargetUnreachable {
            thread: 0,
            pr: t.pr(),
            r: t.pr() + t.sr(),
        });
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::parse_func;

    fn hungry() -> Func {
        parse_func(
            "func h {\nbb0:\n v0 = mov 1\n v1 = mov 2\n v2 = mov 3\n ctx\n v3 = add v0, v1\n v3 = add v3, v2\n store scratch[v3+0], v3\n halt\n}",
        )
        .unwrap()
    }

    fn lean() -> Func {
        parse_func(
            "func l {\nbb0:\n v0 = mov 7\n ctx\n v1 = add v0, 1\n store scratch[v1+0], v1\n halt\n}",
        )
        .unwrap()
    }

    #[test]
    fn allocates_within_budget_and_verifies() {
        let funcs = vec![hungry(), lean()];
        let alloc = allocate_threads(&funcs, 8).unwrap();
        assert!(alloc.total_registers() <= 8);
        assert_eq!(alloc.threads.len(), 2);
        crate::verify::check_threads(
            &alloc.threads.iter().map(|t| t.alloc.clone()).collect::<Vec<_>>(),
            8,
        )
        .unwrap();
    }

    #[test]
    fn hungry_thread_gets_more_registers() {
        let funcs = vec![hungry(), lean()];
        let alloc = allocate_threads(&funcs, 12).unwrap();
        let (h, l) = (&alloc.threads[0], &alloc.threads[1]);
        assert!(h.pr() + h.sr() > l.pr() + l.sr());
    }

    #[test]
    fn sgr_is_the_maximum_shared_count() {
        let funcs = vec![hungry(), lean(), lean()];
        let alloc = allocate_threads(&funcs, 16).unwrap();
        let max_sr = alloc.threads.iter().map(ThreadResult::sr).max().unwrap();
        assert_eq!(alloc.sgr(), max_sr);
        let sum_pr: usize = alloc.threads.iter().map(ThreadResult::pr).sum();
        assert_eq!(alloc.total_registers(), sum_pr + max_sr);
    }

    #[test]
    fn layout_matches_allocation() {
        let funcs = vec![hungry(), lean()];
        let alloc = allocate_threads(&funcs, 10).unwrap();
        let layout = alloc.layout();
        assert_eq!(
            layout.private_range(0).len(),
            alloc.threads[0].pr(),
        );
        assert_eq!(layout.shared_range().len(), alloc.sgr());
        // Banks are disjoint and within the file.
        assert!(layout.shared_range().end as usize <= 10);
    }

    #[test]
    fn infeasible_reports_residual_demand() {
        let funcs = vec![hungry(), hungry(), hungry()];
        match allocate_threads(&funcs, 6) {
            Err(AllocError::Infeasible { needed, available }) => {
                assert_eq!(available, 6);
                assert!(needed > 6);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn zero_cost_frontier_is_move_free_and_minimal_ish() {
        let t = zero_cost_frontier(&hungry());
        assert_eq!(t.moves(), 0);
        assert!(t.pr() >= t.bounds.min_pr);
        assert!(t.pr() + t.sr() >= t.bounds.min_r);
    }

    #[test]
    fn force_min_reaches_the_bounds() {
        let t = force_min_bounds(&hungry()).unwrap();
        assert_eq!(t.pr(), t.bounds.min_pr);
        assert_eq!(t.pr() + t.sr(), t.bounds.min_r);
        crate::verify::check_thread(&t.alloc).unwrap();
    }

    #[test]
    fn single_thread_gets_whole_file() {
        let funcs = vec![lean()];
        let alloc = allocate_threads(&funcs, 128).unwrap();
        assert!(alloc.total_registers() <= 128);
        assert_eq!(alloc.nreg, 128);
        let rewritten = alloc.rewrite_funcs(&funcs);
        assert_eq!(rewritten[0].num_vregs, 0);
    }

    #[test]
    fn empty_program_allocates_trivially() {
        let f = parse_func("func e {\nbb0:\n halt\n}").unwrap();
        let alloc = allocate_threads(std::slice::from_ref(&f), 4).unwrap();
        assert_eq!(alloc.total_registers(), 0);
        let out = alloc.rewrite_funcs(&[f]);
        assert_eq!(out[0].num_insts(), 1);
    }
}
