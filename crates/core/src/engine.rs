//! The inter-thread register allocator (paper §6, Fig. 8) and the
//! single-thread reduction drivers used by the evaluation.
//!
//! Starting from each thread's upper-bound estimate, the greedy loop
//! repeatedly reduces the total demand `Σ PRᵢ + max SRᵢ` by one
//! register, always taking the direction of smallest move-insertion
//! cost:
//!
//! * reduce `PRᵢ` of one thread (direct gain of one register), or
//! * reduce `SRᵢ` of **every** thread at the current maximum (gain of
//!   one on the shared-register term).
//!
//! Each candidate's cost is evaluated by running the intra-thread
//! allocator on a scratch copy — the encapsulation the paper's framework
//! (Fig. 6) prescribes.
//!
//! # Engine
//!
//! A candidate is a pure function of a small part of the engine state:
//! the Reduce-SR trial of thread *i* depends only on thread *i*'s own
//! allocation, and its Reduce-PR trial depends only on its own
//! allocation plus `max SRⱼ (j ≠ i)` (written `m_others` below) — the
//! objective `Σ PRᵢ + max SRᵢ` contributed by the *other* threads is an
//! additive constant that cancels out of every comparison. The engine
//! exploits this two ways (see [`EngineConfig`]):
//!
//! * **memoization** — candidates survive across greedy iterations and
//!   are recomputed only for the threads whose allocation changed in the
//!   last committed step, or whose `m_others` shifted;
//! * **parallel evaluation** — cache misses of one iteration are
//!   independent and are evaluated concurrently with
//!   [`std::thread::scope`].
//!
//! Candidates are deterministic and the (sequential) selection keeps the
//! naive evaluation order and strict `<` tie-breaking, so every
//! configuration produces bit-identical allocations; the naive
//! configuration ([`EngineConfig::naive`]) is kept for differential
//! tests and benchmarks. [`allocate_threads_stats`] additionally reports
//! an [`EngineStats`] with iteration/candidate counters and phase
//! timings.

use crate::alloc::ThreadAlloc;
use crate::bounds::{estimate_bounds, Bounds};
use crate::error::{AllocError, Degradation};
use crate::livemap::LiveMap;
use crate::rewrite::Layout;
use regbal_analysis::ProgramInfo;
use regbal_ir::Func;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Final allocation of one thread.
#[derive(Debug, Clone)]
pub struct ThreadResult {
    /// The analysis bundle of the thread's program.
    pub info: ProgramInfo,
    /// The paper's §5 bounds for the thread.
    pub bounds: Bounds,
    /// The final intra-thread allocation state.
    pub alloc: ThreadAlloc,
}

impl ThreadResult {
    /// Private registers assigned (`PRᵢ`).
    pub fn pr(&self) -> usize {
        self.alloc.pr()
    }

    /// Shared registers needed (`SRᵢ`).
    pub fn sr(&self) -> usize {
        self.alloc.sr()
    }

    /// Move instructions the allocation inserts.
    pub fn moves(&self) -> usize {
        self.alloc.moves()
    }
}

/// The result of [`allocate_threads`]: one [`ThreadResult`] per thread
/// plus the machine-wide accounting.
#[derive(Debug, Clone)]
pub struct MultiAllocation {
    /// Per-thread results, in input order.
    pub threads: Vec<ThreadResult>,
    /// Size of the register file allocated against.
    pub nreg: usize,
    /// Fallback-ladder transitions taken to reach this allocation
    /// (empty when the primary strategy succeeded directly; stamped by
    /// [`crate::allocate_ladder`]).
    pub degradations: Vec<Degradation>,
}

impl MultiAllocation {
    /// The number of globally shared registers (`SGR = max SRᵢ`).
    pub fn sgr(&self) -> usize {
        self.threads.iter().map(ThreadResult::sr).max().unwrap_or(0)
    }

    /// Total physical registers consumed: `Σ PRᵢ + SGR`.
    pub fn total_registers(&self) -> usize {
        self.threads.iter().map(ThreadResult::pr).sum::<usize>() + self.sgr()
    }

    /// The physical register layout: disjoint private banks per thread
    /// followed by the shared bank.
    pub fn layout(&self) -> Layout {
        Layout::new(
            &self
                .threads
                .iter()
                .map(|t| (t.pr(), t.sr()))
                .collect::<Vec<_>>(),
            self.nreg,
        )
    }

    /// Rewrites every thread's function to physical registers,
    /// materialising the split-live-range moves.
    ///
    /// # Panics
    ///
    /// Panics if `funcs` are not the functions the allocation was
    /// computed from (see [`MultiAllocation::try_rewrite_funcs`] for
    /// the panic-free variant).
    pub fn rewrite_funcs(&self, funcs: &[Func]) -> Vec<Func> {
        self.try_rewrite_funcs(funcs)
            .expect("allocation must belong to the rewritten functions")
    }

    /// Panic-free [`MultiAllocation::rewrite_funcs`]: returns
    /// [`AllocError::InvalidAllocation`] when `funcs` are not the
    /// functions the allocation was computed from.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidAllocation`] on any mismatch
    /// between the allocation and `funcs`.
    pub fn try_rewrite_funcs(&self, funcs: &[Func]) -> Result<Vec<Func>, AllocError> {
        if funcs.len() != self.threads.len() {
            return Err(AllocError::InvalidAllocation {
                reason: format!(
                    "allocation covers {} threads, got {} functions",
                    self.threads.len(),
                    funcs.len()
                ),
            });
        }
        let layout = self.layout();
        funcs
            .iter()
            .zip(&self.threads)
            .enumerate()
            .map(|(i, (f, t))| {
                crate::rewrite::try_rewrite_thread(
                    f,
                    &t.info,
                    &t.alloc,
                    &layout.color_map(i, &t.alloc),
                )
            })
            .collect()
    }

    /// The fragment-ownership map of the allocation: which vreg
    /// fragments each thread placed in each physical register, as
    /// `(thread, register, label)` triples with labels like `"v3#0"`
    /// (fragment 0 of `v3`) or `"v1#0,v4#2"` when several fragments of
    /// a thread share the register.
    ///
    /// The triples are plain data so the simulator (which this crate
    /// does not depend on) can consume them — they feed the dynamic
    /// sanitizer's diagnostics, labeling both sides of a clobber with
    /// the allocator's intent.
    pub fn fragment_tags(&self) -> Vec<(usize, u32, String)> {
        let layout = self.layout();
        let mut map: std::collections::BTreeMap<(usize, u32), Vec<String>> =
            std::collections::BTreeMap::new();
        for (i, t) in self.threads.iter().enumerate() {
            let color_map = layout.color_map(i, &t.alloc);
            let mut next_fragment: std::collections::HashMap<regbal_ir::VReg, usize> =
                std::collections::HashMap::new();
            for id in t.alloc.node_ids() {
                let v = t.alloc.node_vreg(id);
                let ordinal = next_fragment.entry(v).or_insert(0);
                let label = format!("{v}#{ordinal}");
                *ordinal += 1;
                let preg = color_map[&t.alloc.node_color(id)];
                map.entry((i, preg.0)).or_default().push(label);
            }
        }
        map.into_iter()
            .map(|((t, r), labels)| (t, r, labels.join(",")))
            .collect()
    }
}

/// Builds the initial (upper-bound) allocation state for one function.
pub(crate) fn initial_thread(func: &Func) -> ThreadResult {
    let info = ProgramInfo::compute(func);
    let est = estimate_bounds(&info);
    let live = Arc::new(LiveMap::compute(&info));
    let alloc = ThreadAlloc::new(live, &est.coloring, est.bounds.max_pr, est.bounds.max_r);
    ThreadResult {
        info,
        bounds: est.bounds,
        alloc,
    }
}

/// Ceiling (and former global value) of the iteration budget. The
/// objective strictly decreases every committed step, so real workloads
/// finish in far fewer iterations; the cap is the deterministic
/// backstop the degradation ladder relies on.
pub const DEFAULT_ITERATION_CAP: usize = 100_000;

/// Floor of the adaptive iteration budget: even a tiny program gets at
/// least this many committed steps before the engine gives up.
pub const MIN_ITERATION_CAP: usize = 256;

/// How many committed steps each unit of program size
/// (live ranges × threads) buys under [`IterationBudget::Adaptive`].
pub const ADAPTIVE_CAP_FACTOR: usize = 16;

/// The iteration budget of the greedy loop (see
/// [`EngineConfig::max_iterations`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationBudget {
    /// Scale the cap with program size: `ranges × threads ×`
    /// [`ADAPTIVE_CAP_FACTOR`], clamped to
    /// `[`[`MIN_ITERATION_CAP`]`, `[`DEFAULT_ITERATION_CAP`]`]`, where
    /// `ranges` is the total live-range (node) count over all threads.
    /// Tiny programs fail fast; large ones are never starved below the
    /// old global default's reach (the committed-step count is bounded
    /// by the initial demand surplus, itself at most `ranges`).
    Adaptive,
    /// An explicit cap in committed steps.
    Fixed(usize),
    /// No budget (the loop still terminates: the objective is strictly
    /// decreasing).
    Unbounded,
}

impl IterationBudget {
    /// Resolves the budget against a program of `ranges` total live
    /// ranges across `threads` threads. `None` means unbounded.
    pub fn resolve(self, ranges: usize, threads: usize) -> Option<usize> {
        match self {
            IterationBudget::Adaptive => Some(
                ranges
                    .saturating_mul(threads)
                    .saturating_mul(ADAPTIVE_CAP_FACTOR)
                    .clamp(MIN_ITERATION_CAP, DEFAULT_ITERATION_CAP),
            ),
            IterationBudget::Fixed(cap) => Some(cap),
            IterationBudget::Unbounded => None,
        }
    }
}

/// Tuning knobs of the greedy engine. Every configuration produces
/// bit-identical allocations; the knobs only trade work for speed —
/// except `max_iterations`, which bounds the search and turns an
/// over-budget run into [`AllocError::IterationCapHit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Keep candidates across iterations, recomputing only the threads
    /// whose allocation (or `m_others`) changed since the last step.
    pub memoize: bool,
    /// Evaluate the candidates of one iteration (and the initial bound
    /// estimates) concurrently with [`std::thread::scope`].
    pub parallel: bool,
    /// Budget of committed reduction steps before the engine gives up
    /// with [`AllocError::IterationCapHit`]. The default
    /// ([`IterationBudget::Adaptive`]) scales with program size; a
    /// [`IterationBudget::Fixed`] cap is the explicit override. A run
    /// that stays under its cap is bit-identical to the unbounded run.
    pub max_iterations: IterationBudget,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            memoize: true,
            parallel: true,
            max_iterations: IterationBudget::Adaptive,
        }
    }
}

impl EngineConfig {
    /// The reference configuration: every candidate recomputed serially
    /// on every iteration. Kept for differential tests and benchmarks.
    pub fn naive() -> Self {
        EngineConfig {
            memoize: false,
            parallel: false,
            max_iterations: IterationBudget::Adaptive,
        }
    }

    /// The default engine without an iteration budget — the reference
    /// side of the capped-vs-uncapped differential tests.
    pub fn uncapped() -> Self {
        EngineConfig {
            max_iterations: IterationBudget::Unbounded,
            ..EngineConfig::default()
        }
    }
}

/// Counters and phase timings reported by [`allocate_threads_stats`].
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Greedy iterations (committed steps) of the search loop.
    pub iterations: usize,
    /// Candidates evaluated by running the intra-thread allocator on a
    /// scratch copy.
    pub evaluated: usize,
    /// Candidates served from the memo cache instead.
    pub cached: usize,
    /// Time spent computing per-thread analyses and initial bounds.
    pub init: Duration,
    /// Time spent in the greedy search loop.
    pub search: Duration,
    /// Time spent in the final safety verification.
    pub verify: Duration,
    /// End-to-end wall time of the allocation.
    pub total: Duration,
}

/// One memo slot: `None` = not computed for the current allocation;
/// `Some(inner)` = computed, where `inner = None` records "no feasible
/// improving trial" and otherwise carries the trial and its move cost.
type Candidate = Option<(ThreadAlloc, isize)>;

/// Per-thread candidate memo. A thread's Reduce-SR candidate depends
/// only on its own allocation; its Reduce-PR candidate additionally
/// depends on `m_others`, which is stored alongside and checked on
/// lookup (so a shift of the shared maximum invalidates implicitly).
struct CandidateCache {
    private: Vec<Option<(usize, Candidate)>>,
    shared: Vec<Option<Candidate>>,
}

impl CandidateCache {
    fn new(n: usize) -> Self {
        CandidateCache {
            private: vec![None; n],
            shared: vec![None; n],
        }
    }

    /// Forgets both candidates of `i` — called when `i`'s allocation
    /// changes.
    fn invalidate(&mut self, i: usize) {
        self.private[i] = None;
        self.shared[i] = None;
    }

    fn clear(&mut self) {
        for i in 0..self.private.len() {
            self.invalidate(i);
        }
    }
}

/// The Reduce-PR candidate of one thread: demote the cheapest private
/// color to shared, chasing objective-neutral demotions with shared
/// eliminations on the same thread (a compound step). Pure in
/// `(t.alloc, t.bounds, m_others)`.
///
/// `m_others` is the maximum `SRⱼ` over the *other* threads; the
/// objective delta of the trial is
/// `(trial.pr + max(m_others, trial.sr)) - (t.pr + max(m_others, t.sr))`
/// because every other term of `Σ PRᵢ + max SRᵢ` is untouched. Returns
/// `None` unless the trial strictly reduces the objective.
fn private_candidate(t: &ThreadResult, m_others: usize) -> Candidate {
    if t.pr() <= t.bounds.min_pr {
        return None;
    }
    let mut trial = t.alloc.clone();
    let mut cost = trial.reduce_private()?;
    let before = t.pr() + t.sr().max(m_others);
    while trial.pr() + trial.sr().max(m_others) >= before
        && trial.sr() > 0
        && trial.pr() + trial.sr() > t.bounds.min_r
    {
        match trial.reduce_shared() {
            Some(c) => cost += c,
            None => break,
        }
    }
    if trial.pr() + trial.sr().max(m_others) >= before {
        return None;
    }
    Some((trial, cost))
}

/// The Reduce-SR candidate of one thread: eliminate one shared color.
/// Pure in `(t.alloc, t.bounds)`.
fn shared_candidate(t: &ThreadResult) -> Candidate {
    if !can_reduce_shared(t) {
        return None;
    }
    let mut trial = t.alloc.clone();
    let cost = trial.reduce_shared()?;
    Some((trial, cost))
}

/// A cache miss to evaluate this iteration.
#[derive(Clone, Copy)]
enum Job {
    Private { thread: usize, m_others: usize },
    Shared { thread: usize },
}

fn worker_count(parallel: bool, njobs: usize) -> usize {
    if !parallel {
        return 1;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(njobs)
}

/// Evaluates `jobs` against the current `threads`, concurrently when
/// configured and worthwhile. Results are positionally aligned with
/// `jobs`; candidate evaluation is deterministic, so the schedule cannot
/// affect the outcome.
fn run_jobs(threads: &[ThreadResult], jobs: &[Job], parallel: bool) -> Vec<Candidate> {
    let eval = |job: &Job| match *job {
        Job::Private { thread, m_others } => private_candidate(&threads[thread], m_others),
        Job::Shared { thread } => shared_candidate(&threads[thread]),
    };
    let workers = worker_count(parallel, jobs.len());
    if workers <= 1 {
        return jobs.iter().map(eval).collect();
    }
    let mut results: Vec<Candidate> = vec![None; jobs.len()];
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let eval = &eval;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= jobs.len() {
                            break;
                        }
                        out.push((k, eval(&jobs[k])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (k, cand) in h.join().expect("candidate worker panicked") {
                results[k] = cand;
            }
        }
    });
    results
}

/// Builds the initial allocation state of every thread, concurrently
/// when configured (the per-thread analyses are independent).
fn initial_threads(funcs: &[Func], parallel: bool) -> Vec<ThreadResult> {
    let workers = worker_count(parallel, funcs.len());
    if workers <= 1 {
        return funcs.iter().map(initial_thread).collect();
    }
    let mut results: Vec<Option<ThreadResult>> = (0..funcs.len()).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= funcs.len() {
                            break;
                        }
                        out.push((k, initial_thread(&funcs[k])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (k, t) in h.join().expect("bounds worker panicked") {
                results[k] = Some(t);
            }
        }
    });
    results
        .into_iter()
        .map(|t| t.expect("every thread initialised"))
        .collect()
}

/// Allocates registers for `Nthd = funcs.len()` threads sharing `nreg`
/// physical registers (asymmetric register allocation, paper Fig. 8),
/// with the default (memoized, parallel) engine.
///
/// # Errors
///
/// Returns [`AllocError::Infeasible`] when the demand cannot be reduced
/// to fit: every thread is at its lower bound or stuck.
pub fn allocate_threads(funcs: &[Func], nreg: usize) -> Result<MultiAllocation, AllocError> {
    allocate_threads_with(funcs, nreg, EngineConfig::default())
}

/// [`allocate_threads`] with an explicit [`EngineConfig`].
///
/// # Errors
///
/// As [`allocate_threads`].
pub fn allocate_threads_with(
    funcs: &[Func],
    nreg: usize,
    config: EngineConfig,
) -> Result<MultiAllocation, AllocError> {
    allocate_threads_stats(funcs, nreg, config).map(|(alloc, _)| alloc)
}

/// [`allocate_threads_with`], additionally reporting [`EngineStats`].
///
/// # Errors
///
/// As [`allocate_threads`].
pub fn allocate_threads_stats(
    funcs: &[Func],
    nreg: usize,
    config: EngineConfig,
) -> Result<(MultiAllocation, EngineStats), AllocError> {
    let (mut results, stats) = sweep_stats(funcs, &[nreg], config);
    results
        .pop()
        .expect("one verdict per target")
        .map(|alloc| (alloc, stats))
}

/// Allocates the same threads against *several* register-file sizes in
/// one greedy descent, returning one verdict per entry of `targets`
/// (order preserved, duplicates allowed).
///
/// The greedy reduction's step selection never consults `nreg` — the
/// file size only decides where the descent *stops* (and which
/// hopeless requests fail) — so every target's allocation lies on one
/// shared trajectory: the state the moment the demand first fits. Each
/// verdict, success or error, is **bit-identical** to what a separate
/// [`allocate_threads_with`] call at that size returns; a sweep over
/// `k` sizes simply pays for one search instead of `k`.
pub fn allocate_threads_sweep(
    funcs: &[Func],
    targets: &[usize],
    config: EngineConfig,
) -> Vec<Result<MultiAllocation, AllocError>> {
    sweep_stats(funcs, targets, config).0
}

/// One verified snapshot of the descent: the allocation a single-target
/// run at `nreg` would have returned from this state.
fn snapshot(threads: &[ThreadResult], nreg: usize) -> Result<MultiAllocation, AllocError> {
    crate::verify::check_threads(
        &threads.iter().map(|t| t.alloc.clone()).collect::<Vec<_>>(),
        nreg,
    )
    .map_err(|e| AllocError::InvalidAllocation {
        reason: e.to_string(),
    })?;
    Ok(MultiAllocation {
        threads: threads.to_vec(),
        nreg,
        degradations: Vec::new(),
    })
}

/// The shared engine core: one greedy descent serving every target.
fn sweep_stats(
    funcs: &[Func],
    targets: &[usize],
    config: EngineConfig,
) -> (Vec<Result<MultiAllocation, AllocError>>, EngineStats) {
    let start = Instant::now();
    let mut stats = EngineStats::default();

    let mut threads = initial_threads(funcs, config.parallel);
    stats.init = start.elapsed();

    let search_start = Instant::now();
    let n = threads.len();
    let ranges: usize = threads.iter().map(|t| t.alloc.node_ids().count()).sum();
    let budget = config.max_iterations.resolve(ranges, n);
    // The demand lower bound: every reachable state keeps
    // `PRᵢ ≥ MinPRᵢ` and `PRᵢ + SRᵢ ≥ MinRᵢ` per thread, so the
    // objective `Σ PRᵢ + max SRᵢ` can never drop below
    // `max_j (Σ_{i≠j} MinPRᵢ + MinRⱼ)`. When that bound exceeds `nreg`
    // the search is provably hopeless and the loop reports it without
    // burning the iteration budget on an exhaustive descent.
    let sum_min_pr: usize = threads.iter().map(|t| t.bounds.min_pr).sum();
    let demand_floor = threads
        .iter()
        .map(|t| sum_min_pr - t.bounds.min_pr + t.bounds.min_r)
        .max()
        .unwrap_or(0);
    // Verdict slots, one per input target. Targets below the demand
    // floor are hopeless and resolve immediately, exactly as a
    // single-target run would on its first pass (where the cap check
    // precedes the floor check, so a zero budget reports
    // `IterationCapHit` instead).
    let mut results: Vec<Option<Result<MultiAllocation, AllocError>>> =
        targets.iter().map(|_| None).collect();
    for (i, &t) in targets.iter().enumerate() {
        if demand_floor > t {
            results[i] = Some(Err(match budget {
                Some(0) => AllocError::IterationCapHit {
                    iterations: 0,
                    cap: 0,
                },
                _ => AllocError::Infeasible {
                    needed: demand_floor,
                    available: t,
                },
            }));
        }
    }
    // The live targets, easiest (largest) first: the descent satisfies
    // them in exactly this order, peeling each off at the state where
    // the demand first fits its file.
    let mut active: Vec<usize> = (0..targets.len())
        .filter(|&i| results[i].is_none())
        .collect();
    active.sort_by(|&a, &b| targets[b].cmp(&targets[a]));
    let mut lo = 0usize;
    let mut cache = CandidateCache::new(n);
    while lo < active.len() {
        // One aggregate pass yields everything each candidate's
        // objective test needs: `m_others(i)` is `second_sr` when `i` is
        // the unique maximum holder and `max_sr` otherwise.
        let mut sum_pr = 0usize;
        let mut max_sr = 0usize;
        let mut at_max = 0usize;
        let mut second_sr = 0usize;
        for t in &threads {
            sum_pr += t.pr();
            let sr = t.sr();
            if sr > max_sr {
                second_sr = max_sr;
                max_sr = sr;
                at_max = 1;
            } else if sr == max_sr {
                at_max += 1;
            } else if sr > second_sr {
                second_sr = sr;
            }
        }
        let total = sum_pr + max_sr;
        // Peel off every target the current state already satisfies.
        // The step selection below never consults the target, so the
        // state at which the demand first drops to `t` is the same
        // state a dedicated run for `t` would stop at — each snapshot
        // is bit-identical to an independent `allocate_threads` call.
        while lo < active.len() && total <= targets[active[lo]] {
            let verify_start = Instant::now();
            results[active[lo]] = Some(snapshot(&threads, targets[active[lo]]));
            stats.verify += verify_start.elapsed();
            lo += 1;
        }
        if lo == active.len() {
            break;
        }
        if let Some(cap) = budget {
            if stats.iterations >= cap {
                for &i in &active[lo..] {
                    results[i] = Some(Err(AllocError::IterationCapHit {
                        iterations: stats.iterations,
                        cap,
                    }));
                }
                break;
            }
        }
        stats.iterations += 1;

        let holders: Vec<usize> = if max_sr > 0 {
            threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.sr() == max_sr)
                .map(|(i, _)| i)
                .collect()
        } else {
            Vec::new()
        };

        // Collect the cache misses; a private entry computed under a
        // different `m_others` no longer answers the current question.
        let mut jobs: Vec<Job> = Vec::new();
        for (i, t) in threads.iter().enumerate() {
            let m_others = if t.sr() == max_sr && at_max == 1 {
                second_sr
            } else {
                max_sr
            };
            match &cache.private[i] {
                Some((cached_m, _)) if *cached_m == m_others => stats.cached += 1,
                _ => jobs.push(Job::Private {
                    thread: i,
                    m_others,
                }),
            }
        }
        for &i in &holders {
            if cache.shared[i].is_some() {
                stats.cached += 1;
            } else {
                jobs.push(Job::Shared { thread: i });
            }
        }
        stats.evaluated += jobs.len();

        for (job, cand) in jobs.iter().zip(run_jobs(&threads, &jobs, config.parallel)) {
            match *job {
                Job::Private { thread, m_others } => {
                    cache.private[thread] = Some((m_others, cand));
                }
                Job::Shared { thread } => cache.shared[thread] = Some(cand),
            }
        }

        // Sequential selection in the fixed order (threads by index,
        // then the shared-maximum step) with strict `<` tie-breaking:
        // identical choices to the naive engine by construction.
        enum Step {
            Private(usize),
            SharedMax,
        }
        let mut best: Option<(Step, isize)> = None;
        for (i, entry) in cache.private.iter().enumerate() {
            if let Some((_, Some((_, cost)))) = entry {
                if best.as_ref().is_none_or(|&(_, c)| *cost < c) {
                    best = Some((Step::Private(i), *cost));
                }
            }
        }
        if !holders.is_empty() {
            // Reducing the shared maximum takes *every* holder down one
            // shared color; the step exists only if all of them can.
            let mut cost = 0isize;
            let mut feasible = true;
            for &i in &holders {
                match &cache.shared[i] {
                    Some(Some((_, c))) => cost += c,
                    _ => {
                        feasible = false;
                        break;
                    }
                }
            }
            if feasible && best.as_ref().is_none_or(|&(_, c)| cost < c) {
                best = Some((Step::SharedMax, cost));
            }
        }

        match best {
            Some((Step::Private(i), _)) => {
                let (_, cand) = cache.private[i].take().expect("selected entry present");
                threads[i].alloc = cand.expect("selected candidate feasible").0;
                cache.invalidate(i);
            }
            Some((Step::SharedMax, _)) => {
                for &i in &holders {
                    let cand = cache.shared[i].take().expect("selected entry present");
                    threads[i].alloc = cand.expect("selected candidate feasible").0;
                    cache.invalidate(i);
                }
            }
            None => {
                // No feasible step anywhere: every still-pending target
                // is unreachable from here, each with its own shortfall.
                for &i in &active[lo..] {
                    results[i] = Some(Err(AllocError::Infeasible {
                        needed: total,
                        available: targets[i],
                    }));
                }
                break;
            }
        }
        if !config.memoize {
            cache.clear();
        }
    }
    stats.search = search_start.elapsed().saturating_sub(stats.verify);
    stats.total = start.elapsed();
    (
        results
            .into_iter()
            .map(|r| r.expect("every target resolved"))
            .collect(),
        stats,
    )
}

fn can_reduce_private(t: &ThreadResult) -> bool {
    t.pr() > t.bounds.min_pr
}

fn can_reduce_shared(t: &ThreadResult) -> bool {
    t.sr() > 0 && t.pr() + t.sr() > t.bounds.min_r
}

/// Reduces a single thread's registers as long as reductions are free
/// (zero inserted moves), preferring private reductions. This is the
/// stopping rule of the paper's Figure 14 evaluation: "the algorithm
/// continues until the cost returned is non-zero".
pub fn zero_cost_frontier(func: &Func) -> ThreadResult {
    let mut t = initial_thread(func);
    loop {
        if can_reduce_private(&t) {
            let mut trial = t.alloc.clone();
            if let Some(delta) = trial.reduce_private() {
                if delta <= 0 {
                    t.alloc = trial;
                    continue;
                }
            }
        }
        if can_reduce_shared(&t) {
            let mut trial = t.alloc.clone();
            if let Some(delta) = trial.reduce_shared() {
                if delta <= 0 {
                    t.alloc = trial;
                    continue;
                }
            }
        }
        return t;
    }
}

/// Forces a thread all the way down to its lower bounds
/// (`PR = MinPR`, `R = MinR`), counting the moves this costs — the
/// paper's Table 2 "extreme case".
///
/// # Errors
///
/// Returns [`AllocError::TargetUnreachable`] if a reduction step gets
/// stuck before the bound (the residual is reported in the error).
pub fn force_min_bounds(func: &Func) -> Result<ThreadResult, AllocError> {
    let mut t = initial_thread(func);
    // Demote private colors down to MinPR first (R is preserved: the
    // demoted colors become shared), then eliminate shared colors down
    // to MinR.
    loop {
        let pr_excess = t.pr() > t.bounds.min_pr;
        let r_excess = t.pr() + t.sr() > t.bounds.min_r;
        if !pr_excess && !r_excess {
            break;
        }
        if pr_excess && t.alloc.reduce_private().is_some() {
            continue;
        }
        if r_excess && t.sr() > 0 && t.alloc.reduce_shared().is_some() {
            continue;
        }
        return Err(AllocError::TargetUnreachable {
            thread: 0,
            pr: t.pr(),
            r: t.pr() + t.sr(),
        });
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::parse_func;

    fn hungry() -> Func {
        parse_func(
            "func h {\nbb0:\n v0 = mov 1\n v1 = mov 2\n v2 = mov 3\n ctx\n v3 = add v0, v1\n v3 = add v3, v2\n store scratch[v3+0], v3\n halt\n}",
        )
        .unwrap()
    }

    fn lean() -> Func {
        parse_func(
            "func l {\nbb0:\n v0 = mov 7\n ctx\n v1 = add v0, 1\n store scratch[v1+0], v1\n halt\n}",
        )
        .unwrap()
    }

    /// A loop whose boundary live ranges form an odd cycle (circular
    /// arcs around the back edge) plus a universal counter: the BIG
    /// needs 4 colors but every single CSB only carries 3 live values,
    /// so `MaxPR = 4 > MinPR = 3` and the greedy loop has real work.
    fn odd_cycle() -> Func {
        parse_func(
            "func c5 {\nbb0:\n v9 = mov 10\n v4 = mov 44\n jump bb1\nbb1:\n v0 = mov 5\n ctx\n store scratch[v4+0], v4\n v1 = mov 1\n ctx\n store scratch[v0+0], v0\n v2 = mov 2\n ctx\n store scratch[v1+0], v1\n v3 = mov 3\n ctx\n store scratch[v2+0], v2\n v4 = mov 4\n ctx\n store scratch[v3+0], v3\n v9 = sub v9, 1\n bne v9, 0, bb1, bb2\nbb2:\n halt\n}",
        )
        .unwrap()
    }

    #[test]
    fn allocates_within_budget_and_verifies() {
        let funcs = vec![hungry(), lean()];
        let alloc = allocate_threads(&funcs, 8).unwrap();
        assert!(alloc.total_registers() <= 8);
        assert_eq!(alloc.threads.len(), 2);
        crate::verify::check_threads(
            &alloc.threads.iter().map(|t| t.alloc.clone()).collect::<Vec<_>>(),
            8,
        )
        .unwrap();
    }

    #[test]
    fn hungry_thread_gets_more_registers() {
        let funcs = vec![hungry(), lean()];
        let alloc = allocate_threads(&funcs, 12).unwrap();
        let (h, l) = (&alloc.threads[0], &alloc.threads[1]);
        assert!(h.pr() + h.sr() > l.pr() + l.sr());
    }

    #[test]
    fn sgr_is_the_maximum_shared_count() {
        let funcs = vec![hungry(), lean(), lean()];
        let alloc = allocate_threads(&funcs, 16).unwrap();
        let max_sr = alloc.threads.iter().map(ThreadResult::sr).max().unwrap();
        assert_eq!(alloc.sgr(), max_sr);
        let sum_pr: usize = alloc.threads.iter().map(ThreadResult::pr).sum();
        assert_eq!(alloc.total_registers(), sum_pr + max_sr);
    }

    #[test]
    fn layout_matches_allocation() {
        let funcs = vec![hungry(), lean()];
        let alloc = allocate_threads(&funcs, 10).unwrap();
        let layout = alloc.layout();
        assert_eq!(
            layout.private_range(0).len(),
            alloc.threads[0].pr(),
        );
        assert_eq!(layout.shared_range().len(), alloc.sgr());
        // Banks are disjoint and within the file.
        assert!(layout.shared_range().end as usize <= 10);
    }

    #[test]
    fn infeasible_reports_residual_demand() {
        let funcs = vec![hungry(), hungry(), hungry()];
        match allocate_threads(&funcs, 6) {
            Err(AllocError::Infeasible { needed, available }) => {
                assert_eq!(available, 6);
                assert!(needed > 6);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn zero_cost_frontier_is_move_free_and_minimal_ish() {
        let t = zero_cost_frontier(&hungry());
        assert_eq!(t.moves(), 0);
        assert!(t.pr() >= t.bounds.min_pr);
        assert!(t.pr() + t.sr() >= t.bounds.min_r);
    }

    #[test]
    fn force_min_reaches_the_bounds() {
        let t = force_min_bounds(&hungry()).unwrap();
        assert_eq!(t.pr(), t.bounds.min_pr);
        assert_eq!(t.pr() + t.sr(), t.bounds.min_r);
        crate::verify::check_thread(&t.alloc).unwrap();
    }

    #[test]
    fn single_thread_gets_whole_file() {
        let funcs = vec![lean()];
        let alloc = allocate_threads(&funcs, 128).unwrap();
        assert!(alloc.total_registers() <= 128);
        assert_eq!(alloc.nreg, 128);
        let rewritten = alloc.rewrite_funcs(&funcs);
        assert_eq!(rewritten[0].num_vregs, 0);
    }

    #[test]
    fn empty_program_allocates_trivially() {
        let f = parse_func("func e {\nbb0:\n halt\n}").unwrap();
        let alloc = allocate_threads(std::slice::from_ref(&f), 4).unwrap();
        assert_eq!(alloc.total_registers(), 0);
        let out = alloc.rewrite_funcs(&[f]);
        assert_eq!(out[0].num_insts(), 1);
    }

    /// All four engine configurations on the same inputs.
    fn config_matrix() -> [EngineConfig; 4] {
        [
            EngineConfig::naive(),
            EngineConfig {
                memoize: true,
                parallel: false,
                ..EngineConfig::default()
            },
            EngineConfig {
                memoize: false,
                parallel: true,
                ..EngineConfig::default()
            },
            EngineConfig::default(),
        ]
    }

    fn per_thread(alloc: &MultiAllocation) -> Vec<(usize, usize, usize)> {
        alloc
            .threads
            .iter()
            .map(|t| (t.pr(), t.sr(), t.moves()))
            .collect()
    }

    #[test]
    fn all_configs_produce_identical_allocations() {
        let funcs = vec![odd_cycle(), hungry(), lean(), odd_cycle()];
        for nreg in [8, 10, 12, 16, 24] {
            let reference = allocate_threads_with(&funcs, nreg, EngineConfig::naive());
            for config in config_matrix() {
                let got = allocate_threads_with(&funcs, nreg, config);
                match (&reference, &got) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(per_thread(a), per_thread(b), "{config:?} nreg={nreg}");
                        assert_eq!(
                            a.total_registers(),
                            b.total_registers(),
                            "{config:?} nreg={nreg}"
                        );
                    }
                    (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{config:?} nreg={nreg}"),
                    _ => panic!("{config:?} nreg={nreg}: {reference:?} vs {got:?}"),
                }
            }
        }
    }

    #[test]
    fn memoized_engine_reports_cache_hits() {
        let funcs = vec![odd_cycle(), odd_cycle(), odd_cycle(), odd_cycle()];
        let config = EngineConfig {
            memoize: true,
            parallel: false,
            ..EngineConfig::default()
        };
        let (_, memo) = allocate_threads_stats(&funcs, 12, config).unwrap();
        let (_, naive) = allocate_threads_stats(&funcs, 12, EngineConfig::naive()).unwrap();
        assert_eq!(memo.iterations, naive.iterations);
        assert_eq!(naive.cached, 0, "naive engine never hits the cache");
        assert!(memo.iterations > 1, "workload too small to exercise the cache");
        assert!(memo.cached > 0, "stats: {memo:?}");
        assert!(
            memo.evaluated < naive.evaluated,
            "memoized {} vs naive {}",
            memo.evaluated,
            naive.evaluated
        );
        // Together they cover exactly the work the naive engine does.
        assert_eq!(memo.evaluated + memo.cached, naive.evaluated);
    }

    #[test]
    fn capped_engine_matches_uncapped_when_the_cap_is_not_hit() {
        let funcs = vec![odd_cycle(), odd_cycle(), odd_cycle(), odd_cycle()];
        let (reference, stats) =
            allocate_threads_stats(&funcs, 12, EngineConfig::uncapped()).unwrap();
        assert!(stats.iterations > 0, "workload too small to exercise the cap");
        let exact = EngineConfig {
            max_iterations: IterationBudget::Fixed(stats.iterations),
            ..EngineConfig::default()
        };
        let (capped, capped_stats) = allocate_threads_stats(&funcs, 12, exact).unwrap();
        assert_eq!(capped_stats.iterations, stats.iterations);
        assert_eq!(per_thread(&reference), per_thread(&capped));
    }

    #[test]
    fn exhausted_cap_reports_iteration_cap_hit() {
        let funcs = vec![odd_cycle(), odd_cycle(), odd_cycle(), odd_cycle()];
        let (_, stats) = allocate_threads_stats(&funcs, 12, EngineConfig::uncapped()).unwrap();
        assert!(stats.iterations > 1);
        let starved = EngineConfig {
            max_iterations: IterationBudget::Fixed(stats.iterations - 1),
            ..EngineConfig::default()
        };
        match allocate_threads_with(&funcs, 12, starved) {
            Err(AllocError::IterationCapHit { iterations, cap }) => {
                assert_eq!(cap, stats.iterations - 1);
                assert_eq!(iterations, cap);
            }
            other => panic!("expected IterationCapHit, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_budget_scales_with_program_size() {
        // Tiny programs clamp to the floor, huge ones to the ceiling,
        // and mid-size ones scale linearly in ranges × threads.
        assert_eq!(
            IterationBudget::Adaptive.resolve(0, 0),
            Some(MIN_ITERATION_CAP)
        );
        assert_eq!(
            IterationBudget::Adaptive.resolve(3, 2),
            Some(MIN_ITERATION_CAP)
        );
        assert_eq!(
            IterationBudget::Adaptive.resolve(100, 4),
            Some(100 * 4 * ADAPTIVE_CAP_FACTOR)
        );
        assert_eq!(
            IterationBudget::Adaptive.resolve(usize::MAX, 8),
            Some(DEFAULT_ITERATION_CAP)
        );
        assert_eq!(IterationBudget::Fixed(7).resolve(100, 4), Some(7));
        assert_eq!(IterationBudget::Unbounded.resolve(100, 4), None);
    }

    #[test]
    fn infeasible_bound_matches_the_exhaustive_search_verdict() {
        // Three hungry threads against 6 registers are hopeless; the
        // demand floor fires on the first iteration and the reported
        // residual is exactly `max_j (Σ_{i≠j} MinPRᵢ + MinRⱼ)`.
        let funcs = vec![hungry(), hungry(), hungry()];
        let bounds: Vec<_> = funcs
            .iter()
            .map(|f| estimate_bounds(&ProgramInfo::compute(f)).bounds)
            .collect();
        let sum_min_pr: usize = bounds.iter().map(|b| b.min_pr).sum();
        let floor = bounds
            .iter()
            .map(|b| sum_min_pr - b.min_pr + b.min_r)
            .max()
            .unwrap();
        assert!(floor > 6);
        match allocate_threads_with(&funcs, 6, EngineConfig::default()) {
            Err(AllocError::Infeasible { needed, available }) => {
                assert_eq!(available, 6);
                assert_eq!(needed, floor);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
        // And a budget of zero still reports the cap, not the bound:
        // the ladder's starved-budget semantics depend on that order.
        let starved = EngineConfig {
            max_iterations: IterationBudget::Fixed(0),
            ..EngineConfig::default()
        };
        match allocate_threads_with(&funcs, 6, starved) {
            Err(AllocError::IterationCapHit { cap: 0, .. }) => {}
            other => panic!("expected IterationCapHit, got {other:?}"),
        }
    }

    #[test]
    fn stats_report_nonzero_phase_times() {
        let funcs = vec![hungry(), lean()];
        let (alloc, stats) =
            allocate_threads_stats(&funcs, 8, EngineConfig::default()).unwrap();
        assert!(alloc.total_registers() <= 8);
        assert!(stats.total >= stats.search);
        assert!(stats.total > std::time::Duration::ZERO);
    }

    /// One shared descent must give every swept register-file size the
    /// verdict a dedicated run would: same allocation bits on success,
    /// same error payload on failure. The sweep spans the feasible
    /// range, the infeasible floor, and duplicate and unsorted targets.
    #[test]
    fn sweep_matches_independent_runs_bit_for_bit() {
        let funcs = vec![odd_cycle(), hungry(), lean()];
        let targets: Vec<usize> = vec![128, 6, 32, 8, 32, 5, 0, 200, 10];
        let swept = allocate_threads_sweep(&funcs, &targets, EngineConfig::default());
        assert_eq!(swept.len(), targets.len());
        for (&t, got) in targets.iter().zip(&swept) {
            let solo = allocate_threads_with(&funcs, t, EngineConfig::default());
            assert_eq!(
                format!("{got:?}"),
                format!("{solo:?}"),
                "sweep verdict diverged from the dedicated run at nreg={t}"
            );
        }
    }

    /// Cap-bounded sweeps resolve exactly like cap-bounded single runs,
    /// including a zero budget (cap before floor) and a cap that lands
    /// mid-descent so some targets succeed while tighter ones cap out.
    #[test]
    fn sweep_honors_iteration_caps_per_target() {
        let funcs = vec![odd_cycle(), hungry(), lean()];
        for cap in [0usize, 1, 2, 100] {
            let config = EngineConfig {
                max_iterations: IterationBudget::Fixed(cap),
                ..EngineConfig::default()
            };
            let targets: Vec<usize> = (4..=40).collect();
            let swept = allocate_threads_sweep(&funcs, &targets, config.clone());
            for (&t, got) in targets.iter().zip(&swept) {
                let solo = allocate_threads_with(&funcs, t, config.clone());
                assert_eq!(
                    format!("{got:?}"),
                    format!("{solo:?}"),
                    "cap={cap} nreg={t}"
                );
            }
        }
    }
}

