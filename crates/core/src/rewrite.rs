//! Physical-register layout and code rewriting.
//!
//! The layout places each thread's private colors in a disjoint bank of
//! the register file and maps each thread's shared colors onto one
//! common bank of `SGR = max SRᵢ` registers — the partition of paper §2.
//! Rewriting replaces virtual registers by physical ones according to
//! the (possibly split) fragment colors and materialises one `mov` per
//! cut flow edge, sequencing simultaneous moves as a parallel copy.

use crate::alloc::{MoveSite, ThreadAlloc};
use crate::error::AllocError;
use crate::half::HalfPoint;
use regbal_analysis::ProgramInfo;
use regbal_ir::{BinOp, BlockId, Func, Inst, Operand, PReg, Reg, UnOp};
use std::collections::HashMap;

/// Physical placement of every thread's colors in the shared register
/// file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    private_base: Vec<u32>,
    shared_base: u32,
    sgr: usize,
    nreg: usize,
}

impl Layout {
    /// Computes the layout for threads with the given `(PR, SR)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `Σ PRᵢ + max SRᵢ > nreg`.
    pub fn new(prs_srs: &[(usize, usize)], nreg: usize) -> Layout {
        let mut private_base = Vec::with_capacity(prs_srs.len());
        let mut next = 0u32;
        for &(pr, _) in prs_srs {
            private_base.push(next);
            next += pr as u32;
        }
        let sgr = prs_srs.iter().map(|&(_, sr)| sr).max().unwrap_or(0);
        assert!(
            next as usize + sgr <= nreg,
            "layout needs {} registers but only {nreg} exist",
            next as usize + sgr
        );
        Layout {
            private_base,
            shared_base: next,
            sgr,
            nreg,
        }
    }

    /// The private bank of a thread, as a physical register range.
    pub fn private_range(&self, thread: usize) -> std::ops::Range<u32> {
        let base = self.private_base[thread];
        let end = self
            .private_base
            .get(thread + 1)
            .copied()
            .unwrap_or(self.shared_base);
        base..end
    }

    /// The shared bank, common to all threads.
    pub fn shared_range(&self) -> std::ops::Range<u32> {
        self.shared_base..self.shared_base + self.sgr as u32
    }

    /// Number of globally shared registers.
    pub fn sgr(&self) -> usize {
        self.sgr
    }

    /// Size of the register file the layout was computed for.
    pub fn nreg(&self) -> usize {
        self.nreg
    }

    /// Maps one thread's abstract colors to physical registers: the
    /// `i`-th private palette color to `private_base + i`, the `j`-th
    /// shared palette color to `shared_base + j`.
    pub fn color_map(&self, thread: usize, alloc: &ThreadAlloc) -> HashMap<u32, PReg> {
        let mut map = HashMap::new();
        let base = self.private_base[thread];
        for (i, &c) in alloc.private_palette().iter().enumerate() {
            map.insert(c, PReg(base + i as u32));
        }
        for (j, &c) in alloc.shared_palette().iter().enumerate() {
            map.insert(c, PReg(self.shared_base + j as u32));
        }
        map
    }
}

/// Rewrites one thread's function to physical registers.
///
/// Every virtual-register use reads the color of the covering fragment
/// just before its instruction, every definition writes the color just
/// after; cut flow edges become `mov` instructions (or XOR-swap
/// sequences when a parallel copy contains a cycle), inserted between
/// instructions or on split CFG edges.
///
/// # Panics
///
/// Panics if the allocation does not belong to `func` or a color is
/// missing from `color_map` (see [`try_rewrite_thread`] for the
/// panic-free variant).
pub fn rewrite_thread(
    func: &Func,
    info: &ProgramInfo,
    alloc: &ThreadAlloc,
    color_map: &HashMap<u32, PReg>,
) -> Func {
    try_rewrite_thread(func, info, alloc, color_map)
        .expect("allocation must belong to the rewritten function")
}

/// Panic-free [`rewrite_thread`]: a register without a covering
/// fragment or a color missing from `color_map` (both meaning the
/// allocation does not belong to `func`) is reported as
/// [`AllocError::InvalidAllocation`] instead of aborting.
///
/// # Errors
///
/// Returns [`AllocError::InvalidAllocation`] on any mismatch between
/// the allocation and `func`.
pub fn try_rewrite_thread(
    func: &Func,
    info: &ProgramInfo,
    alloc: &ThreadAlloc,
    color_map: &HashMap<u32, PReg>,
) -> Result<Func, AllocError> {
    // The register-mapping closures below cannot early-return, so the
    // first mismatch is parked here and checked after each pass.
    let mut fail: Option<String> = None;
    let preg_of = |color: u32, fail: &mut Option<String>| -> Reg {
        match color_map.get(&color) {
            Some(&p) => Reg::Phys(p),
            None => {
                fail.get_or_insert_with(|| format!("color {color} missing from layout map"));
                Reg::Phys(PReg(0))
            }
        }
    };
    let mut out = func.clone();

    // Substitute registers instruction by instruction.
    for (bid, block) in func.iter_blocks() {
        let new_block = &mut out.blocks[bid.index()];
        for (idx, _) in block.insts.iter().enumerate() {
            let p = info.pmap.point(bid, idx);
            let inst = &mut new_block.insts[idx];
            inst.map_uses(|r| match r {
                Reg::Virt(v) => match alloc.node_at(v, HalfPoint::before(p)) {
                    Some(node) => preg_of(alloc.node_color(node), &mut fail),
                    None => {
                        fail.get_or_insert_with(|| format!("use of {v} at {p} has no fragment"));
                        r
                    }
                },
                phys => phys,
            });
            inst.map_defs(|r| match r {
                Reg::Virt(v) => match alloc.node_at(v, HalfPoint::after(p)) {
                    Some(node) => preg_of(alloc.node_color(node), &mut fail),
                    None => {
                        fail.get_or_insert_with(|| format!("def of {v} at {p} has no fragment"));
                        r
                    }
                },
                phys => phys,
            });
        }
        let p = info.pmap.point(bid, block.insts.len());
        new_block.term.map_uses(|r| match r {
            Reg::Virt(v) => match alloc.node_at(v, HalfPoint::before(p)) {
                Some(node) => preg_of(alloc.node_color(node), &mut fail),
                None => {
                    fail.get_or_insert_with(|| {
                        format!("terminator use of {v} at {p} has no fragment")
                    });
                    r
                }
            },
            phys => phys,
        });
    }
    if let Some(reason) = fail {
        return Err(AllocError::InvalidAllocation { reason });
    }

    // Collect the moves per insertion site.
    let mut inline: HashMap<(BlockId, usize), Vec<(u32, u32)>> = HashMap::new();
    let mut on_edge: HashMap<(BlockId, BlockId), Vec<(u32, u32)>> = HashMap::new();
    for MoveSite {
        from,
        to,
        old_color,
        new_color,
        ..
    } in alloc.move_sites()
    {
        let p = from.point();
        let q = to.point();
        let (bp, ip) = info.pmap.location(p);
        let (bq, iq) = info.pmap.location(q);
        let lookup = |color: u32| -> Result<u32, AllocError> {
            color_map
                .get(&color)
                .map(|p| p.0)
                .ok_or_else(|| AllocError::InvalidAllocation {
                    reason: format!("move color {color} missing from layout map"),
                })
        };
        let dst = lookup(new_color)?;
        let src = lookup(old_color)?;
        if bp == bq && iq == ip + 1 {
            // Between two consecutive instructions of one block.
            inline.entry((bp, ip)).or_default().push((dst, src));
        } else {
            // A CFG edge — including a single-block loop's back edge
            // (`bp == bq` with `q` at the block head).
            on_edge.entry((bp, bq)).or_default().push((dst, src));
        }
    }

    // Inline insertions, applied back to front so indices stay valid.
    type InlineSites = Vec<((BlockId, usize), Vec<(u32, u32)>)>;
    let mut inline: InlineSites = inline.into_iter().collect();
    inline.sort_by_key(|&((b, i), _)| std::cmp::Reverse((b, i)));
    for ((bid, after_idx), pairs) in inline {
        let seq = sequence_parallel_copy(pairs);
        let insts = &mut out.blocks[bid.index()].insts;
        let at = after_idx + 1;
        insts.splice(at..at, seq);
    }

    // Edge insertions: prepend when the target is exclusively reached
    // from the source block, otherwise split the edge. A self-loop is
    // never "exclusive": prepending would also run the moves on the
    // first entry into the loop.
    let preds = out.predecessors();
    for ((from, to), pairs) in on_edge {
        let seq = sequence_parallel_copy(pairs);
        let exclusive = from != to && preds[to.index()].iter().all(|&p| p == from);
        if exclusive {
            let insts = &mut out.blocks[to.index()].insts;
            insts.splice(0..0, seq);
        } else {
            let mid = out.split_edge(from, to);
            out.blocks[mid.index()].insts = seq;
        }
    }

    out.num_vregs = 0;
    out.validate().map_err(|e| AllocError::InvalidAllocation {
        reason: format!("rewritten function is invalid: {e}"),
    })?;
    Ok(out)
}

/// Orders a set of simultaneous register copies so that no source is
/// overwritten before it is read; cycles are broken with XOR swaps.
fn sequence_parallel_copy(mut pending: Vec<(u32, u32)>) -> Vec<Inst> {
    let mut out = Vec::new();
    let mov = |dst: u32, src: u32| Inst::Un {
        op: UnOp::Mov,
        dst: Reg::Phys(PReg(dst)),
        src: Operand::Reg(Reg::Phys(PReg(src))),
    };
    let xor = |dst: u32, lhs: u32, rhs: u32| Inst::Bin {
        op: BinOp::Xor,
        dst: Reg::Phys(PReg(dst)),
        lhs: Reg::Phys(PReg(lhs)),
        rhs: Operand::Reg(Reg::Phys(PReg(rhs))),
    };
    loop {
        // Retargeting after a swap can leave no-op self-moves behind.
        pending.retain(|&(d, s)| d != s);
        if pending.is_empty() {
            break;
        }
        if let Some(pos) = pending
            .iter()
            .position(|&(d, _)| !pending.iter().any(|&(_, s)| s == d))
        {
            let (d, s) = pending.swap_remove(pos);
            out.push(mov(d, s));
        } else {
            // Cycle: swap the first pair's registers with XORs, then
            // retarget the remaining reads of the two registers.
            let (d, s) = pending.remove(0);
            out.push(xor(d, d, s));
            out.push(xor(s, s, d));
            out.push(xor(d, d, s));
            for (_, src) in &mut pending {
                if *src == d {
                    *src = s;
                } else if *src == s {
                    *src = d;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_copy(pairs: Vec<(u32, u32)>, regs: &mut [u32]) {
        for inst in sequence_parallel_copy(pairs) {
            match inst {
                Inst::Un {
                    dst: Reg::Phys(d),
                    src: Operand::Reg(Reg::Phys(s)),
                    ..
                } => regs[d.index()] = regs[s.index()],
                Inst::Bin {
                    op: BinOp::Xor,
                    dst: Reg::Phys(d),
                    lhs: Reg::Phys(l),
                    rhs: Operand::Reg(Reg::Phys(r)),
                } => regs[d.index()] = regs[l.index()] ^ regs[r.index()],
                other => panic!("unexpected inst {other}"),
            }
        }
    }

    #[test]
    fn parallel_copy_chain() {
        // r1 <- r0, r2 <- r1 must read old r1 for r2.
        let mut regs = [10, 20, 30];
        run_copy(vec![(1, 0), (2, 1)], &mut regs);
        assert_eq!(regs, [10, 10, 20]);
    }

    #[test]
    fn parallel_copy_swap_cycle() {
        let mut regs = [10, 20];
        run_copy(vec![(0, 1), (1, 0)], &mut regs);
        assert_eq!(regs, [20, 10]);
    }

    #[test]
    fn parallel_copy_three_cycle() {
        // r0<-r1, r1<-r2, r2<-r0.
        let mut regs = [1, 2, 3];
        run_copy(vec![(0, 1), (1, 2), (2, 0)], &mut regs);
        assert_eq!(regs, [2, 3, 1]);
    }

    #[test]
    fn layout_banks_are_disjoint() {
        let l = Layout::new(&[(3, 2), (1, 4), (0, 1)], 16);
        assert_eq!(l.private_range(0), 0..3);
        assert_eq!(l.private_range(1), 3..4);
        assert_eq!(l.private_range(2), 4..4);
        assert_eq!(l.shared_range(), 4..8);
        assert_eq!(l.sgr(), 4);
        assert_eq!(l.nreg(), 16);
    }

    #[test]
    #[should_panic(expected = "layout needs")]
    fn layout_overflow_panics() {
        Layout::new(&[(10, 10), (10, 10)], 16);
    }
}

#[cfg(test)]
mod rewrite_tests {
    use super::*;
    use crate::engine::force_min_bounds;
    use regbal_analysis::ProgramInfo;
    use regbal_ir::parse_func;

    /// The paper's Figure 9 shape: three values pairwise live across
    /// three different switches. Forcing MinPR requires splits, and the
    /// split moves land on CFG edges into the join block — exercising
    /// edge splitting in the rewriter.
    const FIG9ISH: &str = "
func f {
bb0:
    v0 = mov 1
    v1 = mov 2
    v2 = mov 3
    beq v0, 1, bb1, bb2
bb1:
    store scratch[v0+0], v0
    v3 = add v0, v1
    jump bb3
bb2:
    store scratch[v1+0], v1
    v3 = add v1, v2
    jump bb3
bb3:
    store scratch[v2+0], v2
    v4 = add v3, v2
    store scratch[v4+4], v4
    halt
}";

    #[test]
    fn rewrite_materialises_split_moves() {
        let func = parse_func(FIG9ISH).unwrap();
        let t = force_min_bounds(&func).unwrap();
        let map = Layout::new(&[(t.pr(), t.sr())], 64).color_map(0, &t.alloc);
        let out = rewrite_thread(&func, &t.info, &t.alloc, &map);
        out.validate().unwrap();
        assert_eq!(out.num_vregs, 0);
        // Exactly the allocator's move count appears as reg-to-reg movs
        // (no parallel-copy cycles in this small case).
        if t.moves() > 0 {
            assert!(
                out.num_reg_moves() >= t.moves(),
                "{} movs for {} cut edges",
                out.num_reg_moves(),
                t.moves()
            );
        }
    }

    #[test]
    fn rewrite_without_splits_changes_no_instruction_count() {
        let func = parse_func(
            "func g {\nbb0:\n v0 = mov 1\n ctx\n v1 = add v0, 1\n store scratch[v1+0], v1\n halt\n}",
        )
        .unwrap();
        let t = crate::engine::zero_cost_frontier(&func);
        assert_eq!(t.moves(), 0);
        let map = Layout::new(&[(t.pr(), t.sr())], 16).color_map(0, &t.alloc);
        let out = rewrite_thread(&func, &t.info, &t.alloc, &map);
        assert_eq!(out.num_insts(), func.num_insts());
        assert_eq!(out.num_blocks(), func.num_blocks());
    }

    #[test]
    fn rewritten_uses_stay_inside_the_mapped_banks() {
        let func = parse_func(FIG9ISH).unwrap();
        let info = ProgramInfo::compute(&func);
        let _ = info;
        let t = force_min_bounds(&func).unwrap();
        let layout = Layout::new(&[(t.pr(), t.sr())], 64);
        let map = layout.color_map(0, &t.alloc);
        let out = rewrite_thread(&func, &t.info, &t.alloc, &map);
        let limit = (t.pr() + t.sr()) as u32 + layout.shared_range().start
            - t.pr() as u32; // == shared end
        let check = |r: regbal_ir::Reg| {
            if let regbal_ir::Reg::Phys(p) = r {
                assert!(p.0 < limit.max(layout.shared_range().end), "register {p}");
            }
        };
        for (_, _, inst) in out.iter_insts() {
            inst.defs().for_each(check);
            inst.uses().for_each(check);
        }
    }
}

#[cfg(test)]
mod selfloop_tests {
    use super::*;
    use regbal_ir::parse_func;

    /// Regression: a move on a single-block loop's back edge must be
    /// materialised by splitting the edge, never by splicing "after the
    /// terminator" (which is out of bounds) or prepending into the loop
    /// head (which would also run on first entry). Full pipeline runs
    /// rarely place cuts there today, so the pipeline smoke test is
    /// paired with a direct simulation check.
    #[test]
    fn single_block_loop_allocates_and_runs() {
        let src = "
func selfloop {
bb0:
    v0 = mov 1
    v1 = mov 2
    v2 = mov 3
    v9 = mov 8
    jump loop
loop:
    v3 = add v0, v1
    store scratch[v3+0], v3
    v4 = add v1, v2
    store scratch[v4+0], v4
    v5 = add v2, v0
    store scratch[v5+0], v5
    v0 = add v0, 1
    v1 = add v1, 1
    v2 = add v2, 1
    v9 = sub v9, 1
    iter_end
    bne v9, 0, loop, done
done:
    store scratch[v0+64], v1
    halt
}";
        let f = parse_func(src).unwrap();
        let t = crate::engine::force_min_bounds(&f).unwrap();
        let map = Layout::new(&[(t.pr(), t.sr())], 64).color_map(0, &t.alloc);
        let out = rewrite_thread(&f, &t.info, &t.alloc, &map);
        out.validate().unwrap();
        // Same behaviour as the reference.
        let run = |g: &Func| {
            let mut sim = regbal_sim::Simulator::new(regbal_sim::SimConfig::default());
            sim.add_thread(g.clone());
            sim.run(regbal_sim::StopWhen::Iterations(u64::MAX));
            sim.memory().read_bytes(regbal_ir::MemSpace::Scratch, 0, 128)
        };
        assert_eq!(run(&f), run(&out));
    }

    /// The self-loop edge can be split without corrupting the CFG.
    #[test]
    fn split_edge_handles_self_loops() {
        let mut f = parse_func(
            "func s {\nbb0:\n v0 = mov 4\n jump bb1\nbb1:\n v0 = sub v0, 1\n bne v0, 0, bb1, bb2\nbb2:\n halt\n}",
        )
        .unwrap();
        let mid = f.split_edge(regbal_ir::BlockId(1), regbal_ir::BlockId(1));
        f.validate().unwrap();
        // bb1's back edge now goes through `mid`.
        let succs: Vec<_> = f.block(regbal_ir::BlockId(1)).term.successors().collect();
        assert!(succs.contains(&mid));
        assert!(!succs.contains(&regbal_ir::BlockId(1)));
    }
}
