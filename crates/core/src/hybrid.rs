//! Hybrid allocation: balancing first, spilling only as a last resort.
//!
//! The paper's allocator reports failure when even maximal sharing and
//! splitting cannot fit `Σ PRᵢ + max SRᵢ` into the register file. A
//! production compiler must still emit code, so this module closes the
//! loop the way the paper's cost model suggests: spill the *cheapest*
//! live range of the *most demanding* thread (turning one register of
//! pressure into a handful of memory operations), then retry the
//! balancing allocator — the opposite priority of the stock compiler,
//! which spills before it ever considers sharing.
//!
//! "Cheapest" is the static [`SpillCosts`] model of `regbal-analysis`:
//! loop-depth-weighted occurrence counts with a deterministic
//! register-id tie-break. An optional scratchpad tier
//! ([`ScratchParams`]) packs the earliest — hence cheapest — evictions
//! into a small fast shared store before the overflow falls back to
//! ~20-cycle memory (the RegDem idea applied to a multithreaded NPU).

use crate::chaitin::insert_spill_code;
use crate::engine::{allocate_threads_sweep, EngineConfig, MultiAllocation};
use crate::error::AllocError;
use regbal_analysis::{ProgramInfo, SpillCosts};
use regbal_igraph::build_gig;
use regbal_ir::{Func, MemSpace, VReg};

/// The scratchpad spill tier: a small fast shared store the cheapest
/// spills are packed into before the overflow falls back to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchParams {
    /// Base byte address of this thread group's scratchpad spill area.
    pub base: i64,
    /// Capacity in 32-bit words shared by the whole group; slots are
    /// handed out in eviction order, so the cheapest spills land here.
    pub capacity: usize,
}

/// One spill decision of the hybrid loop, in eviction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillPick {
    /// The thread spilled from.
    pub thread: usize,
    /// The virtual register evicted.
    pub vreg: u32,
    /// Its static spill cost ([`SpillCosts`]).
    pub cost: u64,
    /// Whether the slot landed in the scratchpad tier (`false`: memory).
    pub to_scratch: bool,
}

/// Result of [`allocate_threads_with_spill`].
#[derive(Debug, Clone)]
pub struct HybridAllocation {
    /// The thread programs actually allocated — the inputs plus any
    /// spill code (still over virtual registers).
    pub funcs: Vec<Func>,
    /// The balancing allocation of those programs.
    pub alloc: MultiAllocation,
    /// Number of live ranges spilled per thread.
    pub spills: Vec<usize>,
    /// How many of each thread's spills live in the scratchpad tier
    /// (all zero without [`ScratchParams`]).
    pub scratch_spills: Vec<usize>,
    /// Every spill decision in eviction order, with its cost.
    pub picks: Vec<SpillPick>,
}

impl HybridAllocation {
    /// Rewrites every thread to physical registers.
    pub fn rewrite(&self) -> Vec<Func> {
        self.alloc.rewrite_funcs(&self.funcs)
    }
}

/// Maximum spill rounds before giving up.
const MAX_SPILL_ROUNDS: usize = 64;

/// Memory space used for hybrid spill slots.
const SPILL_SPACE: MemSpace = MemSpace::Sram;

/// Base address of the hybrid spill area (per-thread areas are spaced
/// a page apart). Public so callers that must reproduce
/// [`allocate_threads_with_spill`] byte-for-byte through the `_at`
/// entry points — or share one spill-sweep trajectory between the
/// hybrid and the ladder's balanced-spill rung, which packs from the
/// equal [`crate::DEFAULT_LADDER_SPILL_BASE`] — can name the default.
pub const DEFAULT_SPILL_BASE: i64 = 0x7_8000;

/// Allocates like [`allocate_threads`], but when the demand cannot be
/// reduced to `nreg` by sharing and splitting alone, spills live ranges
/// (cheapest first, from the thread with the highest residual demand)
/// until it fits.
///
/// # Errors
///
/// Returns [`AllocError::SpillDiverged`] if the demand still does not
/// fit after a bounded number of spill rounds.
pub fn allocate_threads_with_spill(
    funcs: &[Func],
    nreg: usize,
) -> Result<HybridAllocation, AllocError> {
    allocate_threads_with_spill_at(funcs, nreg, DEFAULT_SPILL_BASE)
}

/// Like [`allocate_threads_with_spill`], with an explicit base address
/// for the spill area (per-thread areas are spaced `0x1000` bytes apart
/// above it). Callers that allocate several thread groups over one
/// shared memory — e.g. the PUs of a [`regbal-sim` `Chip`] — must give
/// each group a disjoint base or their spill slots would alias.
///
/// # Errors
///
/// Returns [`AllocError::SpillDiverged`] if the demand still does not
/// fit after a bounded number of spill rounds.
pub fn allocate_threads_with_spill_at(
    funcs: &[Func],
    nreg: usize,
    spill_base: i64,
) -> Result<HybridAllocation, AllocError> {
    allocate_threads_with_spill_config(funcs, nreg, spill_base, EngineConfig::default())
}

/// Like [`allocate_threads_with_spill_at`], with an explicit
/// [`EngineConfig`] so the balancing retries inherit the caller's
/// iteration budget (the degradation ladder threads its budget through
/// here).
///
/// # Errors
///
/// As [`allocate_threads_with_spill_at`]; additionally propagates any
/// budget error of the underlying engine (e.g.
/// [`AllocError::IterationCapHit`]).
pub fn allocate_threads_with_spill_config(
    funcs: &[Func],
    nreg: usize,
    spill_base: i64,
    config: EngineConfig,
) -> Result<HybridAllocation, AllocError> {
    allocate_threads_with_spill_seeded(funcs, nreg, spill_base, config, None)
}

/// Like [`allocate_threads_with_spill_config`], seeding round 0 with a
/// balancing verdict the caller already computed for the *unmodified*
/// `funcs` under the same `nreg` and `config` (e.g. a cached
/// [`allocate_threads_with`] result from an earlier ladder rung). The
/// engine is deterministic, so reusing the verdict is behaviour-
/// preserving — it only skips the most expensive search of the loop.
///
/// # Errors
///
/// As [`allocate_threads_with_spill_config`].
pub fn allocate_threads_with_spill_seeded(
    funcs: &[Func],
    nreg: usize,
    spill_base: i64,
    config: EngineConfig,
    first: Option<Result<MultiAllocation, AllocError>>,
) -> Result<HybridAllocation, AllocError> {
    let seeds = first.map(|verdict| vec![verdict]);
    allocate_threads_with_spill_sweep(funcs, &[nreg], spill_base, config, seeds.as_deref())
        .pop()
        .expect("one verdict per target")
}

/// Like [`allocate_threads_with_spill_seeded`], with the scratchpad
/// spill tier: the cheapest evictions are packed into
/// `scratch.capacity` fast words at `scratch.base` and the overflow
/// falls back to memory above `spill_base`. `costs`, when given, must
/// hold one [`SpillCosts`] per thread computed from the unmodified
/// `funcs`.
///
/// # Errors
///
/// As [`allocate_threads_with_spill_config`].
pub fn allocate_threads_with_spill_scratch(
    funcs: &[Func],
    nreg: usize,
    spill_base: i64,
    config: EngineConfig,
    first: Option<Result<MultiAllocation, AllocError>>,
    scratch: &ScratchParams,
    costs: Option<&[SpillCosts]>,
) -> Result<HybridAllocation, AllocError> {
    let seeds = first.map(|verdict| vec![verdict]);
    allocate_threads_with_spill_sweep_scratch(
        funcs,
        &[nreg],
        spill_base,
        config,
        seeds.as_deref(),
        Some(scratch),
        costs,
    )
    .pop()
    .expect("one verdict per target")
}

/// Hybrid allocation of one thread group against *several* register-file
/// sizes at once. Which range spills in round `r` depends only on the
/// spill-augmented programs — never on `nreg` — so every target shares
/// one spill trajectory: each peels off at the first round whose
/// balancing verdict is no longer [`AllocError::Infeasible`], receiving
/// exactly the result a dedicated [`allocate_threads_with_spill_seeded`]
/// run would produce, while the expensive balancing search per round is
/// paid once via [`allocate_threads_sweep`].
///
/// `first`, when given, must hold one balancing verdict per target for
/// the *unmodified* `funcs` under the same `config` (e.g. a cached
/// sweep); it replaces round 0's search.
///
/// The returned vector has one verdict per target, in input order;
/// failures are reported per target exactly as the single-target entry
/// points do.
pub fn allocate_threads_with_spill_sweep(
    funcs: &[Func],
    targets: &[usize],
    spill_base: i64,
    config: EngineConfig,
    first: Option<&[Result<MultiAllocation, AllocError>]>,
) -> Vec<Result<HybridAllocation, AllocError>> {
    allocate_threads_with_spill_sweep_scratch(funcs, targets, spill_base, config, first, None, None)
}

/// Like [`allocate_threads_with_spill_sweep`], with the scratchpad
/// spill tier and an optional precomputed cost model.
///
/// `scratch`, when given, packs the earliest (cheapest) evictions into
/// `scratch.capacity` scratchpad words starting at `scratch.base`; the
/// overflow falls back to memory slots with exactly the numbering the
/// scratch-free loop would use, so a zero-capacity scratchpad is
/// bit-identical to [`allocate_threads_with_spill_sweep`].
///
/// `costs`, when given, must hold one [`SpillCosts`] per thread
/// computed from the *unmodified* `funcs` (e.g. the eval cache's
/// per-(function, nthreads) slot); otherwise they are computed here.
/// The costs of original, not-yet-spilled registers are unaffected by
/// spill code inserted for other registers, so computing them once up
/// front is behaviour-preserving.
pub fn allocate_threads_with_spill_sweep_scratch(
    funcs: &[Func],
    targets: &[usize],
    spill_base: i64,
    config: EngineConfig,
    first: Option<&[Result<MultiAllocation, AllocError>]>,
    scratch: Option<&ScratchParams>,
    costs: Option<&[SpillCosts]>,
) -> Vec<Result<HybridAllocation, AllocError>> {
    if let Some(seeds) = first {
        assert_eq!(
            seeds.len(),
            targets.len(),
            "one round-0 seed per swept target"
        );
    }
    if let Some(costs) = costs {
        assert_eq!(costs.len(), funcs.len(), "one cost model per thread");
    }
    let owned_costs: Vec<SpillCosts>;
    let costs: &[SpillCosts] = match costs {
        Some(c) => c,
        None => {
            owned_costs = funcs.iter().map(SpillCosts::compute).collect();
            &owned_costs
        }
    };
    let mut work: Vec<Func> = funcs.to_vec();
    let mut spills = vec![0usize; funcs.len()];
    let mut scratch_spills = vec![0usize; funcs.len()];
    let mut picks: Vec<SpillPick> = Vec::new();
    let mut spad_used = 0usize;
    let mut next_slot = vec![0i64; funcs.len()];
    let mut already: Vec<Vec<bool>> = funcs
        .iter()
        .map(|f| vec![false; f.num_vregs as usize])
        .collect();
    // Per-thread `RegPmax`, filled on the first infeasible round and
    // then refreshed only for the thread that spilled (spilling cannot
    // change the pressure of the other threads' programs).
    let mut pressure: Option<Vec<usize>> = None;

    let mut results: Vec<Option<Result<HybridAllocation, AllocError>>> =
        targets.iter().map(|_| None).collect();
    let mut pending: Vec<usize> = (0..targets.len()).collect();

    for round in 0..MAX_SPILL_ROUNDS {
        let verdicts: Vec<Result<MultiAllocation, AllocError>> = match (round, first) {
            (0, Some(seeds)) => pending.iter().map(|&i| seeds[i].clone()).collect(),
            _ => {
                let pending_targets: Vec<usize> =
                    pending.iter().map(|&i| targets[i]).collect();
                allocate_threads_sweep(&work, &pending_targets, config)
            }
        };
        let mut still = Vec::with_capacity(pending.len());
        for (&i, verdict) in pending.iter().zip(verdicts) {
            match verdict {
                Ok(alloc) => {
                    results[i] = Some(Ok(HybridAllocation {
                        funcs: work.clone(),
                        alloc,
                        spills: spills.clone(),
                        scratch_spills: scratch_spills.clone(),
                        picks: picks.clone(),
                    }));
                }
                Err(AllocError::Infeasible { .. }) => still.push(i),
                Err(other) => results[i] = Some(Err(other)),
            }
        }
        pending = still;
        if pending.is_empty() {
            break;
        }
        let p = pressure.get_or_insert_with(|| work.iter().map(thread_pressure).collect());
        let t = most_demanding_thread(p);
        let Some(v) = spill_candidate(&work[t], &already[t], &costs[t]) else {
            let rounds = spills.iter().sum();
            for &i in &pending {
                results[i] = Some(Err(AllocError::SpillDiverged { rounds }));
            }
            pending.clear();
            break;
        };
        let (slot, space, to_scratch) = match scratch {
            Some(sp) if spad_used < sp.capacity => {
                let slot = sp.base + (spad_used as i64) * 4;
                spad_used += 1;
                (slot, MemSpace::Spad, true)
            }
            _ => {
                let slot = spill_base + (t as i64) * 0x1000 + next_slot[t];
                next_slot[t] += 4;
                (slot, SPILL_SPACE, false)
            }
        };
        already[t][v.index()] = true;
        insert_spill_code(&mut work[t], v, slot, space);
        spills[t] += 1;
        scratch_spills[t] += usize::from(to_scratch);
        picks.push(SpillPick {
            thread: t,
            vreg: v.0,
            cost: costs[t].cost(v.0),
            to_scratch,
        });
        p[t] = thread_pressure(&work[t]);
    }
    let rounds: usize = spills.iter().sum();
    for &i in &pending {
        results[i] = Some(Err(AllocError::SpillDiverged { rounds }));
    }
    results
        .into_iter()
        .map(|r| r.expect("every target resolved"))
        .collect()
}

/// The pressure measure of one thread's program (`RegPmax`).
fn thread_pressure(func: &Func) -> usize {
    ProgramInfo::compute(func).pressure.regp_max
}

/// The thread whose register floor is highest — the one whose pressure
/// must come down for the machine-wide demand to shrink. Ties pick the
/// *last* maximal thread, matching `Iterator::max_by_key`.
fn most_demanding_thread(pressure: &[usize]) -> usize {
    let mut best = 0;
    for (i, &p) in pressure.iter().enumerate() {
        if p >= pressure[best] {
            best = i;
        }
    }
    best
}

/// The cheapest eviction per unit of pressure relief: Chaitin's spill
/// metric with the static cost model ([`SpillCosts`]:
/// loop-depth-weighted occurrence counts) as the numerator and the
/// range's interference degree in the *current* program as the
/// denominator. A raw-cost order ignores how much pressure an eviction
/// actually relieves and can grind through dozens of useless spills on
/// clique-heavy programs; dividing by degree keeps the loop convergent
/// while still serving the cheapest ranges first. Ties fall back to
/// the deterministic `(cost, register id)` key.
fn spill_candidate(func: &Func, already: &[bool], costs: &SpillCosts) -> Option<VReg> {
    let info = ProgramInfo::compute(func);
    let gig = build_gig(&info);
    let nv = func.num_vregs as usize;
    // Only original ranges: spill temporaries (v >= already.len()) and
    // already-spilled ranges cannot relieve pressure further. A zero
    // cost means the register has no occurrences — nothing to spill.
    (0..nv.min(already.len()))
        .filter(|&v| !already[v] && costs.cost(v as u32) > 0 && gig.degree(v) > 0)
        .min_by(|&a, &b| {
            // cost(a)/deg(a) < cost(b)/deg(b), cross-multiplied to stay
            // in exact integer arithmetic.
            let ra = costs.cost(a as u32) as u128 * gig.degree(b) as u128;
            let rb = costs.cost(b as u32) as u128 * gig.degree(a) as u128;
            ra.cmp(&rb)
                .then_with(|| costs.key(a as u32).cmp(&costs.key(b as u32)))
        })
        .map(|v| VReg(v as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{allocate_threads, allocate_threads_with};
    use regbal_ir::parse_func;

    /// A function with five co-live values across a switch.
    fn hot() -> Func {
        parse_func(
            "
func hot {
bb0:
    v0 = mov 1
    v1 = mov 2
    v2 = mov 3
    v3 = mov 4
    v4 = mov 5
    ctx
    v5 = add v0, v1
    v5 = add v5, v2
    v5 = add v5, v3
    v5 = add v5, v4
    store scratch[v5+0], v5
    halt
}",
        )
        .unwrap()
    }

    #[test]
    fn falls_back_to_spilling_when_sharing_cannot_fit() {
        let funcs = vec![hot(), hot()];
        // MinPR is 5 per thread: 2×5 > 8, so pure balancing must fail...
        assert!(allocate_threads(&funcs, 8).is_err());
        // ...but the hybrid fits by spilling.
        let hybrid = allocate_threads_with_spill(&funcs, 8).unwrap();
        assert!(hybrid.spills.iter().sum::<usize>() > 0);
        assert!(hybrid.alloc.total_registers() <= 8);
        let physical = hybrid.rewrite();
        assert_eq!(physical.len(), 2);
        for f in &physical {
            f.validate().unwrap();
            assert!(f.num_ctx_insts() > hot().num_ctx_insts(), "spill traffic");
        }
    }

    #[test]
    fn no_spills_when_sharing_suffices() {
        let funcs = vec![hot(), hot()];
        let hybrid = allocate_threads_with_spill(&funcs, 32).unwrap();
        assert_eq!(hybrid.spills, vec![0, 0]);
        assert_eq!(hybrid.funcs[0], hot(), "programs untouched");
    }

    #[test]
    fn explicit_spill_base_relocates_slots() {
        let funcs = vec![hot(), hot()];
        let a = allocate_threads_with_spill_at(&funcs, 8, 0x1_0000).unwrap();
        let b = allocate_threads_with_spill_at(&funcs, 8, 0x2_0000).unwrap();
        // Same spill decisions, different slot addresses.
        assert_eq!(a.spills, b.spills);
        assert!(a.spills.iter().sum::<usize>() > 0);
        assert_ne!(a.funcs, b.funcs, "spill addresses must move with the base");
        // The default entry point keeps its historical area.
        let d = allocate_threads_with_spill(&funcs, 8).unwrap();
        assert_eq!(d.spills, a.spills);
    }

    #[test]
    fn seeded_round_zero_matches_the_unseeded_loop() {
        let funcs = vec![hot(), hot()];
        let verdict = allocate_threads_with(&funcs, 8, EngineConfig::default());
        assert!(verdict.is_err());
        let seeded = allocate_threads_with_spill_seeded(
            &funcs,
            8,
            DEFAULT_SPILL_BASE,
            EngineConfig::default(),
            Some(verdict),
        )
        .unwrap();
        let plain = allocate_threads_with_spill(&funcs, 8).unwrap();
        assert_eq!(seeded.funcs, plain.funcs);
        assert_eq!(seeded.spills, plain.spills);
        // Seeding with a success short-circuits without touching code.
        let ok = allocate_threads_with(&funcs, 32, EngineConfig::default());
        let seeded_ok = allocate_threads_with_spill_seeded(
            &funcs,
            32,
            DEFAULT_SPILL_BASE,
            EngineConfig::default(),
            Some(ok),
        )
        .unwrap();
        assert_eq!(seeded_ok.spills, vec![0, 0]);
        assert_eq!(seeded_ok.funcs[0], hot());
    }

    /// The shared spill trajectory must hand every swept size the exact
    /// verdict of a dedicated run: same spill code, same counts, same
    /// allocation, same error payloads — across sizes that need no
    /// spills, some spills, and sizes that diverge entirely.
    #[test]
    fn spill_sweep_matches_independent_runs() {
        let funcs = vec![hot(), hot()];
        let targets = [32usize, 8, 1, 12, 8, 2];
        let swept = allocate_threads_with_spill_sweep(
            &funcs,
            &targets,
            DEFAULT_SPILL_BASE,
            EngineConfig::default(),
            None,
        );
        for (&t, got) in targets.iter().zip(&swept) {
            let solo = allocate_threads_with_spill(&funcs, t);
            match (got, &solo) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.funcs, b.funcs, "nreg={t}");
                    assert_eq!(a.spills, b.spills, "nreg={t}");
                    assert_eq!(
                        format!("{:?}", a.alloc.threads),
                        format!("{:?}", b.alloc.threads),
                        "nreg={t}"
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "nreg={t}"),
                other => panic!("verdict kind diverged at nreg={t}: {other:?}"),
            }
        }
        // Seeding round 0 from a balanced sweep is behaviour-preserving.
        let seeds = allocate_threads_sweep(&funcs, &targets, EngineConfig::default());
        let seeded = allocate_threads_with_spill_sweep(
            &funcs,
            &targets,
            DEFAULT_SPILL_BASE,
            EngineConfig::default(),
            Some(&seeds),
        );
        for ((&t, a), b) in targets.iter().zip(&swept).zip(&seeded) {
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "seeded sweep diverged at nreg={t}"
            );
        }
    }

    #[test]
    fn impossible_budget_still_errors() {
        let funcs = vec![hot()];
        // One register cannot hold a base address and a value at once.
        let err = allocate_threads_with_spill(&funcs, 1).unwrap_err();
        assert!(matches!(err, AllocError::SpillDiverged { .. }), "{err}");
    }

    #[test]
    fn eviction_order_is_ascending_cost_per_thread() {
        let funcs = vec![hot(), hot()];
        let hybrid = allocate_threads_with_spill(&funcs, 8).unwrap();
        assert!(hybrid.picks.len() >= 2, "need several picks to order");
        for t in 0..funcs.len() {
            let costs: Vec<u64> = hybrid
                .picks
                .iter()
                .filter(|p| p.thread == t)
                .map(|p| p.cost)
                .collect();
            assert!(
                costs.windows(2).all(|w| w[0] <= w[1]),
                "thread {t} evictions not cost-ordered: {costs:?}"
            );
        }
        assert!(hybrid.picks.iter().all(|p| p.cost > 0));
        assert_eq!(hybrid.scratch_spills, vec![0, 0], "no scratch tier");
    }

    fn scratch(capacity: usize) -> ScratchParams {
        ScratchParams {
            base: 0x100,
            capacity,
        }
    }

    /// Zero-capacity scratchpad must degrade bit-identically to the
    /// plain spill loop: same code, same slots, same allocation.
    #[test]
    fn zero_capacity_scratch_matches_plain_spill_bit_for_bit() {
        let funcs = vec![hot(), hot()];
        let plain = allocate_threads_with_spill(&funcs, 8).unwrap();
        let zero = allocate_threads_with_spill_scratch(
            &funcs,
            8,
            DEFAULT_SPILL_BASE,
            EngineConfig::default(),
            None,
            &scratch(0),
            None,
        )
        .unwrap();
        assert_eq!(plain.funcs, zero.funcs);
        assert_eq!(plain.spills, zero.spills);
        assert_eq!(zero.scratch_spills, vec![0, 0]);
        assert_eq!(
            format!("{:?}", plain.alloc.threads),
            format!("{:?}", zero.alloc.threads)
        );
    }

    /// With capacity exactly equal to the spill count, every spill
    /// packs into the scratchpad and the slots are dense from the base.
    #[test]
    fn exactly_full_packing_uses_every_slot_and_no_memory() {
        let funcs = vec![hot(), hot()];
        let plain = allocate_threads_with_spill(&funcs, 8).unwrap();
        let n: usize = plain.spills.iter().sum();
        assert!(n > 0);
        let full = allocate_threads_with_spill_scratch(
            &funcs,
            8,
            DEFAULT_SPILL_BASE,
            EngineConfig::default(),
            None,
            &scratch(n),
            None,
        )
        .unwrap();
        assert_eq!(full.spills, plain.spills, "same spill decisions");
        assert_eq!(full.scratch_spills.iter().sum::<usize>(), n);
        assert!(full.picks.iter().all(|p| p.to_scratch));
        // Every spill slot is a dense Spad word at base + 4k (the slot
        // address is the immediate moved into the store's base
        // register); no spill store targets any other space.
        let mut spad_slots = std::collections::BTreeSet::new();
        for f in &full.funcs {
            for (_, block) in f.iter_blocks() {
                for (k, inst) in block.insts.iter().enumerate() {
                    let regbal_ir::Inst::Store { space, base, .. } = inst else {
                        continue;
                    };
                    // `hot()`'s own store targets Scratch; spill stores
                    // may only target the spad here, never SRAM.
                    assert_ne!(*space, SPILL_SPACE, "no memory-tier spill stores");
                    if *space != MemSpace::Spad {
                        continue;
                    }
                    let addr_mov = &block.insts[k - 1];
                    if let regbal_ir::Inst::Un {
                        dst,
                        src: regbal_ir::Operand::Imm(slot),
                        ..
                    } = addr_mov
                    {
                        assert_eq!(dst, base);
                        spad_slots.insert(*slot);
                    } else {
                        panic!("spill store not preceded by its address mov");
                    }
                }
            }
        }
        assert_eq!(
            spad_slots,
            (0..n as i64).map(|k| 0x100 + 4 * k).collect(),
            "dense packing from the base"
        );
    }

    /// With less capacity than spills, the scratchpad takes the
    /// cheapest (earliest) evictions and the overflow goes to memory
    /// in the same cost order the plain loop uses.
    #[test]
    fn overflow_respects_the_cost_model() {
        let funcs = vec![hot(), hot()];
        let plain = allocate_threads_with_spill(&funcs, 8).unwrap();
        let n: usize = plain.spills.iter().sum();
        assert!(n >= 2, "need an overflow to observe");
        let cap = 1;
        let part = allocate_threads_with_spill_scratch(
            &funcs,
            8,
            DEFAULT_SPILL_BASE,
            EngineConfig::default(),
            None,
            &scratch(cap),
            None,
        )
        .unwrap();
        assert_eq!(part.spills, plain.spills, "same spill decisions");
        assert_eq!(part.scratch_spills.iter().sum::<usize>(), cap);
        // The scratch-resident picks are exactly the first `cap`
        // evictions — the cheapest under the per-round cost order.
        assert!(part.picks[..cap].iter().all(|p| p.to_scratch));
        assert!(part.picks[cap..].iter().all(|p| !p.to_scratch));
        let max_scratch = part.picks[..cap].iter().map(|p| p.cost).max().unwrap();
        let same_thread_overflow: Vec<u64> = part.picks[cap..]
            .iter()
            .filter(|p| p.thread == part.picks[0].thread)
            .map(|p| p.cost)
            .collect();
        assert!(
            same_thread_overflow.iter().all(|&c| c >= max_scratch),
            "overflow spills must not be cheaper than the packed ones: \
             {max_scratch} vs {same_thread_overflow:?}"
        );
    }
}
