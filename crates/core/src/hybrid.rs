//! Hybrid allocation: balancing first, spilling only as a last resort.
//!
//! The paper's allocator reports failure when even maximal sharing and
//! splitting cannot fit `Σ PRᵢ + max SRᵢ` into the register file. A
//! production compiler must still emit code, so this module closes the
//! loop the way the paper's cost model suggests: spill the *cheapest*
//! live range of the *most demanding* thread (turning one register of
//! pressure into a handful of memory operations), then retry the
//! balancing allocator — the opposite priority of the stock compiler,
//! which spills before it ever considers sharing.

use crate::chaitin::insert_spill_code;
use crate::engine::{allocate_threads_with, EngineConfig, MultiAllocation};
use crate::error::AllocError;
use regbal_analysis::ProgramInfo;
use regbal_igraph::build_gig;
use regbal_ir::{Func, MemSpace, Reg, VReg};

/// Result of [`allocate_threads_with_spill`].
#[derive(Debug, Clone)]
pub struct HybridAllocation {
    /// The thread programs actually allocated — the inputs plus any
    /// spill code (still over virtual registers).
    pub funcs: Vec<Func>,
    /// The balancing allocation of those programs.
    pub alloc: MultiAllocation,
    /// Number of live ranges spilled per thread.
    pub spills: Vec<usize>,
}

impl HybridAllocation {
    /// Rewrites every thread to physical registers.
    pub fn rewrite(&self) -> Vec<Func> {
        self.alloc.rewrite_funcs(&self.funcs)
    }
}

/// Maximum spill rounds before giving up.
const MAX_SPILL_ROUNDS: usize = 64;

/// Memory space used for hybrid spill slots.
const SPILL_SPACE: MemSpace = MemSpace::Sram;

/// Base address of the hybrid spill area (per-thread areas are spaced
/// a page apart).
const SPILL_BASE: i64 = 0x7_8000;

/// Allocates like [`allocate_threads`], but when the demand cannot be
/// reduced to `nreg` by sharing and splitting alone, spills live ranges
/// (cheapest first, from the thread with the highest residual demand)
/// until it fits.
///
/// # Errors
///
/// Returns [`AllocError::SpillDiverged`] if the demand still does not
/// fit after a bounded number of spill rounds.
pub fn allocate_threads_with_spill(
    funcs: &[Func],
    nreg: usize,
) -> Result<HybridAllocation, AllocError> {
    allocate_threads_with_spill_at(funcs, nreg, SPILL_BASE)
}

/// Like [`allocate_threads_with_spill`], with an explicit base address
/// for the spill area (per-thread areas are spaced `0x1000` bytes apart
/// above it). Callers that allocate several thread groups over one
/// shared memory — e.g. the PUs of a [`regbal-sim` `Chip`] — must give
/// each group a disjoint base or their spill slots would alias.
///
/// # Errors
///
/// Returns [`AllocError::SpillDiverged`] if the demand still does not
/// fit after a bounded number of spill rounds.
pub fn allocate_threads_with_spill_at(
    funcs: &[Func],
    nreg: usize,
    spill_base: i64,
) -> Result<HybridAllocation, AllocError> {
    allocate_threads_with_spill_config(funcs, nreg, spill_base, EngineConfig::default())
}

/// Like [`allocate_threads_with_spill_at`], with an explicit
/// [`EngineConfig`] so the balancing retries inherit the caller's
/// iteration budget (the degradation ladder threads its budget through
/// here).
///
/// # Errors
///
/// As [`allocate_threads_with_spill_at`]; additionally propagates any
/// budget error of the underlying engine (e.g.
/// [`AllocError::IterationCapHit`]).
pub fn allocate_threads_with_spill_config(
    funcs: &[Func],
    nreg: usize,
    spill_base: i64,
    config: EngineConfig,
) -> Result<HybridAllocation, AllocError> {
    let mut work: Vec<Func> = funcs.to_vec();
    let mut spills = vec![0usize; funcs.len()];
    let mut next_slot = vec![0i64; funcs.len()];
    let mut already: Vec<Vec<bool>> = funcs
        .iter()
        .map(|f| vec![false; f.num_vregs as usize])
        .collect();

    for _round in 0..MAX_SPILL_ROUNDS {
        match allocate_threads_with(&work, nreg, config) {
            Ok(alloc) => {
                return Ok(HybridAllocation {
                    funcs: work,
                    alloc,
                    spills,
                })
            }
            Err(AllocError::Infeasible { .. }) => {
                let t = most_demanding_thread(&work);
                let Some(v) = spill_candidate(&work[t], &already[t]) else {
                    return Err(AllocError::SpillDiverged {
                        rounds: spills.iter().sum(),
                    });
                };
                let slot = spill_base + (t as i64) * 0x1000 + next_slot[t];
                next_slot[t] += 4;
                already[t][v.index()] = true;
                insert_spill_code(&mut work[t], v, slot, SPILL_SPACE);
                spills[t] += 1;
            }
            Err(other) => return Err(other),
        }
    }
    Err(AllocError::SpillDiverged {
        rounds: spills.iter().sum(),
    })
}

/// The thread whose register floor (`MinR`) is highest — the one whose
/// pressure must come down for the machine-wide demand to shrink.
fn most_demanding_thread(funcs: &[Func]) -> usize {
    funcs
        .iter()
        .enumerate()
        .max_by_key(|(_, f)| ProgramInfo::compute(f).pressure.regp_max)
        .map(|(i, _)| i)
        .expect("at least one thread")
}

/// Chaitin's spill metric: fewest occurrences per interference degree,
/// restricted to ranges that actually relieve pressure (degree > 0)
/// and have not been spilled before (re-spilling a def→store stub
/// cannot reduce pressure further).
fn spill_candidate(func: &Func, already: &[bool]) -> Option<VReg> {
    let info = ProgramInfo::compute(func);
    let gig = build_gig(&info);
    let nv = func.num_vregs as usize;
    let mut occurrences = vec![0usize; nv];
    let mut count = |r: Reg| {
        if let Reg::Virt(v) = r {
            occurrences[v.index()] += 1;
        }
    };
    for (_, _, inst) in func.iter_insts() {
        inst.defs().for_each(&mut count);
        inst.uses().for_each(&mut count);
    }
    for (_, b) in func.iter_blocks() {
        b.term.uses().for_each(&mut count);
    }
    (0..nv)
        .filter(|&v| occurrences[v] > 0 && gig.degree(v) > 0)
        // Only original ranges: spill temporaries (v >= already.len())
        // and already-spilled ranges cannot relieve pressure further.
        .filter(|&v| v < already.len() && !already[v])
        .min_by(|&a, &b| {
            let ca = occurrences[a] as f64 / gig.degree(a) as f64;
            let cb = occurrences[b] as f64 / gig.degree(b) as f64;
            ca.partial_cmp(&cb).expect("finite costs")
        })
        .map(|v| VReg(v as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::allocate_threads;
    use regbal_ir::parse_func;

    /// A function with five co-live values across a switch.
    fn hot() -> Func {
        parse_func(
            "
func hot {
bb0:
    v0 = mov 1
    v1 = mov 2
    v2 = mov 3
    v3 = mov 4
    v4 = mov 5
    ctx
    v5 = add v0, v1
    v5 = add v5, v2
    v5 = add v5, v3
    v5 = add v5, v4
    store scratch[v5+0], v5
    halt
}",
        )
        .unwrap()
    }

    #[test]
    fn falls_back_to_spilling_when_sharing_cannot_fit() {
        let funcs = vec![hot(), hot()];
        // MinPR is 5 per thread: 2×5 > 8, so pure balancing must fail...
        assert!(allocate_threads(&funcs, 8).is_err());
        // ...but the hybrid fits by spilling.
        let hybrid = allocate_threads_with_spill(&funcs, 8).unwrap();
        assert!(hybrid.spills.iter().sum::<usize>() > 0);
        assert!(hybrid.alloc.total_registers() <= 8);
        let physical = hybrid.rewrite();
        assert_eq!(physical.len(), 2);
        for f in &physical {
            f.validate().unwrap();
            assert!(f.num_ctx_insts() > hot().num_ctx_insts(), "spill traffic");
        }
    }

    #[test]
    fn no_spills_when_sharing_suffices() {
        let funcs = vec![hot(), hot()];
        let hybrid = allocate_threads_with_spill(&funcs, 32).unwrap();
        assert_eq!(hybrid.spills, vec![0, 0]);
        assert_eq!(hybrid.funcs[0], hot(), "programs untouched");
    }

    #[test]
    fn explicit_spill_base_relocates_slots() {
        let funcs = vec![hot(), hot()];
        let a = allocate_threads_with_spill_at(&funcs, 8, 0x1_0000).unwrap();
        let b = allocate_threads_with_spill_at(&funcs, 8, 0x2_0000).unwrap();
        // Same spill decisions, different slot addresses.
        assert_eq!(a.spills, b.spills);
        assert!(a.spills.iter().sum::<usize>() > 0);
        assert_ne!(a.funcs, b.funcs, "spill addresses must move with the base");
        // The default entry point keeps its historical area.
        let d = allocate_threads_with_spill(&funcs, 8).unwrap();
        assert_eq!(d.spills, a.spills);
    }

    #[test]
    fn impossible_budget_still_errors() {
        let funcs = vec![hot()];
        // One register cannot hold a base address and a value at once.
        let err = allocate_threads_with_spill(&funcs, 1).unwrap_err();
        assert!(matches!(err, AllocError::SpillDiverged { .. }), "{err}");
    }
}
