//! The intra-thread allocation state and the Reduce-PR / Reduce-SR
//! operations of paper Fig. 10.
//!
//! A [`ThreadAlloc`] holds, for one thread, a partition of every live
//! range into colored *nodes* (split live-range fragments) together with
//! the thread's private and shared color palettes. The two reduction
//! entry points each give up one color:
//!
//! * [`ThreadAlloc::reduce_private`] — drop one private color
//!   (Reduce-PR): boundary nodes using it are recolored or split at
//!   NSR granularity (the paper's *Cut-if-conflict* and *NSR exclusion*,
//!   Figs. 11–12);
//! * [`ThreadAlloc::reduce_shared`] — drop one shared color
//!   (Reduce-SR): internal nodes are recolored or split at live-range
//!   overlap granularity (Fig. 13).
//!
//! Both finish with *eliminate-unnecessary-moves*, the merge pass of
//! paper §7.2. Costs are measured in `mov` instructions: the number of
//! value-flow edges whose two endpoint fragments carry different colors.

use crate::half::HalfPoint;
use crate::livemap::LiveMap;
use regbal_ir::{BitSet, VReg};
use std::sync::Arc;

/// Identifier of a live-range fragment within a [`ThreadAlloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// One live-range fragment: a set of half-points of a single virtual
/// register, holding one color.
#[derive(Debug, Clone)]
struct Node {
    vreg: VReg,
    points: BitSet,
    boundary: bool,
    color: u32,
    alive: bool,
}

/// Work-limit multiplier for a single color elimination; prevents
/// pathological split cascades from looping.
const VACATE_STEP_LIMIT_PER_NODE: usize = 24;

/// The allocation state of one thread.
#[derive(Debug, Clone)]
pub struct ThreadAlloc {
    live: Arc<LiveMap>,
    nodes: Vec<Node>,
    by_vreg: Vec<Vec<NodeId>>,
    private: Vec<u32>,
    shared: Vec<u32>,
}

impl ThreadAlloc {
    /// Builds the initial state from a total coloring: one unsplit node
    /// per live virtual register. Colors `0..max_pr` form the private
    /// palette, `max_pr..max_r` the shared palette.
    ///
    /// # Panics
    ///
    /// Panics if a live register has no color, a boundary node has a
    /// non-private color, or two interfering nodes share a color.
    pub fn new(live: Arc<LiveMap>, colors: &[Option<u32>], max_pr: usize, max_r: usize) -> Self {
        assert!(max_pr <= max_r, "PR cannot exceed R");
        let nv = live.num_vregs();
        let mut nodes = Vec::new();
        let mut by_vreg = vec![Vec::new(); nv];
        for (vi, slots) in by_vreg.iter_mut().enumerate() {
            let v = VReg(vi as u32);
            if !live.is_live(v) {
                continue;
            }
            let color = colors
                .get(vi)
                .copied()
                .flatten()
                .expect("bound estimation colors every live register");
            let boundary = !live.boundary_halves(v).is_empty();
            assert!(
                !boundary || (color as usize) < max_pr,
                "boundary node {v} must use a private color, got {color}"
            );
            assert!((color as usize) < max_r, "color {color} out of palette");
            let id = NodeId(nodes.len() as u32);
            nodes.push(Node {
                vreg: v,
                points: live.live(v).clone(),
                boundary,
                color,
                alive: true,
            });
            slots.push(id);
        }
        let alloc = ThreadAlloc {
            live,
            nodes,
            by_vreg,
            private: (0..max_pr as u32).collect(),
            shared: (max_pr as u32..max_r as u32).collect(),
        };
        alloc.assert_consistent();
        alloc
    }

    /// The live map the allocation is built over.
    pub fn live_map(&self) -> &LiveMap {
        &self.live
    }

    /// Number of private colors (the thread's `PR`).
    pub fn pr(&self) -> usize {
        self.private.len()
    }

    /// Number of shared colors (the thread's `SR`).
    pub fn sr(&self) -> usize {
        self.shared.len()
    }

    /// Total colors (`R = PR + SR`).
    pub fn r(&self) -> usize {
        self.private.len() + self.shared.len()
    }

    /// The private color palette, in physical-assignment order.
    pub fn private_palette(&self) -> &[u32] {
        &self.private
    }

    /// The shared color palette, in physical-assignment order.
    pub fn shared_palette(&self) -> &[u32] {
        &self.shared
    }

    /// Live fragment ids, in arbitrary order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// The virtual register of a fragment.
    pub fn node_vreg(&self, id: NodeId) -> VReg {
        self.nodes[id.index()].vreg
    }

    /// The half-point set of a fragment.
    pub fn node_points(&self, id: NodeId) -> &BitSet {
        &self.nodes[id.index()].points
    }

    /// The color of a fragment.
    pub fn node_color(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].color
    }

    /// Whether the fragment contains a boundary half-point (and thus
    /// requires a private color).
    pub fn node_is_boundary(&self, id: NodeId) -> bool {
        self.nodes[id.index()].boundary
    }

    /// The fragment of `v` covering half-point `h`, if `v` is live
    /// there.
    pub fn node_at(&self, v: VReg, h: HalfPoint) -> Option<NodeId> {
        self.by_vreg[v.index()]
            .iter()
            .copied()
            .find(|&id| self.nodes[id.index()].alive && self.nodes[id.index()].points.contains(h.index()))
    }

    /// Number of fragments a register is split into.
    pub fn num_fragments(&self, v: VReg) -> usize {
        self.by_vreg[v.index()]
            .iter()
            .filter(|id| self.nodes[id.index()].alive)
            .count()
    }

    /// Total `mov` instructions implied by the current partition: flow
    /// edges whose endpoints lie in fragments of different colors.
    pub fn moves(&self) -> usize {
        let mut total = 0;
        for vi in 0..self.live.num_vregs() {
            let v = VReg(vi as u32);
            if self.num_fragments(v) <= 1 {
                continue;
            }
            for &(a, b) in self.live.flows(v) {
                let na = self.node_at(v, a).expect("flow endpoint is live");
                let nb = self.node_at(v, b).expect("flow endpoint is live");
                if self.nodes[na.index()].color != self.nodes[nb.index()].color {
                    total += 1;
                }
            }
        }
        total
    }

    /// The moves as concrete `(from, to, vreg, old_color, new_color)`
    /// tuples, for the rewriter.
    pub fn move_sites(&self) -> Vec<MoveSite> {
        let mut sites = Vec::new();
        for vi in 0..self.live.num_vregs() {
            let v = VReg(vi as u32);
            if self.num_fragments(v) <= 1 {
                continue;
            }
            for &(a, b) in self.live.flows(v) {
                let na = self.node_at(v, a).expect("flow endpoint is live");
                let nb = self.node_at(v, b).expect("flow endpoint is live");
                let (ca, cb) = (self.nodes[na.index()].color, self.nodes[nb.index()].color);
                if ca != cb {
                    sites.push(MoveSite {
                        from: a,
                        to: b,
                        vreg: v,
                        old_color: ca,
                        new_color: cb,
                    });
                }
            }
        }
        sites
    }

    // ------------------------------------------------------------------
    // Fault injection — test-harness API.
    // ------------------------------------------------------------------

    /// Forcibly recolors fragment `id`, **bypassing every invariant**.
    ///
    /// This exists to manufacture broken allocations on purpose: the
    /// verifier's unit tests and the simulator's sanitizer harness
    /// inject exactly the bug classes (a boundary fragment in a shared
    /// register, co-live fragments sharing a color, ...) that
    /// [`crate::verify`] and the dynamic sanitizer must catch. Never
    /// call it from allocation code.
    pub fn force_color(&mut self, id: NodeId, color: u32) {
        self.nodes[id.index()].color = color;
    }

    /// Forcibly flips fragment `id`'s boundary flag (see
    /// [`force_color`](Self::force_color) — fault injection only).
    pub fn force_boundary(&mut self, id: NodeId, boundary: bool) {
        self.nodes[id.index()].boundary = boundary;
    }

    /// Forcibly replaces both palettes (see
    /// [`force_color`](Self::force_color) — fault injection only).
    pub fn force_palettes(&mut self, private: Vec<u32>, shared: Vec<u32>) {
        self.private = private;
        self.shared = shared;
    }

    /// Forcibly replaces fragment `id`'s program points (see
    /// [`force_color`](Self::force_color) — fault injection only).
    pub fn force_points(&mut self, id: NodeId, points: BitSet) {
        self.nodes[id.index()].points = points;
    }

    // ------------------------------------------------------------------
    // Conflict queries
    // ------------------------------------------------------------------

    /// Fragments of *other* registers with color `c` overlapping
    /// `points`.
    fn conflicting_nodes(&self, points: &BitSet, c: u32, vreg: VReg) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive && n.color == c && n.vreg != vreg)
            .filter(|(_, n)| n.points.intersects(points))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Whether color `c` is free over `points` for register `vreg`.
    fn color_free(&self, points: &BitSet, c: u32, vreg: VReg) -> bool {
        self.nodes
            .iter()
            .all(|n| !(n.alive && n.color == c && n.vreg != vreg && n.points.intersects(points)))
    }

    /// The union of the overlap between `points` and fragments of other
    /// registers colored `c`.
    fn conflict_mask(&self, points: &BitSet, c: u32, vreg: VReg) -> BitSet {
        let mut mask = BitSet::new(self.live.num_halves());
        for n in &self.nodes {
            if n.alive && n.color == c && n.vreg != vreg && n.points.intersects(points) {
                let mut overlap = n.points.clone();
                overlap.intersect_with(points);
                mask.union_with(&overlap);
            }
        }
        mask
    }

    /// The colors a fragment may use: private only for boundary
    /// fragments, the full palette otherwise.
    fn palette_for(&self, boundary: bool) -> Vec<u32> {
        if boundary {
            self.private.clone()
        } else {
            self.private.iter().chain(self.shared.iter()).copied().collect()
        }
    }

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    fn recolor(&mut self, id: NodeId, c: u32) {
        self.nodes[id.index()].color = c;
    }

    /// Splits `part` (atom-closed, proper non-empty subset) out of `id`
    /// into a new fragment carrying the same color.
    fn split(&mut self, id: NodeId, part: BitSet) -> NodeId {
        debug_assert!(!part.is_empty());
        let vreg = self.nodes[id.index()].vreg;
        let bh = self.live.boundary_halves(vreg).clone();
        let node = &mut self.nodes[id.index()];
        debug_assert!(part.is_subset(&node.points));
        node.points.difference_with(&part);
        debug_assert!(!node.points.is_empty(), "split must be proper");
        let color = node.color;
        node.boundary = node.points.intersects(&bh);
        let boundary = part.intersects(&bh);
        let new_id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            vreg,
            points: part,
            boundary,
            color,
            alive: true,
        });
        self.by_vreg[vreg.index()].push(new_id);
        new_id
    }

    /// Merges fragment `b` into fragment `a` (same register); `a` keeps
    /// its color.
    fn merge(&mut self, a: NodeId, b: NodeId) {
        debug_assert_ne!(a, b);
        let pts = self.nodes[b.index()].points.clone();
        let bb = self.nodes[b.index()].boundary;
        debug_assert_eq!(self.nodes[a.index()].vreg, self.nodes[b.index()].vreg);
        self.nodes[b.index()].alive = false;
        let node = &mut self.nodes[a.index()];
        node.points.union_with(&pts);
        node.boundary |= bb;
    }

    // ------------------------------------------------------------------
    // Color elimination (the heart of Reduce-PR / Reduce-SR)
    // ------------------------------------------------------------------

    /// Demotes private color `banned` (paper `Reduce_PR`, Figs. 11-12):
    /// every *boundary* fragment vacates it; internal fragments may keep
    /// it, in which case the color moves to the shared palette
    /// (`PR-1, SR+1` — Fig. 11's split fragment "keeps color c"). If no
    /// internal user remains the color disappears entirely (`R-1`).
    /// Returns `None` if stuck (callers work on clones).
    fn demote_private(&mut self, banned: u32) -> Option<()> {
        let mut queue: Vec<NodeId> = self
            .node_ids()
            .filter(|&id| {
                self.nodes[id.index()].color == banned && self.nodes[id.index()].boundary
            })
            .collect();
        let limit = VACATE_STEP_LIMIT_PER_NODE * (queue.len() + 4);
        let mut steps = 0;
        while let Some(id) = queue.pop() {
            let node = &self.nodes[id.index()];
            if !node.alive || node.color != banned || !node.boundary {
                continue;
            }
            steps += 1;
            if steps > limit {
                return None;
            }
            let spawned = self.vacate_one(id, banned)?;
            // Split fragments that are still boundary must vacate too;
            // internal fragments legitimately keep the demoted color.
            queue.extend(
                spawned
                    .into_iter()
                    .filter(|&s| self.nodes[s.index()].boundary),
            );
        }
        self.private.retain(|&c| c != banned);
        let still_used = self
            .nodes
            .iter()
            .any(|n| n.alive && n.color == banned);
        if still_used {
            self.shared.push(banned);
        }
        Some(())
    }

    /// Vacates every fragment using `banned` and removes the color from
    /// its palette entirely (paper `Reduce_SR`). Returns `None` if
    /// stuck (callers work on clones).
    fn eliminate_color(&mut self, banned: u32) -> Option<()> {
        let mut queue: Vec<NodeId> = self
            .node_ids()
            .filter(|&id| self.nodes[id.index()].color == banned)
            .collect();
        // Boundary nodes first, like the paper's Reduce-PR.
        queue.sort_by_key(|&id| !self.nodes[id.index()].boundary);
        queue.reverse(); // pop() takes boundary nodes first
        let limit = VACATE_STEP_LIMIT_PER_NODE * (queue.len() + 4);
        let mut steps = 0;
        while let Some(id) = queue.pop() {
            if !self.nodes[id.index()].alive || self.nodes[id.index()].color != banned {
                continue;
            }
            steps += 1;
            if steps > limit {
                return None;
            }
            if let Some(spawned) = self.vacate_one(id, banned) {
                queue.extend(spawned);
            } else {
                return None;
            }
        }
        self.private.retain(|&c| c != banned);
        self.shared.retain(|&c| c != banned);
        Some(())
    }

    /// Moves one fragment off `banned`, possibly splitting it; returns
    /// the fragments still carrying `banned` that the split produced.
    fn vacate_one(&mut self, id: NodeId, banned: u32) -> Option<Vec<NodeId>> {
        let vreg = self.nodes[id.index()].vreg;
        let boundary = self.nodes[id.index()].boundary;
        let points = self.nodes[id.index()].points.clone();
        let palette: Vec<u32> = self
            .palette_for(boundary)
            .into_iter()
            .filter(|&c| c != banned)
            .collect();
        if palette.is_empty() {
            return None;
        }

        // 1. Free recolor (paper: NCN < PR-1 / NCN < R-1 case).
        for &c in &palette {
            if self.color_free(&points, c, vreg) {
                self.recolor(id, c);
                return Some(Vec::new());
            }
        }

        // 2. Neighbour nudge (paper: "try to change their neighbors'
        //    colors"). Only single-blocker cases, one level deep.
        for &c in &palette {
            let blockers = self.conflicting_nodes(&points, c, vreg);
            if blockers.len() != 1 {
                continue;
            }
            let blocker = blockers[0];
            let bpoints = self.nodes[blocker.index()].points.clone();
            let bvreg = self.nodes[blocker.index()].vreg;
            let bpalette = self.palette_for(self.nodes[blocker.index()].boundary);
            let retarget = bpalette
                .into_iter()
                .filter(|&c2| c2 != c && c2 != banned)
                .find(|&c2| self.color_free(&bpoints, c2, bvreg));
            if let Some(c2) = retarget {
                self.recolor(blocker, c2);
                self.recolor(id, c);
                return Some(Vec::new());
            }
        }

        // 3. Split. Boundary fragments split at NSR granularity
        //    (paper Figs. 11-12); internal fragments at overlap
        //    granularity (paper Fig. 13).
        let mut best: Option<(u32, BitSet, usize)> = None;
        for &c in &palette {
            let conflict = self.conflict_mask(&points, c, vreg);
            debug_assert!(!conflict.is_empty());
            let mask = if boundary {
                // Exclude whole regions containing conflicts (paper
                // Fig. 12, NSR exclusion). A conflict at a CSB itself —
                // both nodes live across the same switch — excludes that
                // CSB's atom instead: the cut lands on the flow edges
                // entering/leaving the switch (paper Fig. 11).
                let mut m = BitSet::new(self.live.num_halves());
                for h in conflict.iter() {
                    match self.live.region_of(HalfPoint::from_index(h)) {
                        Some(r) => {
                            m.union_with(self.live.region_mask(r));
                        }
                        None => {
                            m.insert(h);
                        }
                    }
                }
                m
            } else {
                conflict
            };
            let excl = self.live.atoms_touching(vreg, &points, &mask);
            if excl.is_empty() || excl == points {
                continue;
            }
            // The kept part takes color c; it must actually be free of c.
            let mut kept = points.clone();
            kept.difference_with(&excl);
            if !self.color_free(&kept, c, vreg) {
                continue;
            }
            // A boundary-constrained kept part can only take c if c is
            // private; palette_for already guarantees that for boundary
            // nodes, and kept keeps all boundary halves by construction.
            let cost = self.live.moves_between(vreg, &kept, &excl);
            if best.as_ref().is_none_or(|&(_, _, bc)| cost < bc) {
                best = Some((c, excl, cost));
            }
        }
        if let Some((c, excl, _)) = best {
            let spawned = self.split(id, excl);
            self.recolor(id, c);
            debug_assert_eq!(self.nodes[spawned.index()].color, banned);
            return Some(vec![spawned]);
        }

        // 4. Last resort — the Lemma 1 construction: explode the node
        //    into individual atoms (one fragment per instruction slot)
        //    and first-fit color each. Guaranteed to work down to the
        //    pressure bounds; eliminate-unnecessary-moves re-merges the
        //    pieces afterwards.
        self.explode_and_color(id, banned)
    }

    /// Splits `id` into per-atom fragments and colors each from its
    /// allowed palette, avoiding `banned`. Returns `None` if some atom
    /// has no free color.
    fn explode_and_color(&mut self, id: NodeId, banned: u32) -> Option<Vec<NodeId>> {
        let vreg = self.nodes[id.index()].vreg;
        let atoms = self.live.atoms(vreg, &self.nodes[id.index()].points);
        if atoms.len() <= 1 {
            return None;
        }
        let mut pieces = vec![id];
        for atom in atoms.iter().skip(1) {
            pieces.push(self.split(id, atom.clone()));
        }
        for &piece in &pieces {
            let points = self.nodes[piece.index()].points.clone();
            let palette = self.palette_for(self.nodes[piece.index()].boundary);
            let c = palette
                .into_iter()
                .filter(|&c| c != banned)
                .find(|&c| self.color_free(&points, c, vreg))?;
            self.recolor(piece, c);
        }
        Some(Vec::new())
    }

    // ------------------------------------------------------------------
    // Reductions (public API used by the inter-thread allocator)
    // ------------------------------------------------------------------

    /// Tries to reduce `PR` by one (paper Fig. 10, `Reduce_PR`):
    /// evaluates the *demotion* of every private color on a scratch
    /// copy and commits the cheapest. The demoted color becomes shared
    /// if internal fragments still use it (`SR` grows by one),
    /// otherwise it disappears. Returns the move-count delta, or
    /// `None` if no private color can be given up.
    pub fn reduce_private(&mut self) -> Option<isize> {
        let candidates = self.private.clone();
        if let Some(delta) = self.reduce_with(&candidates, |alloc, c| alloc.demote_private(c)) {
            return Some(delta);
        }
        // Per-node vacating can wedge when several boundary nodes must
        // move *together*; fall back to the paper's Lemma 1
        // construction — explode every boundary node at its CSBs and
        // recolor the fragments from scratch — and let the merge pass
        // recover most of the moves.
        self.reduce_with(&candidates, |alloc, c| alloc.demote_private_lemma1(c))
    }

    /// Aggressive Reduce-PR: split **every** boundary node into atoms,
    /// then first-fit recolor all boundary fragments within the private
    /// palette minus `banned`, evicting internal blockers to shared
    /// colors when needed.
    fn demote_private_lemma1(&mut self, banned: u32) -> Option<()> {
        let boundary_ids: Vec<NodeId> = self
            .node_ids()
            .filter(|&id| self.nodes[id.index()].boundary)
            .collect();
        let mut fragments: Vec<NodeId> = Vec::new();
        for id in boundary_ids {
            let vreg = self.nodes[id.index()].vreg;
            let atoms = self.live.atoms(vreg, &self.nodes[id.index()].points);
            fragments.push(id);
            for atom in atoms.iter().skip(1) {
                fragments.push(self.split(id, atom.clone()));
            }
        }
        // Recolor boundary fragments in program order so chains of
        // adjacent atoms tend to receive the same color.
        fragments.sort_by_key(|&f| self.nodes[f.index()].points.iter().next());
        for &f in &fragments {
            if !self.nodes[f.index()].boundary {
                continue; // exploded interior piece: internal rules
            }
            let vreg = self.nodes[f.index()].vreg;
            let points = self.nodes[f.index()].points.clone();
            let palette: Vec<u32> = self
                .private
                .iter()
                .copied()
                .filter(|&c| c != banned)
                .collect();
            let free = palette
                .iter()
                .copied()
                .find(|&c| self.color_free(&points, c, vreg));
            let c = match free {
                Some(c) => c,
                None => {
                    // Evict internal blockers of some candidate color to
                    // a shared color.
                    let mut chosen = None;
                    'colors: for &c in &palette {
                        let blockers = self.conflicting_nodes(&points, c, vreg);
                        if blockers.iter().any(|&b| self.nodes[b.index()].boundary) {
                            continue;
                        }
                        // Evict one by one so each check sees the
                        // previous eviction (safe either way: every
                        // recolor is conflict-checked; a partial
                        // eviction merely leaves valid recolorings
                        // behind on this scratch copy).
                        for &blk in &blockers {
                            let bp = self.nodes[blk.index()].points.clone();
                            let bv = self.nodes[blk.index()].vreg;
                            let Some(target) = self
                                .shared
                                .iter()
                                .chain(self.private.iter())
                                .copied()
                                .filter(|&cc| cc != c && cc != banned)
                                .find(|&cc| self.color_free(&bp, cc, bv))
                            else {
                                continue 'colors;
                            };
                            self.recolor(blk, target);
                        }
                        chosen = Some(c);
                        break;
                    }
                    chosen?
                }
            };
            self.recolor(f, c);
        }
        self.private.retain(|&c| c != banned);
        let still_used = self.nodes.iter().any(|n| n.alive && n.color == banned);
        if still_used {
            self.shared.push(banned);
        }
        Some(())
    }

    /// Tries to reduce `SR` by one (paper Fig. 10, `Reduce_SR`): the
    /// cheapest shared color is eliminated outright (`R` drops).
    pub fn reduce_shared(&mut self) -> Option<isize> {
        let candidates = self.shared.clone();
        self.reduce_with(&candidates, |alloc, c| alloc.eliminate_color(c))
    }

    fn reduce_with(
        &mut self,
        candidates: &[u32],
        step: impl Fn(&mut ThreadAlloc, u32) -> Option<()>,
    ) -> Option<isize> {
        let before = self.moves() as isize;
        let mut best: Option<(ThreadAlloc, isize)> = None;
        for &c in candidates {
            let mut trial = self.clone();
            if step(&mut trial, c).is_none() {
                continue;
            }
            trial.eliminate_unnecessary_moves();
            let delta = trial.moves() as isize - before;
            if best.as_ref().is_none_or(|&(_, d)| delta < d) {
                best = Some((trial, delta));
            }
        }
        let (next, delta) = best?;
        *self = next;
        Some(delta)
    }

    /// Cost of the cheapest private-color elimination without applying
    /// it, for the inter-thread allocator's candidate comparison.
    pub fn peek_reduce_private(&self) -> Option<isize> {
        let mut copy = self.clone();
        copy.reduce_private()
    }

    /// Cost of the cheapest shared-color elimination without applying
    /// it.
    pub fn peek_reduce_shared(&self) -> Option<isize> {
        let mut copy = self.clone();
        copy.reduce_shared()
    }

    // ------------------------------------------------------------------
    // Move elimination (paper §7.2, "Eliminate Unnecessary Moves")
    // ------------------------------------------------------------------

    /// Merges adjacent same-register fragments when doing so removes
    /// moves: same-color neighbours always merge; differently-colored
    /// neighbours merge when one side can adopt the other's color
    /// without conflicts and the merge strictly reduces the move count.
    pub fn eliminate_unnecessary_moves(&mut self) {
        loop {
            let mut changed = false;
            'scan: for vi in 0..self.live.num_vregs() {
                let v = VReg(vi as u32);
                if self.num_fragments(v) <= 1 {
                    continue;
                }
                let flows = self.live.flows(v).to_vec();
                for (a, b) in flows {
                    let na = self.node_at(v, a).expect("flow endpoint live");
                    let nb = self.node_at(v, b).expect("flow endpoint live");
                    if na == nb {
                        continue;
                    }
                    if self.nodes[na.index()].color == self.nodes[nb.index()].color {
                        self.merge(na, nb);
                        changed = true;
                        continue 'scan;
                    }
                    // Try adopting either side's color for the union.
                    for (keep, give) in [(na, nb), (nb, na)] {
                        if self.try_merge_recolored(keep, give) {
                            changed = true;
                            continue 'scan;
                        }
                    }
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// Attempts to merge `give` into `keep` under `keep`'s color;
    /// commits only if legal and strictly move-reducing.
    fn try_merge_recolored(&mut self, keep: NodeId, give: NodeId) -> bool {
        let color = self.nodes[keep.index()].color;
        let vreg = self.nodes[keep.index()].vreg;
        let gpoints = self.nodes[give.index()].points.clone();
        // Boundary fragments can only adopt private colors.
        let union_boundary =
            self.nodes[keep.index()].boundary || self.nodes[give.index()].boundary;
        if union_boundary && !self.private.contains(&color) {
            return false;
        }
        if !self.color_free(&gpoints, color, vreg) {
            return false;
        }
        let before = self.moves();
        let mut trial = self.clone();
        trial.merge(keep, give);
        if trial.moves() < before {
            *self = trial;
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // Internal consistency (used by tests and the verifier)
    // ------------------------------------------------------------------

    /// Asserts every structural invariant; see [`crate::verify`] for the
    /// fallible variant.
    pub fn assert_consistent(&self) {
        crate::verify::check_thread(self).expect("thread allocation invariant violated");
    }
}

/// A concrete move the rewriter must materialise: register `vreg`
/// changes color between half-points `from` and `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveSite {
    /// Source half-point (`Out` of the earlier instruction).
    pub from: HalfPoint,
    /// Destination half-point (`In` of the later instruction).
    pub to: HalfPoint,
    /// The register being renamed.
    pub vreg: VReg,
    /// Color before the move.
    pub old_color: u32,
    /// Color after the move.
    pub new_color: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::estimate_bounds;
    use regbal_analysis::ProgramInfo;
    use regbal_ir::parse_func;

    fn setup(src: &str) -> (ProgramInfo, ThreadAlloc) {
        let f = parse_func(src).unwrap();
        let info = ProgramInfo::compute(&f);
        let est = estimate_bounds(&info);
        let live = Arc::new(LiveMap::compute(&info));
        let alloc = ThreadAlloc::new(live, &est.coloring, est.bounds.max_pr, est.bounds.max_r);
        (info, alloc)
    }

    /// Paper Figure 3 thread 1: `a` across the ctx, `b`/`c` internal.
    /// MinPR = 1, MinR = 2; the initial estimate uses more.
    const FIG3_T1: &str = "
func t1 {
bb0:
    v0 = mov 1
    ctx
    beq v0, 0, bb1, bb2
bb1:
    v1 = mov 2
    v3 = add v0, v1
    v2 = mov 3
    jump bb3
bb2:
    v2 = mov 4
    v3 = add v0, v2
    v1 = mov 5
    jump bb3
bb3:
    v4 = add v1, v2
    v5 = load sram[v4+0]
    store scratch[v4+0], v5
    halt
}";

    /// Paper Figure 9: three values interfering pairwise at three
    /// different CSBs: a 3-clique on the BIG, but only two co-live at
    /// any single CSB — splitting reaches MinPR = 2.
    const FIG9: &str = "
func fig9 {
bb0:
    v0 = mov 1            ; A
    v1 = mov 2            ; B
    ctx                    ; A,B across
    v2 = add v0, v1       ; C defined while A live... keep simple
    ctx                    ; A,C across
    store scratch[v0+0], v0
    ctx                    ; B?,C across
    store scratch[v2+0], v2
    store scratch[v1+0], v1
    halt
}";

    #[test]
    fn initial_state_is_consistent() {
        let (_, alloc) = setup(FIG3_T1);
        alloc.assert_consistent();
        assert!(alloc.pr() >= 1);
        assert_eq!(alloc.moves(), 0, "no splits yet");
        for v in 0..6u32 {
            assert!(alloc.num_fragments(regbal_ir::VReg(v)) <= 1);
        }
    }

    #[test]
    fn reduce_private_reaches_min_pr_on_fig3() {
        let (info, mut alloc) = setup(FIG3_T1);
        let min_pr = info.pressure.min_pr();
        assert_eq!(min_pr, 1);
        while alloc.pr() > min_pr {
            let before_pr = alloc.pr();
            let delta = alloc.reduce_private();
            assert!(delta.is_some(), "stuck at pr={}", alloc.pr());
            assert_eq!(alloc.pr(), before_pr - 1);
            alloc.assert_consistent();
        }
        assert_eq!(alloc.pr(), 1);
    }

    #[test]
    fn reduce_shared_shrinks_r() {
        let (info, mut alloc) = setup(FIG3_T1);
        let min_r = info.pressure.min_r();
        while alloc.r() > min_r && alloc.sr() > 0 {
            let before = alloc.sr();
            if alloc.reduce_shared().is_none() {
                break;
            }
            assert_eq!(alloc.sr(), before - 1);
            alloc.assert_consistent();
        }
        assert!(alloc.r() >= min_r);
    }

    #[test]
    fn figure9_split_reaches_two_private() {
        let (info, mut alloc) = setup(FIG9);
        let min_pr = info.pressure.min_pr();
        while alloc.pr() > min_pr {
            if alloc.reduce_private().is_none() {
                break;
            }
            alloc.assert_consistent();
        }
        assert_eq!(alloc.pr(), min_pr, "live-range splitting reaches MinPR");
    }

    #[test]
    fn reductions_report_move_cost() {
        let (info, mut alloc) = setup(FIG9);
        let mut total_delta = 0isize;
        while alloc.pr() > info.pressure.min_pr() {
            match alloc.reduce_private() {
                Some(d) => total_delta += d,
                None => break,
            }
        }
        assert_eq!(alloc.moves() as isize, total_delta.max(0));
    }

    #[test]
    fn peek_does_not_mutate() {
        let (_, alloc) = setup(FIG3_T1);
        let pr = alloc.pr();
        let moves = alloc.moves();
        let _ = alloc.peek_reduce_private();
        let _ = alloc.peek_reduce_shared();
        assert_eq!(alloc.pr(), pr);
        assert_eq!(alloc.moves(), moves);
    }

    #[test]
    fn move_sites_match_move_count() {
        let (info, mut alloc) = setup(FIG9);
        while alloc.pr() > info.pressure.min_pr() {
            if alloc.reduce_private().is_none() {
                break;
            }
        }
        assert_eq!(alloc.move_sites().len(), alloc.moves());
        for site in alloc.move_sites() {
            assert!(site.from.is_after());
            assert!(site.to.is_before());
            assert_ne!(site.old_color, site.new_color);
        }
    }

    #[test]
    fn boundary_nodes_keep_private_colors_after_reduction() {
        let (info, mut alloc) = setup(FIG9);
        while alloc.pr() > info.pressure.min_pr() {
            if alloc.reduce_private().is_none() {
                break;
            }
        }
        for id in alloc.node_ids().collect::<Vec<_>>() {
            if alloc.node_is_boundary(id) {
                assert!(alloc.private_palette().contains(&alloc.node_color(id)));
            }
        }
    }

    #[test]
    fn empty_function_allocates_trivially() {
        let (_, alloc) = setup("func e {\nbb0:\n halt\n}");
        assert_eq!(alloc.pr(), 0);
        assert_eq!(alloc.sr(), 0);
        assert_eq!(alloc.moves(), 0);
    }

    #[test]
    fn reduce_fails_gracefully_at_floor() {
        let (_, mut alloc) = setup("func f {\nbb0:\n v0 = mov 1\n ctx\n store scratch[v0+0], v0\n halt\n}");
        // One boundary value: pr = 1, can't go below.
        assert_eq!(alloc.pr(), 1);
        assert!(alloc.reduce_private().is_none());
        alloc.assert_consistent();
    }
}

#[cfg(test)]
mod demotion_tests {
    use super::*;
    use crate::bounds::estimate_bounds;
    use regbal_analysis::ProgramInfo;
    use regbal_ir::parse_func;

    fn setup2(src: &str) -> ThreadAlloc {
        let f = parse_func(src).unwrap();
        let info = ProgramInfo::compute(&f);
        let est = estimate_bounds(&info);
        let live = Arc::new(LiveMap::compute(&info));
        ThreadAlloc::new(live, &est.coloring, est.bounds.max_pr, est.bounds.max_r)
    }

    /// A demoted private color whose internal users remain migrates to
    /// the shared palette: R is preserved (paper Fig. 11 semantics).
    #[test]
    fn demotion_moves_color_to_shared() {
        // v0 and v1 boundary (across ctx); v2/v3 internal and colorable
        // only with a third color at their pressure point.
        let src = "
func d {
bb0:
    v0 = mov 1
    v1 = mov 2
    ctx
    v2 = add v0, v1
    v3 = add v2, v0
    v4 = add v3, v2
    store scratch[v4+0], v4
    ctx
    store scratch[v0+0], v1
    halt
}";
        let mut a = setup2(src);
        let (pr0, sr0, r0) = (a.pr(), a.sr(), a.r());
        if a.reduce_private().is_some() {
            assert_eq!(a.pr(), pr0 - 1);
            // Either the color was demoted (SR grew, R same) or dropped
            // entirely (R shrank).
            assert!(
                (a.sr() == sr0 + 1 && a.r() == r0) || (a.sr() == sr0 && a.r() == r0 - 1),
                "pr {} sr {} r {}",
                a.pr(),
                a.sr(),
                a.r()
            );
            a.assert_consistent();
        }
    }

    /// The Lemma-1 fallback really fires: a pairwise-boundary pattern
    /// (paper Fig. 9) where per-node vacating alone wedges.
    #[test]
    fn lemma1_reaches_min_pr_on_fig9_pattern() {
        let src = "
func p {
bb0:
    v0 = mov 1
    v1 = mov 2
    v2 = mov 3
    beq v0, 1, bb1, bb2
bb1:
    store scratch[v0+0], v0   ; v0,v1 across? choose pairs below
    v3 = add v0, v1
    jump bb3
bb2:
    store scratch[v1+0], v1   ; v1,v2 across
    v3 = add v1, v2
    jump bb3
bb3:
    store scratch[v2+0], v2   ; v2,(v3) across
    v4 = add v3, v2
    store scratch[v4+4], v4
    halt
}";
        let f = parse_func(src).unwrap();
        let info = ProgramInfo::compute(&f);
        let mut a = setup2(src);
        let min_pr = info.pressure.min_pr();
        while a.pr() > min_pr {
            if a.reduce_private().is_none() {
                break;
            }
            a.assert_consistent();
        }
        assert_eq!(a.pr(), min_pr, "splitting reaches the Lemma 1 bound");
    }

    /// Atom enumeration: fused pairs stay together, order ascending.
    #[test]
    fn livemap_atoms_are_ordered_and_fused() {
        let f = parse_func(
            "func a {\nbb0:\n v0 = mov 1\n nop\n store scratch[v0+0], v0\n halt\n}",
        )
        .unwrap();
        let info = ProgramInfo::compute(&f);
        let lm = LiveMap::compute(&info);
        let v0 = VReg(0);
        let atoms = lm.atoms(v0, lm.live(v0));
        // Live halves: Out(p0)=1, In(p1)=2+Out(p1)=3 fused, In(p2)=4.
        let flat: Vec<Vec<usize>> = atoms.iter().map(|a| a.iter().collect()).collect();
        assert_eq!(flat, vec![vec![1], vec![2, 3], vec![4]]);
    }
}
