//! Cross-thread register allocation for multithreaded network
//! processors — the primary contribution of Zhuang & Pande, *Balancing
//! Register Allocation Across Threads for a Multithreaded Network
//! Processor* (PLDI 2004).
//!
//! # What it does
//!
//! `Nthd` threads share one register file of `Nreg` registers. Context
//! switches save only the PC, so a value live across a switch must sit in
//! a register *private* to its thread; values dead at every switch may
//! use registers *shared* by all threads. This crate:
//!
//! 1. estimates per-thread register bounds ([`Bounds`], paper §5);
//! 2. balances registers across threads with the greedy inter-thread
//!    allocator ([`allocate_threads`], paper Fig. 8), which repeatedly
//!    asks the intra-thread allocator ([`ThreadAlloc`], paper Fig. 10)
//!    to give up one private or shared register at the cost of
//!    live-range-splitting `mov` instructions;
//! 3. handles the symmetric special case ([`allocate_sra`], paper §8);
//! 4. provides a classic Chaitin-style spilling allocator as the
//!    baseline the paper compares against ([`chaitin`]);
//! 5. rewrites programs to physical registers ([`MultiAllocation::rewrite_funcs`])
//!    and statically verifies every safety invariant ([`verify`]).
//!
//! # Example
//!
//! ```
//! use regbal_ir::parse_func;
//! use regbal_core::allocate_threads;
//!
//! let thread = parse_func(
//!     "func t {\nbb0:\n v0 = mov 256\n v1 = load sram[v0+0]\n v2 = add v1, 1\n store sram[v0+4], v2\n iter_end\n jump bb0\n}",
//! )?;
//! // Four copies of the thread must fit in 16 physical registers.
//! let funcs = vec![thread.clone(), thread.clone(), thread.clone(), thread];
//! let allocation = allocate_threads(&funcs, 16).expect("feasible");
//! assert!(allocation.total_registers() <= 16);
//! let physical = allocation.rewrite_funcs(&funcs);
//! assert_eq!(physical.len(), 4);
//! # Ok::<(), regbal_ir::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
pub mod banks;
mod bounds;
pub mod chaitin;
mod engine;
mod error;
mod hybrid;
mod half;
mod ladder;
mod livemap;
mod rewrite;
mod sra;
pub mod verify;

pub use alloc::{NodeId, ThreadAlloc};
pub use bounds::{estimate_bounds, Bounds};
pub use engine::{
    allocate_threads, allocate_threads_stats, allocate_threads_sweep, allocate_threads_with,
    force_min_bounds,
    zero_cost_frontier, EngineConfig, EngineStats, IterationBudget, MultiAllocation,
    ThreadResult, ADAPTIVE_CAP_FACTOR, DEFAULT_ITERATION_CAP, MIN_ITERATION_CAP,
};
pub use error::{AllocError, Degradation, LadderStep, RungRetry};
pub use half::HalfPoint;
pub use hybrid::{
    allocate_threads_with_spill, allocate_threads_with_spill_at,
    allocate_threads_with_spill_config, allocate_threads_with_spill_scratch,
    allocate_threads_with_spill_seeded, allocate_threads_with_spill_sweep,
    allocate_threads_with_spill_sweep_scratch, HybridAllocation, ScratchParams, SpillPick,
    DEFAULT_SPILL_BASE,
};
pub use ladder::{
    allocate_ladder, allocate_ladder_seeded, allocate_ladder_with, LadderAllocation,
    LadderConfig, LadderError, LadderOutcome, PlannedRung, RungProviders, ThreadSummary,
    DEFAULT_LADDER_SPILL_BASE, DEFAULT_SCRATCH_CAPACITY,
};
pub use livemap::LiveMap;
pub use rewrite::{rewrite_thread, try_rewrite_thread, Layout};
pub use sra::{allocate_sra, allocate_sra_exhaustive, sra_zero_cost_frontier, SraAllocation};
