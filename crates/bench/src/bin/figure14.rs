//! Regenerates paper Figure 14: SRA register requirements — standalone
//! Chaitin vs the inter-thread allocator's zero-move (PR, SR) frontier,
//! four threads.

use regbal_bench::{figure14, table};

fn main() {
    let data = figure14();
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.chaitin_regs.to_string(),
                r.pr.to_string(),
                r.sr.to_string(),
                (4 * r.chaitin_regs).to_string(),
                (4 * r.pr + r.sr).to_string(),
                table::pct(r.saving),
            ]
        })
        .collect();
    println!("Figure 14: SRA register allocation (4 threads)");
    println!(
        "{}",
        table::render(
            &["benchmark", "chaitin", "PR", "SR", "4xchaitin", "4PR+SR", "saving"],
            &rows
        )
    );
    let avg: f64 = data.iter().map(|r| r.saving).sum::<f64>() / data.len() as f64;
    println!("average total register saving: {}", table::pct(avg));
    println!("(paper reports an average saving of 24%)");
}
