//! Ablations beyond the paper: greedy-direction policy in the
//! inter-thread loop, and the move-cost curve of squeezing one thread.

use regbal_analysis::ProgramInfo;
use regbal_bench::{ablation_cost_curve, ablation_direction, table, SCENARIOS};
use regbal_core::estimate_bounds;
use regbal_workloads::{Kernel, Workload};

fn main() {
    println!("A1: greedy direction policy (total moves to fit a tight file)");
    println!("    (file sized to the tightest feasible demand)");
    let mut rows = Vec::new();
    for s in &SCENARIOS {
        // Analytic floor: sum(MinPR) + max(MinR - MinPR); then search
        // upward for the tightest file the min-cost policy can fit.
        let bounds: Vec<_> = s
            .kernels
            .iter()
            .enumerate()
            .map(|(slot, &k)| {
                estimate_bounds(&ProgramInfo::compute(&Workload::new(k, slot, 64).func)).bounds
            })
            .collect();
        let floor: usize = bounds.iter().map(|b| b.min_pr).sum::<usize>()
            + bounds
                .iter()
                .map(|b| b.min_r - b.min_pr)
                .max()
                .unwrap_or(0);
        let nreg = (floor..floor + 16)
            .find(|&n| ablation_direction(s, n)[0].1.is_some())
            .expect("a feasible file exists within floor + 16");
        let outcomes = ablation_direction(s, nreg);
        rows.push(
            std::iter::once(format!("{} @{}", s.name, nreg))
                .chain(outcomes.into_iter().map(|(_, m)| match m {
                    Some(m) => m.to_string(),
                    None => "stuck".to_string(),
                }))
                .collect::<Vec<String>>(),
        );
    }
    println!(
        "{}",
        table::render(&["scenario", "min-cost", "PR-first", "SR-first"], &rows)
    );

    println!("A3: sharing advantage vs register-file size (scenario 1)");
    let sizes = [44, 48, 56, 64, 80, 96, 128];
    let sweep = regbal_bench::ablation_sweep(&SCENARIOS[0], &sizes);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            let fmt = |x: Option<f64>| match x {
                Some(v) => table::pct(v),
                None => "n/a".to_string(),
            };
            vec![
                p.nreg.to_string(),
                fmt(p.critical_speedup),
                fmt(p.other_speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["nreg", "critical", "others"], &rows)
    );

    println!("A2: move-cost curve while squeezing one thread to its bounds");
    for k in [Kernel::Md5, Kernel::Drr, Kernel::L2l3fwdRx, Kernel::Url] {
        let curve = ablation_cost_curve(k);
        let pts: Vec<String> = curve
            .iter()
            .map(|p| format!("PR={}/R={}:{}mv", p.pr, p.r, p.moves))
            .collect();
        println!("  {:12} {}", k.name(), pts.join("  "));
    }
}
