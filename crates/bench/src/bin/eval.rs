//! Runs the full `regbal-eval` throughput study (the paper's §9 sweep,
//! `Nreg` 32 → 128 under packet traffic) and prints a per-scenario
//! throughput table; the structured report goes to `BENCH_EVAL.json`.
//!
//! `regbal eval --smoke` runs a fast subset of the same pipeline; this
//! binary is the full-size batch variant for regenerating the numbers
//! in `EXPERIMENTS.md`.

use regbal_bench::table;
use regbal_eval::{run_eval, CellStatus, EvalConfig};

fn main() {
    let config = EvalConfig::full();
    let report = run_eval(&config);

    let mut header: Vec<String> = vec!["strategy".into()];
    header.extend(report.nreg_sweep.iter().map(|n| format!("Nreg={n}")));
    let header: Vec<&str> = header.iter().map(String::as_str).collect();

    for scenario in &report.scenarios {
        println!(
            "{} — {}{}",
            scenario.name,
            scenario.description,
            if scenario.register_hungry { " [hungry]" } else { "" }
        );
        let rows: Vec<Vec<String>> = report
            .strategies
            .iter()
            .map(|strategy| {
                let mut row = vec![strategy.clone()];
                row.extend(report.nreg_sweep.iter().map(|&nreg| {
                    match scenario.cell(strategy, nreg) {
                        Some(c) if c.status == CellStatus::Ok => {
                            let mark = if c.checksum_ok { "" } else { " !" };
                            if c.spills > 0 {
                                let spad = match c.scratch_spills {
                                    0 => String::new(),
                                    n => format!(", {n}spad"),
                                };
                                format!("{:.2} ({}sp{spad}){mark}", c.throughput_ipkc, c.spills)
                            } else if c.moves > 0 {
                                format!("{:.2} ({}mv){mark}", c.throughput_ipkc, c.moves)
                            } else {
                                format!("{:.2}{mark}", c.throughput_ipkc)
                            }
                        }
                        Some(c) if matches!(c.status, CellStatus::Infeasible(_)) => "—".into(),
                        _ => "timeout".into(),
                    }
                }));
                row
            })
            .collect();
        println!("{}", table::render(&header, &rows));
    }
    println!("throughput in iterations per kilocycle, summed over threads");
    println!(
        "(sp = spilled ranges, spad = of those, slots in the shared scratchpad, \
         mv = split moves, — = infeasible, ! = checksum mismatch)"
    );

    let path = "BENCH_EVAL.json";
    std::fs::write(path, report.to_json_string() + "\n").expect("write BENCH_EVAL.json");
    println!(
        "wrote {path} ({} scenarios x {} strategies x {} sizes, {} packets/thread)",
        report.scenarios.len(),
        report.strategies.len(),
        report.nreg_sweep.len(),
        report.packets
    );
    if let Some(t) = &report.timing {
        println!(
            "timing: {} worker(s) on {} thread(s), {:.1} ms wall",
            t.workers, t.threads, t.wall_ms
        );
    }
}
