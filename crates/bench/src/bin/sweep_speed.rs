//! Times the full evaluation sweep serially against the sharded,
//! compile-cached engine and writes `BENCH_SWEEP.json`.
//!
//! Two runs of the identical full configuration (timing off, so the
//! documents are byte-comparable):
//!
//! * **serial** — one worker, compile cache off: every cell recomputes
//!   its allocations from scratch, the way the harness worked before
//!   the sharded sweep;
//! * **sharded** — four workers, compile cache on: cells are stolen
//!   from the shared cursor and overlapping searches (balanced cell,
//!   hybrid round 0, the ladder's balanced rungs) are computed once.
//!
//! The binary asserts the two reports are byte-identical — the
//! deterministic-merge guarantee — and records the wall-clock speedup.

use regbal_eval::{run_eval, EvalConfig};
use std::time::Instant;

/// Workers of the sharded run (the acceptance configuration).
const WORKERS: usize = 4;

/// Timed runs per configuration; the fastest is reported, the standard
/// way to damp scheduler noise out of a wall-clock comparison.
const RUNS: usize = 2;

fn timed_run(config: &EvalConfig) -> (String, f64) {
    let mut best: Option<(String, f64)> = None;
    for _ in 0..RUNS {
        let start = Instant::now();
        let report = run_eval(config);
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
        if best.as_ref().is_none_or(|(_, b)| wall_ms < *b) {
            best = Some((report.to_json_string(), wall_ms));
        }
    }
    best.expect("at least one run")
}

fn main() {
    let base = EvalConfig {
        timing: false,
        ..EvalConfig::full()
    };
    let serial = EvalConfig {
        workers: 1,
        cache: false,
        ..base.clone()
    };
    let sharded = EvalConfig {
        workers: WORKERS,
        cache: true,
        ..base
    };

    println!("serial full sweep (1 worker, no compile cache)...");
    let (serial_doc, serial_ms) = timed_run(&serial);
    println!("  {serial_ms:.0} ms");
    println!("sharded full sweep ({WORKERS} workers, compile cache)...");
    let (sharded_doc, sharded_ms) = timed_run(&sharded);
    println!("  {sharded_ms:.0} ms");

    let identical = serial_doc == sharded_doc;
    assert!(
        identical,
        "sharded sweep diverged from the serial baseline — determinism bug"
    );
    let speedup = serial_ms / sharded_ms.max(f64::MIN_POSITIVE);
    println!("byte-identical reports; speedup {speedup:.2}x");

    let doc = format!(
        "{{\n  \"schema\": \"regbal-sweep/1\",\n  \"config\": \"full\",\n  \
         \"serial\": {{\"workers\": 1, \"cache\": false, \"wall_ms\": {serial_ms:.1}}},\n  \
         \"sharded\": {{\"workers\": {WORKERS}, \"cache\": true, \"wall_ms\": {sharded_ms:.1}}},\n  \
         \"speedup\": {speedup:.2},\n  \"byte_identical\": {identical}\n}}\n"
    );
    let path = "BENCH_SWEEP.json";
    std::fs::write(path, doc).expect("write BENCH_SWEEP.json");
    println!("wrote {path}");
}
