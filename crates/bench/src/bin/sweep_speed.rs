//! Times the full evaluation sweep serially against the sharded,
//! compile-cached engine and writes `BENCH_SWEEP.json`.
//!
//! Runs of the identical full configuration (timing off, so the
//! documents are byte-comparable):
//!
//! * **serial** — one worker, compile cache off: every cell recomputes
//!   its allocations from scratch, the way the harness worked before
//!   the sharded sweep;
//! * **sharded series** — compile cache on, at 1, 2, 4 and 8 workers:
//!   cells are stolen from the shared cursor and overlapping searches
//!   (balanced cell, hybrid round 0, the ladder's balanced rungs) are
//!   computed once.
//!
//! The binary asserts every sharded report is byte-identical to the
//! serial baseline — the deterministic-merge guarantee — and records
//! the wall-clock speedup at each worker count. On a single-CPU host
//! the series is flat beyond the cache win; on multi-core hosts it
//! shows the shard scaling.

use regbal_eval::{run_eval, EvalConfig};
use std::time::Instant;

/// The worker-count scaling series.
const WORKER_SERIES: [usize; 4] = [1, 2, 4, 8];

/// Timed runs per configuration; the fastest is reported, the standard
/// way to damp scheduler noise out of a wall-clock comparison.
const RUNS: usize = 2;

fn timed_run(config: &EvalConfig) -> (String, f64) {
    let mut best: Option<(String, f64)> = None;
    for _ in 0..RUNS {
        let start = Instant::now();
        let report = run_eval(config);
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
        if best.as_ref().is_none_or(|(_, b)| wall_ms < *b) {
            best = Some((report.to_json_string(), wall_ms));
        }
    }
    best.expect("at least one run")
}

fn main() {
    let base = EvalConfig {
        timing: false,
        ..EvalConfig::full()
    };
    let serial = EvalConfig {
        workers: 1,
        cache: false,
        ..base.clone()
    };

    println!("serial full sweep (1 worker, no compile cache)...");
    let (serial_doc, serial_ms) = timed_run(&serial);
    println!("  {serial_ms:.0} ms");

    let mut series = Vec::new();
    for workers in WORKER_SERIES {
        let sharded = EvalConfig {
            workers,
            cache: true,
            ..base.clone()
        };
        println!("sharded full sweep ({workers} worker(s), compile cache)...");
        let (doc, wall_ms) = timed_run(&sharded);
        assert!(
            doc == serial_doc,
            "{workers}-worker sweep diverged from the serial baseline — determinism bug"
        );
        let speedup = serial_ms / wall_ms.max(f64::MIN_POSITIVE);
        println!("  {wall_ms:.0} ms ({speedup:.2}x, byte-identical)");
        series.push(format!(
            "    {{\"workers\": {workers}, \"cache\": true, \"wall_ms\": {wall_ms:.1}, \
             \"speedup\": {speedup:.2}, \"byte_identical\": true}}"
        ));
    }

    let doc = format!(
        "{{\n  \"schema\": \"regbal-sweep/2\",\n  \"config\": \"full\",\n  \
         \"serial\": {{\"workers\": 1, \"cache\": false, \"wall_ms\": {serial_ms:.1}}},\n  \
         \"sharded\": [\n{}\n  ]\n}}\n",
        series.join(",\n")
    );
    let path = "BENCH_SWEEP.json";
    std::fs::write(path, doc).expect("write BENCH_SWEEP.json");
    println!("wrote {path}");
}
