//! Regenerates paper Table 2: move insertion in the extreme case — the
//! thread squeezed all the way to its (MinPR, MinR) lower bound.

use regbal_bench::{table, table2};

fn main() {
    let data = table2();
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.pr.to_string(),
                r.r.to_string(),
                r.moves.to_string(),
                table::pct(r.move_overhead),
            ]
        })
        .collect();
    println!("Table 2: maximal move insertion at the minimum register bound");
    println!(
        "{}",
        table::render(&["benchmark", "MinPR", "MinR", "#moves", "overhead"], &rows)
    );
    println!("(paper: move overhead mostly within 10% of instructions)");
}
