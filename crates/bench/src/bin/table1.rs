//! Regenerates paper Table 1: static benchmark properties.

use regbal_bench::{table, table1};

fn main() {
    let rows: Vec<Vec<String>> = table1()
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.code_size.to_string(),
                format!("{:.0}", r.cycles_per_iter),
                r.ctx_insts.to_string(),
                format!("{:.0}%", 100.0 * r.ctx_insts as f64 / r.code_size as f64),
                r.live_ranges.to_string(),
                r.regp_max.to_string(),
                r.regp_csb_max.to_string(),
                r.max_r.to_string(),
                r.max_pr.to_string(),
                r.nsrs.to_string(),
                format!("{:.1}", r.avg_nsr_size),
            ]
        })
        .collect();
    println!("Table 1: benchmark applications");
    println!(
        "{}",
        table::render(
            &[
                "benchmark", "size", "cyc/iter", "#ctx", "ctx%", "#live", "RegPmax",
                "RegPCSBmax", "MaxR", "MaxPR", "#NSR", "avgNSR"
            ],
            &rows
        )
    );
}
