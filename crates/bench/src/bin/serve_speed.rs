//! Times the resident allocation server on a replayed trace and writes
//! `BENCH_SERVE.json`.
//!
//! One seeded trace (zipfian kernel mix under drifting register
//! budgets) is replayed twice against a fresh server at 1, 2, and 4
//! workers, then once more against a *restarted* server over the same
//! on-disk cache directory. The cold pass pays every descent; the warm
//! pass must be answered entirely from the persistent cross-request
//! cache; the restart pass must be answered entirely from disk. The
//! binary asserts:
//!
//! * the warm p50 latency is at least 5x below the cold p50 at every
//!   worker count — the cache, not the pool, is what makes a resident
//!   server worth keeping around;
//! * the full response transcript (ids, `cached` flags, and allocation
//!   documents) is byte-identical across all three worker counts — the
//!   wave protocol's determinism guarantee, measured rather than
//!   assumed;
//! * a brand-new server over the populated `--cache-dir` serves the
//!   whole trace with zero misses on its very first pass, and its
//!   documents match the in-memory warm pass byte for byte.
//!
//! Alongside each pass the report carries the server's backpressure
//! metrics (queue-depth high-water, admission wait p50/p99, deferred
//! admissions, pool activity), measured with a bursty paced arrival
//! row so the bounded queue actually fills.

use regbal_eval::Json;
use regbal_serve::{
    chaos_json, chaos_replay, pass_json, replay, replay_with_metrics, FaultPlan, ReplayConfig,
    ServeConfig, ServeMetrics, TraceFile,
};
use regbal_workloads::{Arrival, TraceConfig};

/// Requests per pass — large enough that both percentiles are stable.
const REQUESTS: usize = 200;

/// Closed-loop window; eight in-flight requests keeps every worker fed
/// at the widest pool without hiding per-request latency behind the
/// queue the way an open loop would.
const WINDOW: usize = 8;

/// Worker counts benchmarked; 1 is the serial baseline.
const WORKERS: [usize; 3] = [1, 2, 4];

/// Required cold-p50 / warm-p50 ratio.
const WARM_FACTOR: u64 = 5;

/// Requests in the chaos row's trace — small enough that the
/// three-phase harness (baseline, faulted sessions, healing pass)
/// stays a minor fraction of the bench.
const CHAOS_REQUESTS: usize = 60;

/// The chaos row's fault spec: per-mille rates across the disk sites
/// plus injected client disconnects, on a fixed seed.
const CHAOS_FAULTS: &str = "seed=17,write_fail=150,write_short=100,read_corrupt=150,disconnect=120";

/// Sums the on-disk footprint of a `--cache-dir` (both tiers).
fn dir_bytes(dir: &std::path::Path) -> u64 {
    let mut total = 0;
    for tier in ["responses", "modules"] {
        let Ok(entries) = std::fs::read_dir(dir.join(tier)) else {
            continue;
        };
        for entry in entries.flatten() {
            if let Ok(meta) = entry.metadata() {
                if meta.is_file() {
                    total += meta.len();
                }
            }
        }
    }
    total
}

/// Strips each response line to its document (alloc or error),
/// dropping ids and `cached` flags — what must survive a restart.
fn documents(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|line| {
            let doc = regbal_eval::json::parse(line).expect("response is JSON");
            doc.get("alloc")
                .map(Json::pretty)
                .unwrap_or_else(|| doc.get("error").expect("alloc or error").pretty())
        })
        .collect()
}

fn main() {
    let trace_config = TraceConfig::default();
    let trace = TraceFile::generate(&TraceConfig {
        requests: REQUESTS,
        ..trace_config
    });

    let mut rows = Vec::new();
    let mut transcript: Option<Vec<String>> = None;
    let mut warm_documents: Vec<String> = Vec::new();
    let mut worst_ratio = f64::INFINITY;
    for workers in WORKERS {
        let config = ReplayConfig {
            serve: ServeConfig {
                workers,
                ..ServeConfig::default()
            },
            passes: 2,
            window: WINDOW,
            paced: false,
        };
        let metrics = ServeMetrics::default();
        let reports = replay_with_metrics(&trace, &config, &metrics).expect("replay");
        let (cold, warm) = (&reports[0], &reports[1]);
        assert_eq!(warm.misses, 0, "warm pass must be all cache hits");
        let ratio = cold.p50_us as f64 / (warm.p50_us.max(1)) as f64;
        assert!(
            warm.p50_us * WARM_FACTOR <= cold.p50_us,
            "{workers} worker(s): warm p50 {} us is not {WARM_FACTOR}x below cold p50 {} us",
            warm.p50_us,
            cold.p50_us
        );
        if ratio < worst_ratio {
            worst_ratio = ratio;
        }
        println!(
            "{workers} worker(s): cold p50 {} us p99 {} us {:.0} req/s | \
             warm p50 {} us p99 {} us {:.0} req/s ({ratio:.1}x)",
            cold.p50_us, cold.p99_us, cold.rps, warm.p50_us, warm.p99_us, warm.rps
        );

        let mut lines: Vec<String> = Vec::new();
        for report in &reports {
            lines.extend(report.responses.iter().cloned());
        }
        match &transcript {
            None => transcript = Some(lines),
            Some(reference) => assert_eq!(
                reference, &lines,
                "{workers} worker(s): response transcript diverged from the serial run"
            ),
        }
        warm_documents = documents(&warm.responses);

        rows.push(Json::Obj(vec![
            ("workers".into(), Json::uint(workers as u64)),
            ("cold".into(), pass_json(cold)),
            ("warm".into(), pass_json(warm)),
            ("metrics".into(), metrics.snapshot().to_json()),
        ]));
    }
    println!("transcripts byte-identical at {WORKERS:?} workers");

    // The restart-warm row: populate an on-disk store, then serve the
    // whole trace again from a brand-new server over the same
    // directory — its *first* pass must be all hits.
    let cache_dir = std::env::temp_dir().join(format!("regbal-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let disk_config = ReplayConfig {
        serve: ServeConfig {
            cache_dir: Some(cache_dir.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        },
        passes: 1,
        window: WINDOW,
        paced: false,
    };
    let populate = replay(&trace, &disk_config).expect("populate the disk cache");
    assert!(populate[0].misses > 0, "the populate pass must start cold");
    let restart = replay(&trace, &disk_config).expect("restart over the disk cache");
    assert_eq!(
        restart[0].misses, 0,
        "the restarted server must answer entirely from disk"
    );
    assert_eq!(
        documents(&restart[0].responses),
        warm_documents,
        "reloaded documents diverged from the in-memory warm pass"
    );
    let restart_ratio = populate[0].p50_us as f64 / (restart[0].p50_us.max(1)) as f64;
    println!(
        "restart over --cache-dir: p50 {} us p99 {} us {:.0} req/s \
         ({restart_ratio:.1}x below cold, 0 misses)",
        restart[0].p50_us, restart[0].p99_us, restart[0].rps
    );
    let uncapped_bytes = dir_bytes(&cache_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);

    // The GC row: the same trace through a byte-capped store. The cap
    // is half the uncapped footprint, so the access-ordered GC must
    // actually evict; the warm pass still answers entirely from the
    // in-memory tiers, and the directory must end up under the cap.
    let gc_cap = (uncapped_bytes / 2).max(1);
    let gc_dir = std::env::temp_dir().join(format!("regbal-bench-serve-{}-gc", std::process::id()));
    let _ = std::fs::remove_dir_all(&gc_dir);
    let gc_config = ReplayConfig {
        serve: ServeConfig {
            cache_dir: Some(gc_dir.to_string_lossy().into_owned()),
            cache_dir_cap: gc_cap,
            ..ServeConfig::default()
        },
        passes: 2,
        window: WINDOW,
        paced: false,
    };
    let gc_passes = replay(&trace, &gc_config).expect("capped replay");
    assert_eq!(
        gc_passes[1].misses, 0,
        "the warm pass must still be all hits under a byte-capped store"
    );
    let gc_bytes = dir_bytes(&gc_dir);
    assert!(
        gc_bytes <= gc_cap,
        "GC failed: {gc_bytes} byte(s) on disk, over the {gc_cap}-byte cap"
    );
    let gc_warm_hit_rate = gc_passes[1].hits as f64
        / (gc_passes[1].hits + gc_passes[1].misses).max(1) as f64;
    println!(
        "gc over --cache-dir-cap: {gc_bytes} of {gc_cap} byte(s) allowed \
         ({uncapped_bytes} uncapped) | warm hit rate {:.2}",
        gc_warm_hit_rate
    );
    let _ = std::fs::remove_dir_all(&gc_dir);

    // The chaos row: a seeded fault plan (failed/short writes, corrupt
    // reads, mid-line client disconnects) over a capped disk cache.
    // chaos_replay enforces that every admitted request is answered
    // with the fault-free baseline document and that a healing pass
    // over the surviving directory still serves the baseline.
    let chaos_trace = TraceFile::generate(&TraceConfig {
        requests: CHAOS_REQUESTS,
        ..trace_config
    });
    let chaos_dir =
        std::env::temp_dir().join(format!("regbal-bench-serve-{}-chaos", std::process::id()));
    let _ = std::fs::remove_dir_all(&chaos_dir);
    let plan = FaultPlan::parse_spec(CHAOS_FAULTS).expect("the chaos spec parses");
    let chaos_config = ServeConfig {
        cache_dir: Some(chaos_dir.to_string_lossy().into_owned()),
        faults: Some(std::sync::Arc::new(plan)),
        ..ServeConfig::default()
    };
    let chaos = chaos_replay(&chaos_trace, &chaos_config).expect("chaos replay");
    assert_eq!(
        chaos.answered, chaos.requests,
        "the fault plane lost an admitted request"
    );
    println!(
        "chaos ({CHAOS_FAULTS}): {} request(s) answered across {} session(s), \
         {} disconnect(s), {} torn line(s); healed",
        chaos.answered, chaos.sessions, chaos.disconnects, chaos.partials
    );
    let _ = std::fs::remove_dir_all(&chaos_dir);

    // The backpressure row: bursty paced arrivals through a deliberately
    // tight queue, so deferred admissions and queue depth are exercised.
    let bursty_trace = TraceFile::generate(&TraceConfig {
        requests: REQUESTS / 2,
        arrival: Arrival::Bursty,
        mean_gap_us: 100,
        ..trace_config
    });
    let bursty_config = ReplayConfig {
        serve: ServeConfig {
            workers: 2,
            queue_cap: 4,
            ..ServeConfig::default()
        },
        passes: 1,
        window: WINDOW,
        paced: true,
    };
    let bursty_metrics = ServeMetrics::default();
    let bursty =
        replay_with_metrics(&bursty_trace, &bursty_config, &bursty_metrics).expect("bursty replay");
    let pressure = bursty_metrics.snapshot();
    println!(
        "bursty paced: p50 {} us p99 {} us | queue high-water {} | \
         admission wait p50 {} us p99 {} us | {} deferred",
        bursty[0].p50_us,
        bursty[0].p99_us,
        pressure.queue_depth_high_water,
        pressure.admission_wait_p50_us,
        pressure.admission_wait_p99_us,
        pressure.deferred,
    );

    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("regbal-serve-bench/2")),
        ("requests".into(), Json::uint(REQUESTS as u64)),
        ("seed".into(), Json::uint(trace.seed)),
        ("arrival".into(), Json::str(trace.arrival.name())),
        ("packets".into(), Json::uint(u64::from(trace.packets))),
        ("window".into(), Json::uint(WINDOW as u64)),
        ("passes".into(), Json::uint(2)),
        ("sweeps".into(), Json::Arr(rows)),
        (
            "warm_speedup_p50".into(),
            Json::Num((worst_ratio * 10.0).round() / 10.0),
        ),
        (
            "restart".into(),
            Json::Obj(vec![
                ("cold".into(), pass_json(&populate[0])),
                ("warm".into(), pass_json(&restart[0])),
                (
                    "speedup_p50".into(),
                    Json::Num((restart_ratio * 10.0).round() / 10.0),
                ),
            ]),
        ),
        (
            "bursty".into(),
            Json::Obj(vec![
                ("requests".into(), Json::uint((REQUESTS / 2) as u64)),
                ("queue_cap".into(), Json::uint(4)),
                ("pass".into(), pass_json(&bursty[0])),
                ("metrics".into(), pressure.to_json()),
            ]),
        ),
        (
            "gc".into(),
            Json::Obj(vec![
                ("cap_bytes".into(), Json::uint(gc_cap)),
                ("uncapped_bytes".into(), Json::uint(uncapped_bytes)),
                ("bytes_after".into(), Json::uint(gc_bytes)),
                (
                    "warm_hit_rate".into(),
                    Json::Num((gc_warm_hit_rate * 100.0).round() / 100.0),
                ),
                ("cold".into(), pass_json(&gc_passes[0])),
                ("warm".into(), pass_json(&gc_passes[1])),
            ]),
        ),
        (
            "chaos".into(),
            Json::Obj(vec![
                ("spec".into(), Json::str(CHAOS_FAULTS)),
                ("report".into(), chaos_json(&chaos)),
            ]),
        ),
    ]);
    let path = "BENCH_SERVE.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_SERVE.json");
    println!("wrote {path} (warm p50 {worst_ratio:.1}x below cold at the worst worker count)");
}
