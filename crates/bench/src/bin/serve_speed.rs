//! Times the resident allocation server on a replayed trace and writes
//! `BENCH_SERVE.json`.
//!
//! One seeded trace (zipfian kernel mix under drifting register
//! budgets) is replayed twice against a fresh server at 1, 2, and 4
//! workers, then once more against a *restarted* server over the same
//! on-disk cache directory. The cold pass pays every descent; the warm
//! pass must be answered entirely from the persistent cross-request
//! cache; the restart pass must be answered entirely from disk. The
//! binary asserts:
//!
//! * the warm p50 latency is at least 5x below the cold p50 at every
//!   worker count — the cache, not the pool, is what makes a resident
//!   server worth keeping around;
//! * the full response transcript (ids, `cached` flags, and allocation
//!   documents) is byte-identical across all three worker counts — the
//!   wave protocol's determinism guarantee, measured rather than
//!   assumed;
//! * a brand-new server over the populated `--cache-dir` serves the
//!   whole trace with zero misses on its very first pass, and its
//!   documents match the in-memory warm pass byte for byte.
//!
//! Alongside each pass the report carries the server's backpressure
//! metrics (queue-depth high-water, admission wait p50/p99, deferred
//! admissions, pool activity), measured with a bursty paced arrival
//! row so the bounded queue actually fills.

use regbal_eval::Json;
use regbal_serve::{
    pass_json, replay, replay_with_metrics, ReplayConfig, ServeConfig, ServeMetrics, TraceFile,
};
use regbal_workloads::{Arrival, TraceConfig};

/// Requests per pass — large enough that both percentiles are stable.
const REQUESTS: usize = 200;

/// Closed-loop window; eight in-flight requests keeps every worker fed
/// at the widest pool without hiding per-request latency behind the
/// queue the way an open loop would.
const WINDOW: usize = 8;

/// Worker counts benchmarked; 1 is the serial baseline.
const WORKERS: [usize; 3] = [1, 2, 4];

/// Required cold-p50 / warm-p50 ratio.
const WARM_FACTOR: u64 = 5;

/// Strips each response line to its document (alloc or error),
/// dropping ids and `cached` flags — what must survive a restart.
fn documents(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|line| {
            let doc = regbal_eval::json::parse(line).expect("response is JSON");
            doc.get("alloc")
                .map(Json::pretty)
                .unwrap_or_else(|| doc.get("error").expect("alloc or error").pretty())
        })
        .collect()
}

fn main() {
    let trace_config = TraceConfig::default();
    let trace = TraceFile::generate(&TraceConfig {
        requests: REQUESTS,
        ..trace_config
    });

    let mut rows = Vec::new();
    let mut transcript: Option<Vec<String>> = None;
    let mut warm_documents: Vec<String> = Vec::new();
    let mut worst_ratio = f64::INFINITY;
    for workers in WORKERS {
        let config = ReplayConfig {
            serve: ServeConfig {
                workers,
                ..ServeConfig::default()
            },
            passes: 2,
            window: WINDOW,
            paced: false,
        };
        let metrics = ServeMetrics::default();
        let reports = replay_with_metrics(&trace, &config, &metrics).expect("replay");
        let (cold, warm) = (&reports[0], &reports[1]);
        assert_eq!(warm.misses, 0, "warm pass must be all cache hits");
        let ratio = cold.p50_us as f64 / (warm.p50_us.max(1)) as f64;
        assert!(
            warm.p50_us * WARM_FACTOR <= cold.p50_us,
            "{workers} worker(s): warm p50 {} us is not {WARM_FACTOR}x below cold p50 {} us",
            warm.p50_us,
            cold.p50_us
        );
        if ratio < worst_ratio {
            worst_ratio = ratio;
        }
        println!(
            "{workers} worker(s): cold p50 {} us p99 {} us {:.0} req/s | \
             warm p50 {} us p99 {} us {:.0} req/s ({ratio:.1}x)",
            cold.p50_us, cold.p99_us, cold.rps, warm.p50_us, warm.p99_us, warm.rps
        );

        let mut lines: Vec<String> = Vec::new();
        for report in &reports {
            lines.extend(report.responses.iter().cloned());
        }
        match &transcript {
            None => transcript = Some(lines),
            Some(reference) => assert_eq!(
                reference, &lines,
                "{workers} worker(s): response transcript diverged from the serial run"
            ),
        }
        warm_documents = documents(&warm.responses);

        rows.push(Json::Obj(vec![
            ("workers".into(), Json::uint(workers as u64)),
            ("cold".into(), pass_json(cold)),
            ("warm".into(), pass_json(warm)),
            ("metrics".into(), metrics.snapshot().to_json()),
        ]));
    }
    println!("transcripts byte-identical at {WORKERS:?} workers");

    // The restart-warm row: populate an on-disk store, then serve the
    // whole trace again from a brand-new server over the same
    // directory — its *first* pass must be all hits.
    let cache_dir = std::env::temp_dir().join(format!("regbal-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let disk_config = ReplayConfig {
        serve: ServeConfig {
            cache_dir: Some(cache_dir.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        },
        passes: 1,
        window: WINDOW,
        paced: false,
    };
    let populate = replay(&trace, &disk_config).expect("populate the disk cache");
    assert!(populate[0].misses > 0, "the populate pass must start cold");
    let restart = replay(&trace, &disk_config).expect("restart over the disk cache");
    assert_eq!(
        restart[0].misses, 0,
        "the restarted server must answer entirely from disk"
    );
    assert_eq!(
        documents(&restart[0].responses),
        warm_documents,
        "reloaded documents diverged from the in-memory warm pass"
    );
    let restart_ratio = populate[0].p50_us as f64 / (restart[0].p50_us.max(1)) as f64;
    println!(
        "restart over --cache-dir: p50 {} us p99 {} us {:.0} req/s \
         ({restart_ratio:.1}x below cold, 0 misses)",
        restart[0].p50_us, restart[0].p99_us, restart[0].rps
    );
    let _ = std::fs::remove_dir_all(&cache_dir);

    // The backpressure row: bursty paced arrivals through a deliberately
    // tight queue, so deferred admissions and queue depth are exercised.
    let bursty_trace = TraceFile::generate(&TraceConfig {
        requests: REQUESTS / 2,
        arrival: Arrival::Bursty,
        mean_gap_us: 100,
        ..trace_config
    });
    let bursty_config = ReplayConfig {
        serve: ServeConfig {
            workers: 2,
            queue_cap: 4,
            ..ServeConfig::default()
        },
        passes: 1,
        window: WINDOW,
        paced: true,
    };
    let bursty_metrics = ServeMetrics::default();
    let bursty =
        replay_with_metrics(&bursty_trace, &bursty_config, &bursty_metrics).expect("bursty replay");
    let pressure = bursty_metrics.snapshot();
    println!(
        "bursty paced: p50 {} us p99 {} us | queue high-water {} | \
         admission wait p50 {} us p99 {} us | {} deferred",
        bursty[0].p50_us,
        bursty[0].p99_us,
        pressure.queue_depth_high_water,
        pressure.admission_wait_p50_us,
        pressure.admission_wait_p99_us,
        pressure.deferred,
    );

    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("regbal-serve-bench/2")),
        ("requests".into(), Json::uint(REQUESTS as u64)),
        ("seed".into(), Json::uint(trace.seed)),
        ("arrival".into(), Json::str(trace.arrival.name())),
        ("packets".into(), Json::uint(u64::from(trace.packets))),
        ("window".into(), Json::uint(WINDOW as u64)),
        ("passes".into(), Json::uint(2)),
        ("sweeps".into(), Json::Arr(rows)),
        (
            "warm_speedup_p50".into(),
            Json::Num((worst_ratio * 10.0).round() / 10.0),
        ),
        (
            "restart".into(),
            Json::Obj(vec![
                ("cold".into(), pass_json(&populate[0])),
                ("warm".into(), pass_json(&restart[0])),
                (
                    "speedup_p50".into(),
                    Json::Num((restart_ratio * 10.0).round() / 10.0),
                ),
            ]),
        ),
        (
            "bursty".into(),
            Json::Obj(vec![
                ("requests".into(), Json::uint((REQUESTS / 2) as u64)),
                ("queue_cap".into(), Json::uint(4)),
                ("pass".into(), pass_json(&bursty[0])),
                ("metrics".into(), pressure.to_json()),
            ]),
        ),
    ]);
    let path = "BENCH_SERVE.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_SERVE.json");
    println!("wrote {path} (warm p50 {worst_ratio:.1}x below cold at the worst worker count)");
}
