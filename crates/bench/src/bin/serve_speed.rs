//! Times the resident allocation server on a replayed trace and writes
//! `BENCH_SERVE.json`.
//!
//! One seeded trace (zipfian kernel mix under drifting register
//! budgets) is replayed twice against a fresh server at 1, 2, and 4
//! workers. The cold pass pays every descent; the warm pass must be
//! answered entirely from the persistent cross-request cache. The
//! binary asserts:
//!
//! * the warm p50 latency is at least 5x below the cold p50 at every
//!   worker count — the cache, not the pool, is what makes a resident
//!   server worth keeping around;
//! * the full response transcript (ids, `cached` flags, and allocation
//!   documents) is byte-identical across all three worker counts — the
//!   wave protocol's determinism guarantee, measured rather than
//!   assumed.

use regbal_eval::Json;
use regbal_serve::{pass_json, replay, ReplayConfig, ServeConfig, TraceFile};
use regbal_workloads::TraceConfig;

/// Requests per pass — large enough that both percentiles are stable.
const REQUESTS: usize = 200;

/// Closed-loop window; eight in-flight requests keeps every worker fed
/// at the widest pool without hiding per-request latency behind the
/// queue the way an open loop would.
const WINDOW: usize = 8;

/// Worker counts benchmarked; 1 is the serial baseline.
const WORKERS: [usize; 3] = [1, 2, 4];

/// Required cold-p50 / warm-p50 ratio.
const WARM_FACTOR: u64 = 5;

fn main() {
    let trace_config = TraceConfig::default();
    let trace = TraceFile::generate(&TraceConfig {
        requests: REQUESTS,
        ..trace_config
    });

    let mut rows = Vec::new();
    let mut transcript: Option<Vec<String>> = None;
    let mut worst_ratio = f64::INFINITY;
    for workers in WORKERS {
        let config = ReplayConfig {
            serve: ServeConfig {
                workers,
                ..ServeConfig::default()
            },
            passes: 2,
            window: WINDOW,
            paced: false,
        };
        let reports = replay(&trace, &config).expect("replay");
        let (cold, warm) = (&reports[0], &reports[1]);
        assert_eq!(warm.misses, 0, "warm pass must be all cache hits");
        let ratio = cold.p50_us as f64 / (warm.p50_us.max(1)) as f64;
        assert!(
            warm.p50_us * WARM_FACTOR <= cold.p50_us,
            "{workers} worker(s): warm p50 {} us is not {WARM_FACTOR}x below cold p50 {} us",
            warm.p50_us,
            cold.p50_us
        );
        if ratio < worst_ratio {
            worst_ratio = ratio;
        }
        println!(
            "{workers} worker(s): cold p50 {} us p99 {} us {:.0} req/s | \
             warm p50 {} us p99 {} us {:.0} req/s ({ratio:.1}x)",
            cold.p50_us, cold.p99_us, cold.rps, warm.p50_us, warm.p99_us, warm.rps
        );

        let mut lines: Vec<String> = Vec::new();
        for report in &reports {
            lines.extend(report.responses.iter().cloned());
        }
        match &transcript {
            None => transcript = Some(lines),
            Some(reference) => assert_eq!(
                reference, &lines,
                "{workers} worker(s): response transcript diverged from the serial run"
            ),
        }

        rows.push(Json::Obj(vec![
            ("workers".into(), Json::uint(workers as u64)),
            ("cold".into(), pass_json(cold)),
            ("warm".into(), pass_json(warm)),
        ]));
    }
    println!("transcripts byte-identical at {WORKERS:?} workers");

    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("regbal-serve-bench/1")),
        ("requests".into(), Json::uint(REQUESTS as u64)),
        ("seed".into(), Json::uint(trace.seed)),
        ("arrival".into(), Json::str(trace.arrival.name())),
        ("packets".into(), Json::uint(u64::from(trace.packets))),
        ("window".into(), Json::uint(WINDOW as u64)),
        ("passes".into(), Json::uint(2)),
        ("sweeps".into(), Json::Arr(rows)),
        (
            "warm_speedup_p50".into(),
            Json::Num((worst_ratio * 10.0).round() / 10.0),
        ),
    ]);
    let path = "BENCH_SERVE.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_SERVE.json");
    println!("wrote {path} (warm p50 {worst_ratio:.1}x below cold at the worst worker count)");
}
