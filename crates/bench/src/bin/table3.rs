//! Regenerates paper Table 3: the three ARA scenarios — fixed-partition
//! spilling baseline vs the balancing allocator with shared registers.

use regbal_bench::{table, table3};

fn main() {
    for row in table3() {
        println!("{}", row.scenario);
        let cells: Vec<Vec<String>> = row
            .threads
            .iter()
            .map(|t| {
                vec![
                    format!("{}{}", t.kernel, if t.critical { " *" } else { "" }),
                    t.pr.to_string(),
                    t.sr.to_string(),
                    t.live_ranges.to_string(),
                    t.ctx_spill.to_string(),
                    t.ctx_sharing.to_string(),
                    format!("{:.0}", t.cpi_spill),
                    format!("{:.0}", t.cpi_sharing),
                    table::pct(t.speedup()),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(
                &[
                    "thread", "PR", "SR", "#live", "ctx(spill)", "ctx(share)",
                    "cpi(spill)", "cpi(share)", "speedup"
                ],
                &cells
            )
        );
    }
    println!("* = performance-critical thread");
    println!("(paper: critical threads gain 18-24%, others lose only 1-4%)");
}
