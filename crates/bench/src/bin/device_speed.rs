//! Times the chip cores against each other on the device scenario
//! family and writes `BENCH_DEVICE.json`.
//!
//! For each device size (4/16/64 worker PUs) the same virtual-register
//! device — command processor plus ring workers over a seeded packet
//! buffer — is run under three cores:
//!
//! * **reference** — the granularity-1 slice-interleaved loop, the
//!   semantics every other core must reproduce;
//! * **event** — the serial event-driven core: each PU runs in a batch
//!   to its next shared-memory event and a timestamp min-heap picks the
//!   next PU, instead of rescanning all PUs every slice;
//! * **event+threads** — the event core with batches executed on OS
//!   threads and a deterministic timestamp-ordered commit.
//!
//! The binary asserts all three produce **equal per-PU reports** at
//! every size (the identity guarantee), and that the serial event core
//! beats the reference loop by at least 2x at 64 PUs — the win grows
//! with PU count because the slice loop's rescan-and-switch overhead is
//! O(PUs) per memory event while the heap's is O(log PUs).

use regbal_eval::{device_scenarios, reference_program, run_device, DeviceOutcome};
use regbal_sim::ChipCore;
use std::time::Instant;

/// OS threads of the threaded arm. The container this repo is tuned on
/// exposes a single CPU, so the threaded arm documents determinism and
/// protocol overhead there, not a speedup; on multi-core hosts it
/// scales with the non-interacting batch width.
const THREADS: usize = 4;

/// Timed runs per configuration; the fastest is reported.
const RUNS: usize = 2;

/// Cycle budget — every scenario halts well below this.
const BUDGET: u64 = 20_000_000;

/// Packet-generator seed (the eval family's default).
const SEED: u64 = 0xD1CE;

fn timed(
    spec: &regbal_sim::DeviceSpec,
    program: &regbal_eval::DeviceProgram,
    core: ChipCore,
) -> (DeviceOutcome, f64) {
    let mut best: Option<(DeviceOutcome, f64)> = None;
    for _ in 0..RUNS {
        let start = Instant::now();
        let outcome = run_device(spec, program, core, BUDGET, SEED, false);
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
        assert!(outcome.halted, "device must drain within the budget");
        if best.as_ref().is_none_or(|(_, b)| wall_ms < *b) {
            best = Some((outcome, wall_ms));
        }
    }
    best.expect("at least one run")
}

fn main() {
    let mut rows = Vec::new();
    let mut speedup_at_64 = 0.0;
    for scenario in device_scenarios() {
        let spec = scenario.spec;
        let program = reference_program(&spec);
        println!(
            "{}: {} worker PU(s), {} packet(s)",
            scenario.name, spec.pus, spec.packets
        );

        let (ref_out, ref_ms) =
            timed(&spec, &program, ChipCore::Reference { granularity: 1 });
        println!("  reference      {ref_ms:8.1} ms");
        let (event_out, event_ms) = timed(&spec, &program, ChipCore::Event);
        let event_speedup = ref_ms / event_ms.max(f64::MIN_POSITIVE);
        println!("  event          {event_ms:8.1} ms  ({event_speedup:.2}x)");
        let (thr_out, thr_ms) =
            timed(&spec, &program, ChipCore::EventThreads { threads: THREADS });
        let thr_speedup = ref_ms / thr_ms.max(f64::MIN_POSITIVE);
        println!("  event+{THREADS}thr     {thr_ms:8.1} ms  ({thr_speedup:.2}x)");

        assert_eq!(
            event_out.reports, ref_out.reports,
            "{}: serial event core diverged from the reference interleaving",
            scenario.name
        );
        assert_eq!(
            thr_out.reports, ref_out.reports,
            "{}: threaded event core diverged from the reference interleaving",
            scenario.name
        );
        println!("  reports identical across all three cores");

        if spec.pus == 64 {
            speedup_at_64 = event_speedup;
        }
        rows.push(format!(
            "    {{\"pus\": {}, \"packets\": {}, \"cycles\": {}, \
             \"reference_ms\": {ref_ms:.1}, \"event_ms\": {event_ms:.1}, \
             \"event_threads_ms\": {thr_ms:.1}, \"event_speedup\": {event_speedup:.2}, \
             \"event_threads_speedup\": {thr_speedup:.2}, \"reports_identical\": true}}",
            spec.pus, spec.packets, ref_out.cycles
        ));
    }

    assert!(
        speedup_at_64 >= 2.0,
        "event core must be >= 2x the slice loop at 64 PUs, got {speedup_at_64:.2}x"
    );

    let doc = format!(
        "{{\n  \"schema\": \"regbal-device-bench/1\",\n  \
         \"os_threads\": {THREADS},\n  \"sizes\": [\n{}\n  ],\n  \
         \"event_speedup_at_64\": {speedup_at_64:.2}\n}}\n",
        rows.join(",\n")
    );
    let path = "BENCH_DEVICE.json";
    std::fs::write(path, doc).expect("write BENCH_DEVICE.json");
    println!("wrote {path} (event core {speedup_at_64:.2}x at 64 PUs)");
}
