//! Minimal fixed-width text-table rendering for the experiment
//! binaries.

/// Renders rows of cells as an aligned text table with a header rule.
///
/// # Example
///
/// ```
/// let t = regbal_bench::table::render(
///     &["name", "n"],
///     &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
/// );
/// assert!(t.contains("name"));
/// assert!(t.lines().count() >= 4);
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut width = vec![0usize; cols];
    for (i, h) in header.iter().enumerate() {
        width[i] = h.len();
    }
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            width[i] = width[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&line(
        &header.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

/// Formats a ratio as a signed percentage (`+12.3%`).
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let s = render(
            &["k", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        render(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.123), "+12.3%");
        assert_eq!(pct(-0.04), "-4.0%");
    }
}
