//! Benchmark harness reproducing the paper's evaluation (§9).
//!
//! Each experiment has a data-producing function here and a binary that
//! prints it as a table:
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Table 1 (benchmark statics) | [`table1`] | `table1` |
//! | Figure 14 (SRA register counts) | [`figure14`] | `figure14` |
//! | Table 2 (moves at minimum registers) | [`table2`] | `table2` |
//! | Table 3 (ARA scenarios) | [`table3`] | `table3` |
//! | Ablations (ours) | [`ablation_direction`], [`ablation_cost_curve`] | `ablation` |
//! | §9 throughput study | `regbal_eval::run_eval` | `eval` (writes `BENCH_EVAL.json`) |
//!
//! Absolute numbers differ from the paper (our substrate is a scaled
//! simulator, not the IXP1200 workbench); the *shape* — who wins, by
//! roughly what factor — is the reproduction target. See
//! `EXPERIMENTS.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::{
    ablation_cost_curve, ablation_direction, ablation_sweep, figure14, table1, table2, table3,
    CostCurvePoint, DirectionPolicy, Fig14Row, Scenario, SweepPoint, Table1Row, Table2Row,
    Table3Row, ThreadOutcome, SCENARIOS,
};
