//! Data producers for every table and figure of the paper's evaluation.

use regbal_analysis::ProgramInfo;
use regbal_core::chaitin::{self, ChaitinConfig};
use regbal_core::{
    allocate_threads, estimate_bounds, force_min_bounds, sra_zero_cost_frontier, MultiAllocation,
};
use regbal_ir::{Func, Reg};
use regbal_sim::{SimConfig, Simulator, StopWhen};
use regbal_workloads::{Kernel, Workload};

/// Threads per processing unit, as in the paper.
pub const NTHD: usize = 4;

/// Register-file size used for the ARA scenarios. The paper uses the
/// IXP1200's 128 registers against microcode whose per-thread pressure
/// exceeds 32; our IR kernels are leaner, so the experiments scale the
/// file to 48 (12 per thread for the fixed-partition baseline), which
/// preserves the pressure-to-partition ratio that drives spilling: the
/// critical kernels (`md5`, `wraps-rx`, RegPmax well above 12) spill
/// under the fixed partition while the lean ones do not.
pub const NREG_SCENARIO: usize = 48;

/// One row of Table 1: static properties of a benchmark.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Instructions after code generation.
    pub code_size: usize,
    /// Cycles per main-loop iteration, single thread on the PU.
    pub cycles_per_iter: f64,
    /// Context-switch instructions.
    pub ctx_insts: usize,
    /// Live ranges (nodes on the GIG).
    pub live_ranges: usize,
    /// `RegPmax` (= MinR).
    pub regp_max: usize,
    /// `RegPCSBmax` (= MinPR).
    pub regp_csb_max: usize,
    /// Estimated `MaxR`.
    pub max_r: usize,
    /// Estimated `MaxPR`.
    pub max_pr: usize,
    /// Number of non-switch regions.
    pub nsrs: usize,
    /// Average NSR size in program points.
    pub avg_nsr_size: f64,
}

/// Computes Table 1 over the whole suite.
pub fn table1() -> Vec<Table1Row> {
    Kernel::ALL
        .iter()
        .map(|&k| {
            let packets = 32;
            let w = Workload::new(k, 0, packets);
            let info = ProgramInfo::compute(&w.func);
            let est = estimate_bounds(&info);
            let mut sim = Simulator::new(SimConfig::default());
            w.prepare(sim.memory_mut(), 7);
            sim.add_thread(w.func.clone());
            let report = sim.run(StopWhen::Iterations(packets as u64));
            let live_ranges = (0..info.num_vregs())
                .filter(|&v| {
                    info.pmap
                        .points()
                        .any(|p| info.liveness.live_in(p).contains(v))
                        || info
                            .pmap
                            .points()
                            .any(|p| info.liveness.defs_at(p).contains(&regbal_ir::VReg(v as u32)))
                })
                .count();
            Table1Row {
                name: k.name(),
                code_size: w.func.num_insts(),
                cycles_per_iter: report.threads[0].cycles_per_iteration,
                ctx_insts: w.func.num_ctx_insts(),
                live_ranges,
                regp_max: info.pressure.regp_max,
                regp_csb_max: info.pressure.regp_csb_max,
                max_r: est.bounds.max_r,
                max_pr: est.bounds.max_pr,
                nsrs: info.nsr.num_regions(),
                avg_nsr_size: info.nsr.avg_size(),
            }
        })
        .collect()
}

/// One bar group of Figure 14: single-thread Chaitin register count vs
/// the (PR, SR) the inter-thread allocator reaches at zero move cost
/// with four threads.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Registers a standalone Chaitin allocation uses.
    pub chaitin_regs: usize,
    /// Private registers per thread (ours).
    pub pr: usize,
    /// Shared registers (ours).
    pub sr: usize,
    /// Relative saving of `Nthd·PR + SR` against `Nthd·Chaitin`.
    pub saving: f64,
}

/// Computes Figure 14 over the whole suite.
pub fn figure14() -> Vec<Fig14Row> {
    Kernel::ALL
        .iter()
        .map(|&k| {
            let w = Workload::new(k, 0, 32);
            let chaitin_regs = chaitin_register_count(&w.func);
            let sra = sra_zero_cost_frontier(&w.func, NTHD);
            assert_eq!(sra.moves(), 0, "{}: frontier must be move-free", k.name());
            let ours = (NTHD * sra.pr() + sra.sr()) as f64;
            let base = (NTHD * chaitin_regs) as f64;
            Fig14Row {
                name: k.name(),
                chaitin_regs,
                pr: sra.pr(),
                sr: sra.sr(),
                saving: 1.0 - ours / base,
            }
        })
        .collect()
}

/// Registers used by a standalone Chaitin allocation with an ample
/// register file (no spills).
fn chaitin_register_count(func: &Func) -> usize {
    let cfg = ChaitinConfig {
        k: 128,
        phys_base: 0,
        spill_space: regbal_ir::MemSpace::Sram,
        spill_base: 0x7_0000,
    };
    let result = chaitin::allocate(func, &cfg).expect("ample file cannot spill");
    assert_eq!(result.spilled, 0);
    let mut used = std::collections::BTreeSet::new();
    let mut see = |r: Reg| {
        if let Reg::Phys(p) = r {
            used.insert(p.0);
        }
    };
    for (_, _, inst) in result.func.iter_insts() {
        inst.defs().for_each(&mut see);
        inst.uses().for_each(&mut see);
    }
    for (_, b) in result.func.iter_blocks() {
        b.term.uses().for_each(&mut see);
    }
    used.len()
}

/// One row of Table 2: the extreme case — moves inserted when only the
/// minimum register bound is allocated.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// `MinPR` reached.
    pub pr: usize,
    /// `MinR` reached.
    pub r: usize,
    /// Move instructions inserted.
    pub moves: usize,
    /// Moves as a fraction of the instruction count.
    pub move_overhead: f64,
}

/// Computes Table 2 over the whole suite.
pub fn table2() -> Vec<Table2Row> {
    Kernel::ALL
        .iter()
        .map(|&k| {
            let w = Workload::new(k, 0, 32);
            let t = force_min_bounds(&w.func).unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            Table2Row {
                name: k.name(),
                pr: t.pr(),
                r: t.pr() + t.sr(),
                moves: t.moves(),
                move_overhead: t.moves() as f64 / w.func.num_insts() as f64,
            }
        })
        .collect()
}

/// A four-thread scenario of Table 3.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Scenario name as in the paper.
    pub name: &'static str,
    /// The four thread kernels.
    pub kernels: [Kernel; 4],
    /// Which threads the paper calls performance-critical.
    pub critical: [bool; 4],
}

/// The three scenarios of paper Table 3.
pub const SCENARIOS: [Scenario; 3] = [
    Scenario {
        name: "S1: md5 x2 + fir2dim x2",
        kernels: [Kernel::Md5, Kernel::Md5, Kernel::Fir2dim, Kernel::Fir2dim],
        critical: [true, true, false, false],
    },
    Scenario {
        name: "S2: l2l3fwd rx/tx + md5 x2",
        kernels: [
            Kernel::L2l3fwdRx,
            Kernel::L2l3fwdTx,
            Kernel::Md5,
            Kernel::Md5,
        ],
        critical: [false, false, true, true],
    },
    Scenario {
        name: "S3: wraps rx/tx + fir2dim + frag",
        kernels: [
            Kernel::WrapsRx,
            Kernel::WrapsTx,
            Kernel::Fir2dim,
            Kernel::Frag,
        ],
        critical: [true, true, false, false],
    },
];

/// Per-thread outcome of one Table 3 scenario.
#[derive(Debug, Clone)]
pub struct ThreadOutcome {
    /// Kernel on this thread.
    pub kernel: &'static str,
    /// Whether the paper counts it performance-critical.
    pub critical: bool,
    /// Private registers assigned by the balancing allocator.
    pub pr: usize,
    /// Shared registers needed by this thread.
    pub sr: usize,
    /// Live ranges after allocation (split fragments).
    pub live_ranges: usize,
    /// Static CTX instructions, spilling baseline.
    pub ctx_spill: usize,
    /// Static CTX instructions, register sharing.
    pub ctx_sharing: usize,
    /// Cycles per iteration, spilling baseline.
    pub cpi_spill: f64,
    /// Cycles per iteration, register sharing.
    pub cpi_sharing: f64,
}

impl ThreadOutcome {
    /// Relative cycle change of sharing vs spilling: positive =
    /// speedup.
    pub fn speedup(&self) -> f64 {
        1.0 - self.cpi_sharing / self.cpi_spill
    }
}

/// One scenario row group of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Scenario description.
    pub scenario: &'static str,
    /// The four thread outcomes.
    pub threads: Vec<ThreadOutcome>,
}

/// Computes Table 3: each scenario under the fixed-partition spilling
/// baseline and under the balancing allocator, measured in a
/// steady-state simulation window.
pub fn table3() -> Vec<Table3Row> {
    SCENARIOS.iter().map(|s| run_scenario(s, NREG_SCENARIO)).collect()
}

/// Runs one scenario at the given register-file size.
pub fn run_scenario(s: &Scenario, nreg: usize) -> Table3Row {
    // Long-running workloads: the measurement is a fixed cycle window.
    let packets = 1 << 20;
    let workloads: Vec<Workload> = s
        .kernels
        .iter()
        .enumerate()
        .map(|(slot, &k)| Workload::new(k, slot, packets))
        .collect();
    let funcs: Vec<Func> = workloads.iter().map(|w| w.func.clone()).collect();

    // Spilling baseline: fixed nreg/NTHD partition each.
    let k_part = nreg / NTHD;
    let spill_funcs: Vec<Func> = funcs
        .iter()
        .enumerate()
        .map(|(t, f)| {
            let cfg = ChaitinConfig {
                k: k_part,
                phys_base: (t * k_part) as u32,
                spill_space: regbal_ir::MemSpace::Sram,
                spill_base: 0x7_0000 + (t as i64) * 0x1000,
            };
            chaitin::allocate(f, &cfg)
                .unwrap_or_else(|e| panic!("baseline {}: {e}", s.name))
                .func
        })
        .collect();

    // Balancing allocator.
    let alloc: MultiAllocation =
        allocate_threads(&funcs, nreg).unwrap_or_else(|e| panic!("{}: {e}", s.name));
    let share_funcs = alloc.rewrite_funcs(&funcs);

    let cpi_spill = steady_state_cpi(&spill_funcs, &workloads);
    let cpi_share = steady_state_cpi(&share_funcs, &workloads);

    let threads = (0..NTHD)
        .map(|t| ThreadOutcome {
            kernel: s.kernels[t].name(),
            critical: s.critical[t],
            pr: alloc.threads[t].pr(),
            sr: alloc.threads[t].sr(),
            live_ranges: alloc.threads[t].alloc.node_ids().count(),
            ctx_spill: spill_funcs[t].num_ctx_insts(),
            ctx_sharing: share_funcs[t].num_ctx_insts(),
            cpi_spill: cpi_spill[t],
            cpi_sharing: cpi_share[t],
        })
        .collect();
    Table3Row {
        scenario: s.name,
        threads,
    }
}

/// Measures steady-state cycles/iteration for four co-running threads
/// inside a fixed window.
fn steady_state_cpi(funcs: &[Func], workloads: &[Workload]) -> Vec<f64> {
    const WINDOW: u64 = 400_000;
    let mut sim = Simulator::new(SimConfig::default());
    for w in workloads {
        w.prepare(sim.memory_mut(), 0xA5A5 + w.slot as u64);
    }
    for f in funcs {
        sim.add_thread(f.clone());
    }
    let report = sim.run(StopWhen::Cycles(WINDOW));
    assert!(
        report.violations.is_empty(),
        "register-safety violation during measurement"
    );
    report
        .threads
        .iter()
        .map(|t| t.cycles_per_iteration)
        .collect()
}

/// Greedy-direction policies for the inter-thread reduction ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectionPolicy {
    /// The paper's policy: pick the cheapest of all candidates.
    MinCost,
    /// Always shrink a private register first if possible.
    PrivateFirst,
    /// Always shrink the maximal shared count first if possible.
    SharedFirst,
}

/// Ablation A1: total moves inserted by each greedy direction policy
/// when fitting a scenario into a tight register file.
pub fn ablation_direction(s: &Scenario, nreg: usize) -> Vec<(DirectionPolicy, Option<usize>)> {
    use regbal_core::ThreadAlloc;
    let funcs: Vec<Func> = s
        .kernels
        .iter()
        .enumerate()
        .map(|(slot, &k)| Workload::new(k, slot, 64).func)
        .collect();

    let run = |policy: DirectionPolicy| -> Option<usize> {
        struct T {
            alloc: ThreadAlloc,
            min_pr: usize,
            min_r: usize,
        }
        let mut threads: Vec<T> = funcs
            .iter()
            .map(|f| {
                let info = ProgramInfo::compute(f);
                let est = estimate_bounds(&info);
                let live = std::sync::Arc::new(regbal_core::LiveMap::compute(&info));
                T {
                    alloc: ThreadAlloc::new(live, &est.coloring, est.bounds.max_pr, est.bounds.max_r),
                    min_pr: est.bounds.min_pr,
                    min_r: est.bounds.min_r,
                }
            })
            .collect();
        loop {
            let total: usize = threads.iter().map(|t| t.alloc.pr()).sum::<usize>()
                + threads.iter().map(|t| t.alloc.sr()).max().unwrap_or(0);
            if total <= nreg {
                return Some(threads.iter().map(|t| t.alloc.moves()).sum());
            }
            let can_pr = |t: &T| t.alloc.pr() > t.min_pr && t.alloc.r() > t.min_r;
            let can_sr = |t: &T| t.alloc.sr() > 0 && t.alloc.r() > t.min_r;
            let max_sr = threads.iter().map(|t| t.alloc.sr()).max().unwrap_or(0);
            let try_private = |threads: &mut Vec<T>| -> bool {
                // Cheapest private reduction among eligible threads.
                let mut best: Option<(usize, isize)> = None;
                for (i, t) in threads.iter().enumerate() {
                    if can_pr(t) {
                        if let Some(c) = t.alloc.peek_reduce_private() {
                            if best.is_none_or(|(_, bc)| c < bc) {
                                best = Some((i, c));
                            }
                        }
                    }
                }
                match best {
                    Some((i, _)) => threads[i].alloc.reduce_private().is_some(),
                    None => false,
                }
            };
            let try_shared = |threads: &mut Vec<T>| -> bool {
                let holders: Vec<usize> = threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.alloc.sr() == max_sr && max_sr > 0)
                    .map(|(i, _)| i)
                    .collect();
                if holders.is_empty() || !holders.iter().all(|&i| can_sr(&threads[i])) {
                    return false;
                }
                holders
                    .into_iter()
                    .all(|i| threads[i].alloc.reduce_shared().is_some())
            };
            let ok = match policy {
                DirectionPolicy::PrivateFirst => try_private(&mut threads) || try_shared(&mut threads),
                DirectionPolicy::SharedFirst => try_shared(&mut threads) || try_private(&mut threads),
                DirectionPolicy::MinCost => {
                    // Mirror the production engine: compare peek costs.
                    let mut pr_best: Option<(usize, isize)> = None;
                    for (i, t) in threads.iter().enumerate() {
                        if can_pr(t) {
                            if let Some(c) = t.alloc.peek_reduce_private() {
                                if pr_best.is_none_or(|(_, bc)| c < bc) {
                                    pr_best = Some((i, c));
                                }
                            }
                        }
                    }
                    let holders: Vec<usize> = threads
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.alloc.sr() == max_sr && max_sr > 0)
                        .map(|(i, _)| i)
                        .collect();
                    let sr_cost: Option<isize> = if !holders.is_empty()
                        && holders.iter().all(|&i| can_sr(&threads[i]))
                    {
                        holders
                            .iter()
                            .map(|&i| threads[i].alloc.peek_reduce_shared())
                            .sum()
                    } else {
                        None
                    };
                    match (pr_best, sr_cost) {
                        (Some((i, pc)), Some(sc)) if pc <= sc => {
                            threads[i].alloc.reduce_private().is_some()
                        }
                        (_, Some(_)) => try_shared(&mut threads),
                        (Some((i, _)), None) => threads[i].alloc.reduce_private().is_some(),
                        (None, None) => false,
                    }
                }
            };
            if !ok {
                return None;
            }
        }
    };

    [
        DirectionPolicy::MinCost,
        DirectionPolicy::PrivateFirst,
        DirectionPolicy::SharedFirst,
    ]
    .into_iter()
    .map(|p| (p, run(p)))
    .collect()
}

/// A point on the move-cost curve of ablation A2.
#[derive(Debug, Clone, Copy)]
pub struct CostCurvePoint {
    /// Private registers at this point.
    pub pr: usize,
    /// Total registers (`R = PR + SR`) the thread was reduced to.
    pub r: usize,
    /// Moves required.
    pub moves: usize,
}

/// Ablation A2: how move cost grows as one thread is squeezed from its
/// upper bound toward `MinR` (the tradeoff the paper's Table 2 probes at
/// its extreme point).
pub fn ablation_cost_curve(kernel: Kernel) -> Vec<CostCurvePoint> {
    let func = Workload::new(kernel, 0, 64).func;
    let info = ProgramInfo::compute(&func);
    let est = estimate_bounds(&info);
    let live = std::sync::Arc::new(regbal_core::LiveMap::compute(&info));
    let mut alloc = regbal_core::ThreadAlloc::new(
        live,
        &est.coloring,
        est.bounds.max_pr,
        est.bounds.max_r,
    );
    let mut curve = vec![CostCurvePoint {
        pr: alloc.pr(),
        r: alloc.r(),
        moves: alloc.moves(),
    }];
    loop {
        let did = if alloc.pr() > est.bounds.min_pr {
            alloc.reduce_private().is_some()
        } else if alloc.sr() > 0 && alloc.r() > est.bounds.min_r {
            alloc.reduce_shared().is_some()
        } else {
            false
        };
        if !did {
            break;
        }
        curve.push(CostCurvePoint {
            pr: alloc.pr(),
            r: alloc.r(),
            moves: alloc.moves(),
        });
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1's headline structural facts hold for the rebuilt suite.
    #[test]
    fn table1_shapes() {
        let rows = table1();
        assert_eq!(rows.len(), 11, "the paper's 11 benchmarks");
        for r in &rows {
            assert!(r.regp_csb_max <= r.regp_max, "{}", r.name);
            assert!(r.max_pr <= r.max_r, "{}", r.name);
            assert!(r.regp_max <= r.max_r, "{}", r.name);
            assert!(r.nsrs >= 2, "{}: CSBs split the CFG", r.name);
            assert!(r.cycles_per_iter.is_finite(), "{}", r.name);
        }
        // CTX density averages around the paper's ~10%.
        let avg_ctx: f64 = rows
            .iter()
            .map(|r| r.ctx_insts as f64 / r.code_size as f64)
            .sum::<f64>()
            / rows.len() as f64;
        assert!((0.05..0.25).contains(&avg_ctx), "avg ctx density {avg_ctx}");
    }

    /// Figure 14's headline: our multi-threaded demand beats four
    /// standalone allocations on every benchmark, averaging a saving in
    /// the paper's ballpark (they report 24%).
    #[test]
    fn figure14_shapes() {
        let rows = figure14();
        for r in &rows {
            assert!(r.pr <= r.chaitin_regs, "{}: PR vs standalone", r.name);
            assert!(r.saving > 0.0, "{}: must save registers", r.name);
        }
        let avg: f64 = rows.iter().map(|r| r.saving).sum::<f64>() / rows.len() as f64;
        assert!((0.10..0.40).contains(&avg), "average saving {avg}");
    }

    /// Table 2's headline: the minimum bound is reachable everywhere
    /// and the move overhead stays within the paper's 10% envelope.
    #[test]
    fn table2_shapes() {
        let rows = table2();
        assert!(rows.iter().any(|r| r.moves > 0), "splitting really happens");
        for r in &rows {
            assert!(
                r.move_overhead <= 0.10,
                "{}: overhead {:.1}%",
                r.name,
                100.0 * r.move_overhead
            );
        }
    }

    /// Table 3's headline, on the cheapest scenario only (full runs are
    /// exercised by the release-mode binary): the critical threads win,
    /// the lean threads stay within single digits.
    #[test]
    #[ignore = "slow in debug builds; run with --ignored or use the table3 binary"]
    fn table3_shapes() {
        for row in table3() {
            for t in &row.threads {
                if t.critical {
                    assert!(t.speedup() > 0.15, "{}: {}", row.scenario, t.kernel);
                } else {
                    assert!(t.speedup() > -0.15, "{}: {}", row.scenario, t.kernel);
                }
            }
        }
    }
}

/// One point of the register-file sensitivity sweep (ablation A3).
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Register-file size.
    pub nreg: usize,
    /// Mean speedup of the scenario's critical threads (sharing vs the
    /// fixed-partition spilling baseline); `None` when either allocator
    /// fails at this size.
    pub critical_speedup: Option<f64>,
    /// Mean speedup of the non-critical threads.
    pub other_speedup: Option<f64>,
}

/// Ablation A3: how the sharing advantage decays as the register file
/// grows — once the fixed partition stops spilling, the two allocators
/// converge (the crossover the paper's scaled evaluation sits left of).
pub fn ablation_sweep(s: &Scenario, sizes: &[usize]) -> Vec<SweepPoint> {
    sizes
        .iter()
        .map(|&nreg| {
            let row = std::panic::catch_unwind(|| run_scenario(s, nreg));
            match row {
                Ok(row) => {
                    let mean = |critical: bool| {
                        let xs: Vec<f64> = row
                            .threads
                            .iter()
                            .filter(|t| t.critical == critical)
                            .map(ThreadOutcome::speedup)
                            .collect();
                        if xs.is_empty() {
                            None
                        } else {
                            Some(xs.iter().sum::<f64>() / xs.len() as f64)
                        }
                    };
                    SweepPoint {
                        nreg,
                        critical_speedup: mean(true),
                        other_speedup: mean(false),
                    }
                }
                Err(_) => SweepPoint {
                    nreg,
                    critical_speedup: None,
                    other_speedup: None,
                },
            }
        })
        .collect()
}
