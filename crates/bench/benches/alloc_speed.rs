//! Allocator compile-time cost — the paper reports "almost negligible
//! compilation time" for the inter-thread algorithm; these benches
//! quantify it for our implementation.

use criterion::{criterion_group, criterion_main, Criterion};
use regbal_core::{allocate_sra, allocate_threads, estimate_bounds, force_min_bounds};
use regbal_analysis::ProgramInfo;
use regbal_workloads::{Kernel, Workload};
use std::hint::black_box;

fn bench_bounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimate_bounds");
    for k in [Kernel::Md5, Kernel::Frag, Kernel::WrapsRx] {
        let f = Workload::new(k, 0, 32).func;
        g.bench_function(k.name(), |b| {
            b.iter(|| {
                let info = ProgramInfo::compute(black_box(&f));
                black_box(estimate_bounds(&info))
            })
        });
    }
    g.finish();
}

fn bench_sra(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocate_sra_4x128");
    for k in [Kernel::Md5, Kernel::Frag, Kernel::WrapsRx] {
        let f = Workload::new(k, 0, 32).func;
        g.bench_function(k.name(), |b| {
            b.iter(|| black_box(allocate_sra(black_box(&f), 4, 128).unwrap()))
        });
    }
    g.finish();
}

fn bench_scenario(c: &mut Criterion) {
    let funcs: Vec<_> = [Kernel::Md5, Kernel::Md5, Kernel::Fir2dim, Kernel::Fir2dim]
        .iter()
        .enumerate()
        .map(|(s, &k)| Workload::new(k, s, 32).func)
        .collect();
    c.bench_function("allocate_threads_scenario1_48", |b| {
        b.iter(|| black_box(allocate_threads(black_box(&funcs), 48).unwrap()))
    });
}

fn bench_min_bounds(c: &mut Criterion) {
    let f = Workload::new(Kernel::Md5, 0, 32).func;
    c.bench_function("force_min_bounds_md5", |b| {
        b.iter(|| black_box(force_min_bounds(black_box(&f)).unwrap()))
    });
}

criterion_group!(benches, bench_bounds, bench_sra, bench_scenario, bench_min_bounds);
criterion_main!(benches);
