//! Dataflow-analysis and interference-graph construction speed.

use criterion::{criterion_group, criterion_main, Criterion};
use regbal_analysis::ProgramInfo;
use regbal_igraph::{build_big, build_gig, build_iigs};
use regbal_workloads::{Kernel, Workload};
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("program_info");
    for k in [Kernel::Md5, Kernel::WrapsRx, Kernel::Drr] {
        let f = Workload::new(k, 0, 32).func;
        g.bench_function(k.name(), |b| {
            b.iter(|| black_box(ProgramInfo::compute(black_box(&f))))
        });
    }
    g.finish();
}

fn bench_graphs(c: &mut Criterion) {
    let f = Workload::new(Kernel::Md5, 0, 32).func;
    let info = ProgramInfo::compute(&f);
    c.bench_function("build_gig_md5", |b| {
        b.iter(|| black_box(build_gig(black_box(&info))))
    });
    let gig = build_gig(&info);
    c.bench_function("build_big_iigs_md5", |b| {
        b.iter(|| {
            black_box(build_big(black_box(&info)));
            black_box(build_iigs(black_box(&info), &gig))
        })
    });
    c.bench_function("dsatur_md5_gig", |b| {
        b.iter(|| black_box(gig.dsatur(None)))
    });
}

criterion_group!(benches, bench_analysis, bench_graphs);
criterion_main!(benches);
