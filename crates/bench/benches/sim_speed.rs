//! Simulator throughput: cycles simulated per wall-clock second.

use criterion::{criterion_group, criterion_main, Criterion};
use regbal_sim::{SimConfig, Simulator, StopWhen};
use regbal_workloads::{Kernel, Workload};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_100k_cycles");
    g.sample_size(20);
    for k in [Kernel::Md5, Kernel::Frag] {
        let w = Workload::new(k, 0, 1 << 20);
        g.bench_function(k.name(), |b| {
            b.iter(|| {
                let mut sim = Simulator::new(SimConfig::default());
                w.prepare(sim.memory_mut(), 1);
                sim.add_thread(w.func.clone());
                black_box(sim.run(StopWhen::Cycles(100_000)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
