//! Engine and graph-construction speed: the memoized + parallel greedy
//! engine against the naive reference, and bitset-row interference
//! construction against pairwise insertion, on the 8-kernel workload
//! suite.

use criterion::{criterion_group, criterion_main, Criterion};
use regbal_analysis::ProgramInfo;
use regbal_core::{allocate_threads_with, EngineConfig};
use regbal_igraph::{build_big, build_big_naive, build_gig, build_gig_naive};
use regbal_ir::Func;
use regbal_workloads::{Kernel, Workload};
use std::hint::black_box;

const SUITE: [Kernel; 8] = [
    Kernel::Md5,
    Kernel::Fir2dim,
    Kernel::Frag,
    Kernel::Crc,
    Kernel::Drr,
    Kernel::Reed,
    Kernel::Url,
    Kernel::WrapsRx,
];

fn suite_funcs() -> Vec<Func> {
    SUITE
        .iter()
        .enumerate()
        .map(|(s, &k)| Workload::new(k, s, 32).func)
        .collect()
}

/// The smallest register file the suite fits in: benching at the floor
/// maximises greedy iterations, which is where the engines differ.
fn tightest_nreg(funcs: &[Func]) -> usize {
    let feasible =
        |n: usize| allocate_threads_with(funcs, n, EngineConfig::default()).is_ok();
    let mut hi = 256;
    assert!(feasible(hi), "suite must fit in 256 registers");
    let mut lo = 1;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    hi
}

fn bench_graph_construction(c: &mut Criterion) {
    let infos: Vec<(Kernel, ProgramInfo)> = SUITE
        .iter()
        .map(|&k| (k, ProgramInfo::compute(&Workload::new(k, 0, 32).func)))
        .collect();

    let mut g = c.benchmark_group("build_gig");
    for (k, info) in &infos {
        g.bench_function(format!("bitset/{}", k.name()), |b| {
            b.iter(|| black_box(build_gig(black_box(info))))
        });
        g.bench_function(format!("naive/{}", k.name()), |b| {
            b.iter(|| black_box(build_gig_naive(black_box(info))))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("build_big");
    for (k, info) in &infos {
        g.bench_function(format!("bitset/{}", k.name()), |b| {
            b.iter(|| black_box(build_big(black_box(info))))
        });
        g.bench_function(format!("naive/{}", k.name()), |b| {
            b.iter(|| black_box(build_big_naive(black_box(info))))
        });
    }
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let funcs = suite_funcs();
    let nreg = tightest_nreg(&funcs);
    eprintln!("engine_8thread: tightest feasible nreg = {nreg}");

    let configs = [
        ("memo+par", EngineConfig::default()),
        (
            "memo",
            EngineConfig {
                memoize: true,
                parallel: false,
                ..EngineConfig::default()
            },
        ),
        ("naive", EngineConfig::naive()),
    ];
    let mut g = c.benchmark_group(format!("engine_8thread_nreg{nreg}"));
    g.sample_size(10);
    for (name, config) in configs {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(allocate_threads_with(black_box(&funcs), nreg, config).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_graph_construction, bench_engine);
criterion_main!(benches);
