//! The work-stealing worker pool behind the sharded sweep — and, since
//! the allocation server landed, behind every batch of server requests.
//!
//! The shape is deliberately minimal: `total` independent tasks indexed
//! `0..total`, a shared atomic cursor the workers steal indices from,
//! and a positional merge. Tasks differ wildly in cost (a cache hit
//! returns instantly, a cold ladder descent burns a whole engine
//! search), so static striping would idle workers; the cursor keeps
//! every worker busy until the range is drained. Because the merge is
//! positional — never arrival-ordered — the output vector is identical
//! at any worker count whenever `compute` itself is deterministic.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Cumulative pool counters, shared by every [`shard_metered`] call
/// that names the same meter. All fields are monotonic and updated
/// with relaxed atomics — the meter observes the pool, it never
/// synchronises it — so identical task streams produce identical
/// counter totals at any worker count.
#[derive(Debug, Default)]
pub struct PoolMeter {
    /// `shard` calls metered (one per dispatched wave/sweep).
    pub shards: AtomicU64,
    /// Tasks computed across all metered calls.
    pub tasks: AtomicU64,
    /// Largest single metered call, in tasks (high-water mark).
    pub max_shard: AtomicU64,
}

impl PoolMeter {
    /// Records one `shard` call over `total` tasks.
    fn note(&self, total: usize) {
        self.shards.fetch_add(1, Ordering::Relaxed);
        self.tasks.fetch_add(total as u64, Ordering::Relaxed);
        self.max_shard
            .fetch_max(total as u64, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot: `(shards, tasks, max_shard)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.shards.load(Ordering::Relaxed),
            self.tasks.load(Ordering::Relaxed),
            self.max_shard.load(Ordering::Relaxed),
        )
    }
}

/// Runs `compute(0..total)` across `threads` scoped OS workers stealing
/// indices from a shared cursor, returning the results in index order.
///
/// `threads <= 1` (or a single task) runs the plain serial loop in the
/// calling thread — same closure, so the paths cannot diverge. Workers
/// are clamped to `total`; a panic inside `compute` propagates to the
/// caller (the eval sweep catches per-cell panics *inside* its compute
/// closure, so anything escaping here is a harness bug).
pub fn shard<T: Send>(
    total: usize,
    threads: usize,
    compute: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    shard_metered(total, threads, None, compute)
}

/// [`shard`], recording the call in `meter` when one is given. The
/// meter only counts — results and ordering are unaffected.
pub fn shard_metered<T: Send>(
    total: usize,
    threads: usize,
    meter: Option<&PoolMeter>,
    compute: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    if let Some(meter) = meter {
        meter.note(total);
    }
    if threads <= 1 || total <= 1 {
        return (0..total).map(compute).collect();
    }
    let next = AtomicUsize::new(0);
    let computed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(total))
            .map(|_| {
                let next = &next;
                let compute = &compute;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= total {
                            break;
                        }
                        mine.push((idx, compute(idx)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("a pool worker died outside its task"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
    for (idx, value) in computed {
        slots[idx] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every stolen index was computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_land_in_index_order_at_any_width() {
        let serial = shard(17, 1, |i| i * i);
        for threads in [2, 4, 9, 32] {
            assert_eq!(shard(17, threads, |i| i * i), serial);
        }
        assert_eq!(shard(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(shard(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn the_meter_counts_shards_tasks_and_high_water() {
        let meter = PoolMeter::default();
        shard_metered(5, 2, Some(&meter), |i| i);
        shard_metered(11, 4, Some(&meter), |i| i);
        shard_metered(0, 1, Some(&meter), |i| i);
        assert_eq!(meter.snapshot(), (3, 16, 11));
        // A metered run returns exactly what an unmetered one does.
        assert_eq!(shard_metered(9, 3, Some(&meter), |i| i * 2), shard(9, 3, |i| i * 2));
    }

    #[test]
    fn every_index_is_computed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = shard(100, 7, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }
}
