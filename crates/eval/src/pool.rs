//! The work-stealing worker pool behind the sharded sweep — and, since
//! the allocation server landed, behind every batch of server requests.
//!
//! The shape is deliberately minimal: `total` independent tasks indexed
//! `0..total`, a shared atomic cursor the workers steal indices from,
//! and a positional merge. Tasks differ wildly in cost (a cache hit
//! returns instantly, a cold ladder descent burns a whole engine
//! search), so static striping would idle workers; the cursor keeps
//! every worker busy until the range is drained. Because the merge is
//! positional — never arrival-ordered — the output vector is identical
//! at any worker count whenever `compute` itself is deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `compute(0..total)` across `threads` scoped OS workers stealing
/// indices from a shared cursor, returning the results in index order.
///
/// `threads <= 1` (or a single task) runs the plain serial loop in the
/// calling thread — same closure, so the paths cannot diverge. Workers
/// are clamped to `total`; a panic inside `compute` propagates to the
/// caller (the eval sweep catches per-cell panics *inside* its compute
/// closure, so anything escaping here is a harness bug).
pub fn shard<T: Send>(
    total: usize,
    threads: usize,
    compute: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    if threads <= 1 || total <= 1 {
        return (0..total).map(compute).collect();
    }
    let next = AtomicUsize::new(0);
    let computed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(total))
            .map(|_| {
                let next = &next;
                let compute = &compute;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= total {
                            break;
                        }
                        mine.push((idx, compute(idx)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("a pool worker died outside its task"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
    for (idx, value) in computed {
        slots[idx] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every stolen index was computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_land_in_index_order_at_any_width() {
        let serial = shard(17, 1, |i| i * i);
        for threads in [2, 4, 9, 32] {
            assert_eq!(shard(17, threads, |i| i * i), serial);
        }
        assert_eq!(shard(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(shard(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn every_index_is_computed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = shard(100, 7, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }
}
