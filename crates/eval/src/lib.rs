//! `regbal-eval` — the traffic-driven evaluation harness reproducing
//! the paper's throughput study (§9).
//!
//! The harness composes the rest of the workspace end to end:
//!
//! 1. [`scenario`] — named thread mixes, four threads per PU, built
//!    from the [`regbal_workloads`] kernels (the paper's S1–S3 plus a
//!    lean control and a two-PU pipeline);
//! 2. [`strategy`] — the allocation strategies under test behind one
//!    [`Strategy`] trait: the fixed `Nreg/Nthd` partition with Chaitin
//!    spilling (the stock-compiler baseline), the balancing allocator,
//!    balancing with last-resort spilling, balancing that packs the
//!    cheapest spills into a shared per-PU scratchpad
//!    ([`BalancedScratch`]), and the degradation ladder that falls
//!    back through those rungs instead of failing;
//! 3. [`report`] — the pipeline ([`run_eval`]) drives the compiled
//!    code on a multi-PU [`regbal_sim::Chip`] under packet traffic,
//!    sweeping the register-file size 32 → 128, and validates each run
//!    against a virtual-register reference (byte-identical output
//!    regions) before recording throughput. The (scenario × strategy
//!    × size) grid is sharded across a work-stealing worker pool
//!    ([`EvalConfig::workers`]) with per-(scenario, PU) whole-sweep
//!    allocation caching ([`cache`]) and chip-run dedup; cells land in
//!    positional slots, so the merged report is byte-identical at any
//!    worker count;
//! 4. [`json`] — a small self-contained JSON model (the build
//!    environment is offline, so no serde) used to serialise the
//!    [`EvalReport`] to `BENCH_EVAL.json` and to parse it back for
//!    validation ([`validate_json`]).
//!
//! ```no_run
//! use regbal_eval::{run_eval, validate_json, EvalConfig};
//!
//! let report = run_eval(&EvalConfig::smoke());
//! let text = report.to_json_string();
//! let doc = regbal_eval::json::parse(&text).unwrap();
//! println!("{}", validate_json(&doc).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod device;
pub mod json;
pub mod pool;
pub mod report;
pub mod scenario;
pub mod strategy;

pub use cache::{AllocCache, Lru, SimCache, SimKey};
pub use device::{
    compile_program, device_scenarios, occupancy_limit, reference_program, run_device,
    run_device_eval, run_device_scenario, DeviceEvalConfig, DeviceEvalReport, DeviceOutcome,
    DeviceProgram, DeviceScenario, DeviceScenarioReport,
};
pub use json::Json;
pub use report::{
    ladder_trail_json, run_eval, run_eval_on, thread_alloc_json, validate_json, CellReport,
    CellStatus, EvalConfig, EvalReport, EvalTiming, ScenarioReport, ThreadReport,
};
pub use scenario::{scenarios, Scenario, THREADS_PER_PU};
pub use strategy::{
    all_strategies, balanced_sanitizer, ladder_sanitizer, Balanced, BalancedScratch,
    BalancedSpill, CompileCtx, CompiledPu, FixedPartition, Ladder, PuLadderTrail, Strategy,
    ThreadCode,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE acceptance path: a smoke sweep covers ≥3 scenarios ×
    /// 3 strategies with checksum-validated runs, serialises, parses
    /// back and validates — including the paper's headline (balanced ≥
    /// fixed partition on a register-hungry mix at the widest file).
    #[test]
    fn smoke_eval_round_trips_and_validates() {
        let config = EvalConfig {
            packets: 4,
            nreg_sweep: vec![48, 128],
            ..EvalConfig::smoke()
        };
        let report = run_eval(&config);
        assert!(report.scenarios.len() >= 3);
        assert_eq!(report.strategies.len(), 5);

        let text = report.to_json_string();
        let doc = json::parse(&text).expect("report serialises to valid JSON");
        let summary = validate_json(&doc).expect("smoke report validates");
        assert!(summary.contains("validated"), "{summary}");
    }

    /// Every shipped strategy survives an instrumented sweep with zero
    /// clobber-class sanitizer reports, and the instrumented document
    /// carries (and validates with) the sanitizer counters.
    #[test]
    fn sanitized_sweep_is_clobber_free() {
        let config = EvalConfig {
            packets: 2,
            nreg_sweep: vec![48],
            sanitize: true,
            ..EvalConfig::smoke()
        };
        let report = run_eval(&config);
        for s in &report.scenarios {
            for c in s.cells.iter().filter(|c| c.status == CellStatus::Ok) {
                assert!(c.sanitized);
                assert_eq!(
                    c.sanitizer_violations, 0,
                    "{}: {}@{} reported clobbers",
                    s.name, c.strategy, c.nreg
                );
            }
        }
        let text = report.to_json_string();
        assert!(text.contains("\"sanitizer_violations\""));
        let doc = json::parse(&text).expect("instrumented report serialises");
        validate_json(&doc).expect("instrumented report validates");
    }

    /// At the tight end of the sweep the fixed partition must spill a
    /// hungry kernel while balancing fits move-free — so balanced
    /// throughput strictly wins on at least one hungry scenario.
    #[test]
    fn balanced_beats_fixed_partition_in_a_tight_file() {
        let config = EvalConfig {
            packets: 4,
            nreg_sweep: vec![48],
            ..EvalConfig::smoke()
        };
        let report = run_eval(&config);
        let mut strict_win = false;
        for s in report.scenarios.iter().filter(|s| s.register_hungry) {
            let (Some(fixed), Some(balanced)) =
                (s.cell("fixed-partition", 48), s.cell("balanced", 48))
            else {
                continue;
            };
            if fixed.status != CellStatus::Ok || balanced.status != CellStatus::Ok {
                continue;
            }
            assert!(balanced.checksum_ok, "{}: balanced output diverged", s.name);
            assert!(fixed.checksum_ok, "{}: fixed output diverged", s.name);
            if fixed.spills > 0 && balanced.throughput_ipkc > fixed.throughput_ipkc {
                strict_win = true;
            }
        }
        assert!(
            strict_win,
            "expected a hungry scenario where spilling costs the fixed partition throughput"
        );
    }
}
