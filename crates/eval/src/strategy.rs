//! Pluggable allocation strategies behind one [`Strategy`] trait.
//!
//! Each strategy takes the virtual-register thread programs of one PU
//! and a register-file size, and produces physical-register code plus
//! per-thread allocation statistics:
//!
//! * [`FixedPartition`] — the paper's stock-compiler baseline: the file
//!   is split into `Nreg / Nthd` equal private banks (32 each on the
//!   IXP1200's 128) and each thread is allocated independently with the
//!   Chaitin spiller.
//! * [`Balanced`] — the paper's contribution (Figs. 8/10 via
//!   [`regbal_core::allocate_threads`]): private/shared balancing with
//!   live-range splitting, no spilling; reports infeasibility when even
//!   maximal sharing cannot fit.
//! * [`BalancedSpill`] — the hybrid
//!   ([`regbal_core::allocate_threads_with_spill_at`]): balancing
//!   first, spilling the cheapest ranges of the most demanding thread
//!   only when sharing alone cannot fit.
//! * [`BalancedScratch`] — the hybrid with the scratchpad spill tier
//!   ([`regbal_core::allocate_threads_with_spill_scratch`]): the
//!   cheapest spills are packed into a small per-PU area of the fast
//!   shared scratchpad ([`regbal_ir::MemSpace::Spad`], ~4 cycles) and
//!   only the overflow pays full memory latency.
//! * [`Ladder`] — the graceful-degradation pipeline
//!   ([`regbal_core::allocate_ladder_with`]): never reports
//!   infeasibility while any fallback rung can still deliver; each
//!   forced transition is counted in [`CompiledPu::degraded`].

use crate::cache::AllocCache;
use regbal_core::chaitin::{self, ChaitinConfig};
use regbal_core::{
    allocate_ladder_seeded, allocate_ladder_with, allocate_threads,
    allocate_threads_with_spill_at, allocate_threads_with_spill_scratch, Degradation,
    EngineConfig, HybridAllocation, LadderAllocation, LadderConfig, LadderOutcome, LadderStep,
    MultiAllocation, RungProviders, RungRetry, ScratchParams, DEFAULT_SCRATCH_CAPACITY,
};
use regbal_ir::{Func, MemSpace};
use regbal_sim::SanitizerConfig;

/// Spill area of the fixed-partition baseline (per compiled thread,
/// `0x1000` bytes apart; below the per-PU balancing areas and above the
/// workload tables).
const FIXED_SPILL_BASE: i64 = 0x6_0000;

/// Base of the per-PU spill region shared by the balancing strategies.
/// The hybrid (`balanced-spill`) spills directly at a PU's base, and
/// the ladder packs its spilling rungs from that same base — so the
/// ladder's balanced-spill rung produces byte-identical code to the
/// `balanced-spill` strategy on the same PU, which is what lets the
/// sweep's allocation cache share verdicts between the two.
const PU_SPILL_BASE: i64 = 0x8_0000;

/// Bytes of spill region reserved per PU. A full ladder packs its
/// three spilling rungs into `0x3_0000` bytes (`0x1_0000` each), so two
/// PUs end at `0xE_0000`, below the 1 MiB SRAM ceiling.
const PU_SPILL_STRIDE: i64 = 0x3_0000;

/// The spill region base of one PU (shared by `balanced-spill` and the
/// ladder; see [`PU_SPILL_BASE`]).
fn pu_spill_base(pu: usize) -> i64 {
    PU_SPILL_BASE + (pu as i64) * PU_SPILL_STRIDE
}

/// Bytes of scratchpad reserved per PU. The default capacity of
/// [`DEFAULT_SCRATCH_CAPACITY`] words needs 64 bytes; the stride
/// leaves headroom and keeps the areas page-aligned within the 16 KiB
/// default scratchpad.
const PU_SPAD_STRIDE: i64 = 0x100;

/// The scratchpad spill area of one PU (shared by `balanced-scratch`
/// and the ladder's balanced-scratch rung, for the same verdict-sharing
/// reason as [`pu_spill_base`]).
fn pu_spad_base(pu: usize) -> i64 {
    (pu as i64) * PU_SPAD_STRIDE
}

/// The scratchpad tier of one PU's spilling strategies.
fn pu_scratch_params(pu: usize) -> ScratchParams {
    ScratchParams {
        base: pu_spad_base(pu),
        capacity: DEFAULT_SCRATCH_CAPACITY,
    }
}

/// Allocation statistics of one compiled thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCode {
    /// Private registers given to the thread (the bank size for the
    /// fixed partition, `PRᵢ` for the balancing strategies).
    pub pr: usize,
    /// Shared registers the thread uses (0 under the fixed partition).
    pub sr: usize,
    /// Live-range-splitting move instructions inserted.
    pub moves: usize,
    /// Live ranges spilled to memory.
    pub spills: usize,
}

/// The ladder trail of one PU's compilation: which rung settled, the
/// forced transitions that led there, and any same-rung budget
/// retries. Only the [`Ladder`] strategy records one; it feeds the
/// per-PU degradation telemetry of `BENCH_EVAL.json` and the CLI's
/// `regbal alloc --ladder --json` output.
#[derive(Debug, Clone, PartialEq)]
pub struct PuLadderTrail {
    /// The rung that finally delivered code.
    pub step: LadderStep,
    /// Forced transitions, in order (empty for a clean balanced run).
    pub degradations: Vec<Degradation>,
    /// Same-rung budget retries, in order.
    pub retries: Vec<RungRetry>,
}

impl From<&LadderAllocation> for PuLadderTrail {
    fn from(alloc: &LadderAllocation) -> PuLadderTrail {
        PuLadderTrail {
            step: alloc.step,
            degradations: alloc.degradations.clone(),
            retries: alloc.retries.clone(),
        }
    }
}

/// The physical-register programs of one PU plus their statistics.
#[derive(Debug, Clone)]
pub struct CompiledPu {
    /// One physical-register function per thread, in input order.
    pub funcs: Vec<Func>,
    /// Per-thread allocation statistics.
    pub threads: Vec<ThreadCode>,
    /// Physical registers the allocation consumes
    /// (`Σ PRᵢ + max SRᵢ`, or the whole partition for the baseline).
    pub registers_used: usize,
    /// The bank layout and fragment ownership the strategy promises,
    /// ready to arm the simulator's register-clobber sanitizer.
    pub sanitizer: SanitizerConfig,
    /// Fallback-ladder transitions taken to produce this code (always
    /// 0 for the single-rung strategies; the [`Ladder`] strategy
    /// reports its [`regbal_core::LadderAllocation::degraded_count`]).
    pub degraded: usize,
    /// The full per-PU ladder trail (settled rung, degradation
    /// reasons, retries) — `None` for the single-rung strategies.
    pub ladder: Option<PuLadderTrail>,
    /// How many of the PU's spill slots live in the fast scratchpad
    /// tier (a subset of [`CompiledPu::spills`]; zero for strategies
    /// without the tier).
    pub scratch_spills: usize,
}

impl CompiledPu {
    /// Total moves across the PU's threads.
    pub fn moves(&self) -> usize {
        self.threads.iter().map(|t| t.moves).sum()
    }

    /// Total spilled ranges across the PU's threads.
    pub fn spills(&self) -> usize {
        self.threads.iter().map(|t| t.spills).sum()
    }
}

/// The sanitizer configuration of a balancing allocation: the bank
/// layout straight from the [`MultiAllocation`] plus its
/// fragment-ownership tags. Public because the allocation server arms
/// the same layouts when it verifies served code under simulation.
pub fn balanced_sanitizer(alloc: &MultiAllocation) -> SanitizerConfig {
    let layout = alloc.layout();
    let mut cfg = SanitizerConfig::with_layout(
        (0..alloc.threads.len())
            .map(|t| layout.private_range(t))
            .collect(),
        Some(layout.shared_range()),
    );
    for (t, r, label) in alloc.fragment_tags() {
        cfg.fragments.insert((t, r), label);
    }
    cfg
}

/// The shared state a sweep hands to [`Strategy::compile_cached`]: the
/// allocation cache plus the scenario's index in the suite (the cache
/// key component that distinguishes identical `(pu, nreg)` pairs of
/// different scenarios).
pub struct CompileCtx<'a> {
    /// Allocation verdicts shared across the sweep's cells.
    pub cache: &'a AllocCache,
    /// Index of the scenario being compiled within its suite.
    pub scenario: usize,
}

/// An allocation strategy the harness can evaluate. `Sync` so the
/// sharded sweep can drive one strategy object from many workers
/// (every shipped strategy is a stateless unit struct).
pub trait Strategy: Sync {
    /// Stable identifier used in reports (`fixed-partition`,
    /// `balanced`, `balanced-spill`).
    fn name(&self) -> &'static str;

    /// Compiles the threads of processing unit `pu` against a register
    /// file of `nreg` registers.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the strategy cannot produce
    /// code at this file size (e.g. balancing alone is infeasible).
    fn compile(&self, funcs: &[Func], nreg: usize, pu: usize) -> Result<CompiledPu, String>;

    /// [`Strategy::compile`] with access to the sweep's shared
    /// allocation cache. The default ignores the cache; strategies
    /// whose searches overlap (balanced, balanced-spill, ladder)
    /// override it. Must return exactly what [`Strategy::compile`]
    /// would — caching is a speedup, never a behaviour change.
    ///
    /// # Errors
    ///
    /// As [`Strategy::compile`].
    fn compile_cached(
        &self,
        funcs: &[Func],
        nreg: usize,
        pu: usize,
        ctx: &CompileCtx<'_>,
    ) -> Result<CompiledPu, String> {
        let _ = ctx;
        self.compile(funcs, nreg, pu)
    }
}

/// The paper's baseline: fixed `Nreg / Nthd` private banks, Chaitin
/// spilling within each (32 registers per thread at `Nreg` = 128).
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedPartition;

/// The paper's balancing allocator (no spilling).
#[derive(Debug, Clone, Copy, Default)]
pub struct Balanced;

/// Balancing with last-resort spilling.
#[derive(Debug, Clone, Copy, Default)]
pub struct BalancedSpill;

impl Strategy for FixedPartition {
    fn name(&self) -> &'static str {
        "fixed-partition"
    }

    fn compile(&self, funcs: &[Func], nreg: usize, pu: usize) -> Result<CompiledPu, String> {
        let k = nreg / funcs.len();
        if k == 0 {
            return Err(format!(
                "{nreg} registers cannot be partitioned across {} threads",
                funcs.len()
            ));
        }
        let mut out = Vec::with_capacity(funcs.len());
        let mut threads = Vec::with_capacity(funcs.len());
        for (t, f) in funcs.iter().enumerate() {
            let cfg = ChaitinConfig {
                k,
                phys_base: (t * k) as u32,
                spill_space: MemSpace::Sram,
                spill_base: FIXED_SPILL_BASE
                    + ((pu * funcs.len() + t) as i64) * 0x1000,
            };
            let result = chaitin::allocate(f, &cfg)
                .map_err(|e| format!("thread {t} `{}`: {e}", f.name))?;
            threads.push(ThreadCode {
                pr: k,
                sr: 0,
                moves: 0,
                spills: result.spilled,
            });
            out.push(result.func);
        }
        Ok(CompiledPu {
            funcs: out,
            threads,
            registers_used: k * funcs.len(),
            sanitizer: SanitizerConfig::with_layout(
                (0..funcs.len())
                    .map(|t| (t * k) as u32..((t + 1) * k) as u32)
                    .collect(),
                None,
            ),
            degraded: 0,
            ladder: None,
            scratch_spills: 0,
        })
    }
}

/// Packages a balanced-engine allocation as a [`CompiledPu`].
fn balanced_pu(alloc: &MultiAllocation, funcs: &[Func]) -> CompiledPu {
    let threads = alloc
        .threads
        .iter()
        .map(|t| ThreadCode {
            pr: t.pr(),
            sr: t.sr(),
            moves: t.moves(),
            spills: 0,
        })
        .collect();
    CompiledPu {
        sanitizer: balanced_sanitizer(alloc),
        funcs: alloc.rewrite_funcs(funcs),
        threads,
        registers_used: alloc.total_registers(),
        degraded: 0,
        ladder: None,
        scratch_spills: 0,
    }
}

/// Packages a hybrid allocation as a [`CompiledPu`].
fn hybrid_pu(hybrid: &HybridAllocation) -> CompiledPu {
    let threads = hybrid
        .alloc
        .threads
        .iter()
        .zip(&hybrid.spills)
        .map(|(t, &spills)| ThreadCode {
            pr: t.pr(),
            sr: t.sr(),
            moves: t.moves(),
            spills,
        })
        .collect();
    CompiledPu {
        sanitizer: balanced_sanitizer(&hybrid.alloc),
        funcs: hybrid.rewrite(),
        threads,
        registers_used: hybrid.alloc.total_registers(),
        degraded: 0,
        ladder: None,
        scratch_spills: hybrid.scratch_spills.iter().sum(),
    }
}

impl Strategy for Balanced {
    fn name(&self) -> &'static str {
        "balanced"
    }

    fn compile(&self, funcs: &[Func], nreg: usize, _pu: usize) -> Result<CompiledPu, String> {
        let alloc = allocate_threads(funcs, nreg).map_err(|e| e.to_string())?;
        Ok(balanced_pu(&alloc, funcs))
    }

    fn compile_cached(
        &self,
        funcs: &[Func],
        nreg: usize,
        pu: usize,
        ctx: &CompileCtx<'_>,
    ) -> Result<CompiledPu, String> {
        let alloc = ctx
            .cache
            .balanced((ctx.scenario, pu, nreg), funcs)
            .map_err(|e| e.to_string())?;
        Ok(balanced_pu(&alloc, funcs))
    }
}

impl Strategy for BalancedSpill {
    fn name(&self) -> &'static str {
        "balanced-spill"
    }

    fn compile(&self, funcs: &[Func], nreg: usize, pu: usize) -> Result<CompiledPu, String> {
        let hybrid = allocate_threads_with_spill_at(funcs, nreg, pu_spill_base(pu))
            .map_err(|e| e.to_string())?;
        Ok(hybrid_pu(&hybrid))
    }

    fn compile_cached(
        &self,
        funcs: &[Func],
        nreg: usize,
        pu: usize,
        ctx: &CompileCtx<'_>,
    ) -> Result<CompiledPu, String> {
        let hybrid = ctx
            .cache
            .hybrid((ctx.scenario, pu, nreg), funcs, pu_spill_base(pu))
            .map_err(|e| e.to_string())?;
        Ok(hybrid_pu(&hybrid))
    }
}

/// Balancing with the scratchpad spill tier: the cheapest spills land
/// in the PU's fast scratchpad area, the overflow in memory.
#[derive(Debug, Clone, Copy, Default)]
pub struct BalancedScratch;

impl Strategy for BalancedScratch {
    fn name(&self) -> &'static str {
        "balanced-scratch"
    }

    fn compile(&self, funcs: &[Func], nreg: usize, pu: usize) -> Result<CompiledPu, String> {
        let hybrid = allocate_threads_with_spill_scratch(
            funcs,
            nreg,
            pu_spill_base(pu),
            EngineConfig::default(),
            None,
            &pu_scratch_params(pu),
            None,
        )
        .map_err(|e| e.to_string())?;
        Ok(hybrid_pu(&hybrid))
    }

    fn compile_cached(
        &self,
        funcs: &[Func],
        nreg: usize,
        pu: usize,
        ctx: &CompileCtx<'_>,
    ) -> Result<CompiledPu, String> {
        let hybrid = ctx
            .cache
            .scratch(
                (ctx.scenario, pu, nreg),
                funcs,
                pu_spill_base(pu),
                pu_scratch_params(pu),
            )
            .map_err(|e| e.to_string())?;
        Ok(hybrid_pu(&hybrid))
    }
}

/// The graceful-degradation pipeline: balanced, then the cheapest
/// feasible spilling rung (cost-aware), down to spill-all.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ladder;

/// The ladder configuration of one PU: default engine, spill region
/// packed from the PU's shared base (see [`PU_SPILL_BASE`]), scratch
/// tier in the PU's scratchpad area — so the ladder's balanced-scratch
/// rung produces byte-identical code to the `balanced-scratch`
/// strategy on the same PU, which is what lets the sweep's allocation
/// cache share verdicts between the two.
fn ladder_config(pu: usize) -> LadderConfig {
    let scratch = pu_scratch_params(pu);
    LadderConfig {
        engine: EngineConfig::default(),
        spill_space: MemSpace::Sram,
        spill_base: pu_spill_base(pu),
        scratch_base: scratch.base,
        scratch_capacity: scratch.capacity,
    }
}

/// The sanitizer configuration of a settled ladder allocation: the
/// balanced layout when any balancing rung delivered, the equal-bank
/// partition when the ladder fell to `fixed-partition`. Public for the
/// same reason as [`balanced_sanitizer`].
pub fn ladder_sanitizer(alloc: &LadderAllocation, nthreads: usize) -> SanitizerConfig {
    match (&alloc.outcome, alloc.balanced_alloc()) {
        (_, Some(balanced)) => balanced_sanitizer(balanced),
        (LadderOutcome::Partitioned { k, .. }, None) => SanitizerConfig::with_layout(
            (0..nthreads)
                .map(|t| (t * k) as u32..((t + 1) * k) as u32)
                .collect(),
            None,
        ),
        // `balanced_alloc` covers every non-partitioned outcome.
        (_, None) => SanitizerConfig::default(),
    }
}

/// Packages a settled ladder allocation as a [`CompiledPu`].
fn ladder_pu(alloc: &LadderAllocation, funcs: &[Func]) -> Result<CompiledPu, String> {
    let threads = alloc
        .thread_summaries()
        .iter()
        .map(|s| ThreadCode {
            pr: s.pr,
            sr: s.sr,
            moves: s.moves,
            spills: s.spills,
        })
        .collect();
    let sanitizer = ladder_sanitizer(alloc, funcs.len());
    Ok(CompiledPu {
        funcs: alloc.rewrite().map_err(|e| e.to_string())?,
        registers_used: alloc.registers_used(),
        threads,
        sanitizer,
        degraded: alloc.degraded_count(),
        ladder: Some(PuLadderTrail::from(alloc)),
        scratch_spills: alloc.scratch_spills().iter().sum(),
    })
}

impl Strategy for Ladder {
    fn name(&self) -> &'static str {
        "ladder"
    }

    fn compile(&self, funcs: &[Func], nreg: usize, pu: usize) -> Result<CompiledPu, String> {
        let alloc = allocate_ladder_with(funcs, nreg, &ladder_config(pu))
            .map_err(|e| e.to_string())?;
        ladder_pu(&alloc, funcs)
    }

    fn compile_cached(
        &self,
        funcs: &[Func],
        nreg: usize,
        pu: usize,
        ctx: &CompileCtx<'_>,
    ) -> Result<CompiledPu, String> {
        let key = (ctx.scenario, pu, nreg);
        let providers = RungProviders {
            balanced: Some(Box::new(move || ctx.cache.balanced(key, funcs))),
            balanced_scratch: Some(Box::new(move || {
                ctx.cache
                    .scratch(key, funcs, pu_spill_base(pu), pu_scratch_params(pu))
            })),
            balanced_spill: Some(Box::new(move || {
                ctx.cache.hybrid(key, funcs, pu_spill_base(pu))
            })),
        };
        let alloc = allocate_ladder_seeded(funcs, nreg, &ladder_config(pu), providers)
            .map_err(|e| e.to_string())?;
        ladder_pu(&alloc, funcs)
    }
}

/// The strategies of the study, in report order.
pub fn all_strategies() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(FixedPartition),
        Box::new(Balanced),
        Box::new(BalancedSpill),
        Box::new(BalancedScratch),
        Box::new(Ladder),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_workloads::{Kernel, Workload};

    fn pu_funcs() -> Vec<Func> {
        [Kernel::Md5, Kernel::Md5, Kernel::Fir2dim, Kernel::Fir2dim]
            .iter()
            .enumerate()
            .map(|(slot, &k)| Workload::new(k, slot, 4).func)
            .collect()
    }

    #[test]
    fn fixed_partition_spills_hungry_kernels_in_a_tight_file() {
        let funcs = pu_funcs();
        // 12 registers per thread: md5 (RegPmax 14) must spill.
        let c = FixedPartition.compile(&funcs, 48, 0).unwrap();
        assert!(c.spills() > 0, "md5 must spill at 12 regs/thread");
        assert_eq!(c.moves(), 0);
        assert_eq!(c.registers_used, 48);
        // 32 per thread: nothing spills.
        let wide = FixedPartition.compile(&funcs, 128, 0).unwrap();
        assert_eq!(wide.spills(), 0);
    }

    #[test]
    fn balanced_fits_where_the_partition_spills() {
        let funcs = pu_funcs();
        let c = Balanced.compile(&funcs, 48, 0).unwrap();
        assert_eq!(c.spills(), 0);
        assert!(c.registers_used <= 48);
        for f in &c.funcs {
            f.validate().unwrap();
        }
    }

    #[test]
    fn balanced_reports_infeasibility_and_hybrid_rescues_it() {
        let funcs = pu_funcs();
        let err = Balanced.compile(&funcs, 32, 0).unwrap_err();
        assert!(err.contains("cannot fit"), "{err}");
        let c = BalancedSpill.compile(&funcs, 32, 0).unwrap();
        assert!(c.spills() > 0);
        assert!(c.registers_used <= 32);
    }

    #[test]
    fn compiled_sanitizer_configs_describe_the_banks() {
        let funcs = pu_funcs();
        let fixed = FixedPartition.compile(&funcs, 128, 0).unwrap();
        assert_eq!(fixed.sanitizer.private_ranges.len(), 4);
        assert_eq!(fixed.sanitizer.private_ranges[1], 32..64);
        assert!(fixed.sanitizer.shared_range.is_none());
        assert!(fixed.sanitizer.fragments.is_empty());

        let balanced = Balanced.compile(&funcs, 48, 0).unwrap();
        assert_eq!(balanced.sanitizer.private_ranges.len(), 4);
        assert!(balanced.sanitizer.shared_range.is_some());
        assert!(
            !balanced.sanitizer.fragments.is_empty(),
            "fragment tags must ride along for diagnostics"
        );
    }

    #[test]
    fn ladder_is_clean_where_balanced_fits() {
        let funcs = pu_funcs();
        let ladder = Ladder.compile(&funcs, 48, 0).unwrap();
        assert_eq!(ladder.degraded, 0, "no fallback needed at 48");
        let balanced = Balanced.compile(&funcs, 48, 0).unwrap();
        assert_eq!(ladder.threads, balanced.threads, "top rung IS balanced");
        assert_eq!(ladder.funcs, balanced.funcs);
    }

    #[test]
    fn ladder_degrades_instead_of_failing() {
        let funcs = pu_funcs();
        // Balanced alone is infeasible at 32 — the ladder reports a
        // degradation, never an error.
        assert!(Balanced.compile(&funcs, 32, 0).is_err());
        let c = Ladder.compile(&funcs, 32, 0).unwrap();
        assert!(c.degraded >= 1, "must record the forced transition");
        assert!(c.spills() > 0);
        assert!(c.registers_used <= 32);
        for f in &c.funcs {
            f.validate().unwrap();
        }
    }

    #[test]
    fn ladder_spill_areas_differ_per_pu() {
        let funcs = pu_funcs();
        let a = Ladder.compile(&funcs, 32, 0).unwrap();
        let b = Ladder.compile(&funcs, 32, 1).unwrap();
        assert_eq!(a.degraded, b.degraded);
        assert_ne!(a.funcs, b.funcs, "spill addresses must differ across PUs");
    }

    #[test]
    fn all_strategies_include_the_ladder() {
        let names: Vec<&str> = all_strategies().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "fixed-partition",
                "balanced",
                "balanced-spill",
                "balanced-scratch",
                "ladder"
            ]
        );
    }

    #[test]
    fn balanced_scratch_packs_the_cheapest_spills_into_the_scratchpad() {
        let funcs = pu_funcs();
        // Balancing alone is infeasible at 32: both hybrids spill the
        // same ranges, but the scratch tier serves the cheapest from
        // the fast store.
        let spill = BalancedSpill.compile(&funcs, 32, 0).unwrap();
        let scratch = BalancedScratch.compile(&funcs, 32, 0).unwrap();
        assert_eq!(scratch.spills(), spill.spills(), "same eviction decisions");
        assert!(scratch.scratch_spills > 0, "some slots must go fast");
        assert!(scratch.scratch_spills <= scratch.spills());
        assert_eq!(spill.scratch_spills, 0);
        assert!(scratch.registers_used <= 32);
        for f in &scratch.funcs {
            f.validate().unwrap();
        }
        // Scratchpad areas differ per PU, like the memory spill areas.
        let other = BalancedScratch.compile(&funcs, 32, 1).unwrap();
        assert_ne!(scratch.funcs, other.funcs);
    }

    #[test]
    fn hybrid_spill_areas_differ_per_pu() {
        let funcs = pu_funcs();
        let a = BalancedSpill.compile(&funcs, 32, 0).unwrap();
        let b = BalancedSpill.compile(&funcs, 32, 1).unwrap();
        assert_eq!(a.spills(), b.spills());
        assert_ne!(a.funcs, b.funcs, "spill addresses must differ across PUs");
    }
}
