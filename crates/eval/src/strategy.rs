//! Pluggable allocation strategies behind one [`Strategy`] trait.
//!
//! Each strategy takes the virtual-register thread programs of one PU
//! and a register-file size, and produces physical-register code plus
//! per-thread allocation statistics:
//!
//! * [`FixedPartition`] — the paper's stock-compiler baseline: the file
//!   is split into `Nreg / Nthd` equal private banks (32 each on the
//!   IXP1200's 128) and each thread is allocated independently with the
//!   Chaitin spiller.
//! * [`Balanced`] — the paper's contribution (Figs. 8/10 via
//!   [`regbal_core::allocate_threads`]): private/shared balancing with
//!   live-range splitting, no spilling; reports infeasibility when even
//!   maximal sharing cannot fit.
//! * [`BalancedSpill`] — the hybrid
//!   ([`regbal_core::allocate_threads_with_spill_at`]): balancing
//!   first, spilling the cheapest ranges of the most demanding thread
//!   only when sharing alone cannot fit.
//! * [`Ladder`] — the graceful-degradation pipeline
//!   ([`regbal_core::allocate_ladder_with`]): never reports
//!   infeasibility while any fallback rung can still deliver; each
//!   forced transition is counted in [`CompiledPu::degraded`].

use regbal_core::chaitin::{self, ChaitinConfig};
use regbal_core::{
    allocate_ladder_with, allocate_threads, allocate_threads_with_spill_at, EngineConfig,
    LadderConfig, LadderOutcome, MultiAllocation,
};
use regbal_ir::{Func, MemSpace};
use regbal_sim::SanitizerConfig;

/// Spill area of the fixed-partition baseline (per compiled thread,
/// `0x1000` bytes apart; below the hybrid area and above the workload
/// tables).
const FIXED_SPILL_BASE: i64 = 0x6_0000;

/// Spill area of the hybrid strategy, per PU (`allocate_threads_with_spill_at`
/// spaces threads `0x1000` apart within it).
const HYBRID_SPILL_BASE: i64 = 0x8_0000;

/// Bytes of spill area reserved per PU for the hybrid strategy.
const HYBRID_SPILL_STRIDE: i64 = 0x8000;

/// Spill region of the ladder strategy, per PU. A full ladder packs
/// its three spilling rungs into `0x3_0000` bytes, so two PUs fit
/// below the 1 MiB SRAM ceiling.
const LADDER_SPILL_BASE: i64 = 0xA_0000;

/// Bytes of spill region reserved per PU for the ladder strategy.
const LADDER_SPILL_STRIDE: i64 = 0x3_0000;

/// Allocation statistics of one compiled thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCode {
    /// Private registers given to the thread (the bank size for the
    /// fixed partition, `PRᵢ` for the balancing strategies).
    pub pr: usize,
    /// Shared registers the thread uses (0 under the fixed partition).
    pub sr: usize,
    /// Live-range-splitting move instructions inserted.
    pub moves: usize,
    /// Live ranges spilled to memory.
    pub spills: usize,
}

/// The physical-register programs of one PU plus their statistics.
#[derive(Debug, Clone)]
pub struct CompiledPu {
    /// One physical-register function per thread, in input order.
    pub funcs: Vec<Func>,
    /// Per-thread allocation statistics.
    pub threads: Vec<ThreadCode>,
    /// Physical registers the allocation consumes
    /// (`Σ PRᵢ + max SRᵢ`, or the whole partition for the baseline).
    pub registers_used: usize,
    /// The bank layout and fragment ownership the strategy promises,
    /// ready to arm the simulator's register-clobber sanitizer.
    pub sanitizer: SanitizerConfig,
    /// Fallback-ladder transitions taken to produce this code (always
    /// 0 for the single-rung strategies; the [`Ladder`] strategy
    /// reports its [`regbal_core::LadderAllocation::degraded_count`]).
    pub degraded: usize,
}

impl CompiledPu {
    /// Total moves across the PU's threads.
    pub fn moves(&self) -> usize {
        self.threads.iter().map(|t| t.moves).sum()
    }

    /// Total spilled ranges across the PU's threads.
    pub fn spills(&self) -> usize {
        self.threads.iter().map(|t| t.spills).sum()
    }
}

/// The sanitizer configuration of a balancing allocation: the bank
/// layout straight from the [`MultiAllocation`] plus its
/// fragment-ownership tags.
fn balanced_sanitizer(alloc: &MultiAllocation) -> SanitizerConfig {
    let layout = alloc.layout();
    let mut cfg = SanitizerConfig::with_layout(
        (0..alloc.threads.len())
            .map(|t| layout.private_range(t))
            .collect(),
        Some(layout.shared_range()),
    );
    for (t, r, label) in alloc.fragment_tags() {
        cfg.fragments.insert((t, r), label);
    }
    cfg
}

/// An allocation strategy the harness can evaluate.
pub trait Strategy {
    /// Stable identifier used in reports (`fixed-partition`,
    /// `balanced`, `balanced-spill`).
    fn name(&self) -> &'static str;

    /// Compiles the threads of processing unit `pu` against a register
    /// file of `nreg` registers.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the strategy cannot produce
    /// code at this file size (e.g. balancing alone is infeasible).
    fn compile(&self, funcs: &[Func], nreg: usize, pu: usize) -> Result<CompiledPu, String>;
}

/// The paper's baseline: fixed `Nreg / Nthd` private banks, Chaitin
/// spilling within each (32 registers per thread at `Nreg` = 128).
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedPartition;

/// The paper's balancing allocator (no spilling).
#[derive(Debug, Clone, Copy, Default)]
pub struct Balanced;

/// Balancing with last-resort spilling.
#[derive(Debug, Clone, Copy, Default)]
pub struct BalancedSpill;

impl Strategy for FixedPartition {
    fn name(&self) -> &'static str {
        "fixed-partition"
    }

    fn compile(&self, funcs: &[Func], nreg: usize, pu: usize) -> Result<CompiledPu, String> {
        let k = nreg / funcs.len();
        if k == 0 {
            return Err(format!(
                "{nreg} registers cannot be partitioned across {} threads",
                funcs.len()
            ));
        }
        let mut out = Vec::with_capacity(funcs.len());
        let mut threads = Vec::with_capacity(funcs.len());
        for (t, f) in funcs.iter().enumerate() {
            let cfg = ChaitinConfig {
                k,
                phys_base: (t * k) as u32,
                spill_space: MemSpace::Sram,
                spill_base: FIXED_SPILL_BASE
                    + ((pu * funcs.len() + t) as i64) * 0x1000,
            };
            let result = chaitin::allocate(f, &cfg)
                .map_err(|e| format!("thread {t} `{}`: {e}", f.name))?;
            threads.push(ThreadCode {
                pr: k,
                sr: 0,
                moves: 0,
                spills: result.spilled,
            });
            out.push(result.func);
        }
        Ok(CompiledPu {
            funcs: out,
            threads,
            registers_used: k * funcs.len(),
            sanitizer: SanitizerConfig::with_layout(
                (0..funcs.len())
                    .map(|t| (t * k) as u32..((t + 1) * k) as u32)
                    .collect(),
                None,
            ),
            degraded: 0,
        })
    }
}

impl Strategy for Balanced {
    fn name(&self) -> &'static str {
        "balanced"
    }

    fn compile(&self, funcs: &[Func], nreg: usize, _pu: usize) -> Result<CompiledPu, String> {
        let alloc = allocate_threads(funcs, nreg).map_err(|e| e.to_string())?;
        let threads = alloc
            .threads
            .iter()
            .map(|t| ThreadCode {
                pr: t.pr(),
                sr: t.sr(),
                moves: t.moves(),
                spills: 0,
            })
            .collect();
        Ok(CompiledPu {
            sanitizer: balanced_sanitizer(&alloc),
            funcs: alloc.rewrite_funcs(funcs),
            threads,
            registers_used: alloc.total_registers(),
            degraded: 0,
        })
    }
}

impl Strategy for BalancedSpill {
    fn name(&self) -> &'static str {
        "balanced-spill"
    }

    fn compile(&self, funcs: &[Func], nreg: usize, pu: usize) -> Result<CompiledPu, String> {
        let base = HYBRID_SPILL_BASE + (pu as i64) * HYBRID_SPILL_STRIDE;
        let hybrid =
            allocate_threads_with_spill_at(funcs, nreg, base).map_err(|e| e.to_string())?;
        let threads = hybrid
            .alloc
            .threads
            .iter()
            .zip(&hybrid.spills)
            .map(|(t, &spills)| ThreadCode {
                pr: t.pr(),
                sr: t.sr(),
                moves: t.moves(),
                spills,
            })
            .collect();
        Ok(CompiledPu {
            sanitizer: balanced_sanitizer(&hybrid.alloc),
            funcs: hybrid.rewrite(),
            threads,
            registers_used: hybrid.alloc.total_registers(),
            degraded: 0,
        })
    }
}

/// The graceful-degradation pipeline: balanced, then balanced-spill,
/// then fixed-partition, then spill-all.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ladder;

impl Strategy for Ladder {
    fn name(&self) -> &'static str {
        "ladder"
    }

    fn compile(&self, funcs: &[Func], nreg: usize, pu: usize) -> Result<CompiledPu, String> {
        let config = LadderConfig {
            engine: EngineConfig::default(),
            spill_space: MemSpace::Sram,
            spill_base: LADDER_SPILL_BASE + (pu as i64) * LADDER_SPILL_STRIDE,
        };
        let alloc = allocate_ladder_with(funcs, nreg, &config).map_err(|e| e.to_string())?;
        let threads = alloc
            .thread_summaries()
            .iter()
            .map(|s| ThreadCode {
                pr: s.pr,
                sr: s.sr,
                moves: s.moves,
                spills: s.spills,
            })
            .collect();
        let sanitizer = match (&alloc.outcome, alloc.balanced_alloc()) {
            (_, Some(balanced)) => balanced_sanitizer(balanced),
            (LadderOutcome::Partitioned { k, .. }, None) => SanitizerConfig::with_layout(
                (0..funcs.len())
                    .map(|t| (t * k) as u32..((t + 1) * k) as u32)
                    .collect(),
                None,
            ),
            // `balanced_alloc` covers every non-partitioned outcome.
            (_, None) => SanitizerConfig::default(),
        };
        Ok(CompiledPu {
            funcs: alloc.rewrite().map_err(|e| e.to_string())?,
            registers_used: alloc.registers_used(),
            threads,
            sanitizer,
            degraded: alloc.degraded_count(),
        })
    }
}

/// The strategies of the study, in report order.
pub fn all_strategies() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(FixedPartition),
        Box::new(Balanced),
        Box::new(BalancedSpill),
        Box::new(Ladder),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_workloads::{Kernel, Workload};

    fn pu_funcs() -> Vec<Func> {
        [Kernel::Md5, Kernel::Md5, Kernel::Fir2dim, Kernel::Fir2dim]
            .iter()
            .enumerate()
            .map(|(slot, &k)| Workload::new(k, slot, 4).func)
            .collect()
    }

    #[test]
    fn fixed_partition_spills_hungry_kernels_in_a_tight_file() {
        let funcs = pu_funcs();
        // 12 registers per thread: md5 (RegPmax 14) must spill.
        let c = FixedPartition.compile(&funcs, 48, 0).unwrap();
        assert!(c.spills() > 0, "md5 must spill at 12 regs/thread");
        assert_eq!(c.moves(), 0);
        assert_eq!(c.registers_used, 48);
        // 32 per thread: nothing spills.
        let wide = FixedPartition.compile(&funcs, 128, 0).unwrap();
        assert_eq!(wide.spills(), 0);
    }

    #[test]
    fn balanced_fits_where_the_partition_spills() {
        let funcs = pu_funcs();
        let c = Balanced.compile(&funcs, 48, 0).unwrap();
        assert_eq!(c.spills(), 0);
        assert!(c.registers_used <= 48);
        for f in &c.funcs {
            f.validate().unwrap();
        }
    }

    #[test]
    fn balanced_reports_infeasibility_and_hybrid_rescues_it() {
        let funcs = pu_funcs();
        let err = Balanced.compile(&funcs, 32, 0).unwrap_err();
        assert!(err.contains("cannot fit"), "{err}");
        let c = BalancedSpill.compile(&funcs, 32, 0).unwrap();
        assert!(c.spills() > 0);
        assert!(c.registers_used <= 32);
    }

    #[test]
    fn compiled_sanitizer_configs_describe_the_banks() {
        let funcs = pu_funcs();
        let fixed = FixedPartition.compile(&funcs, 128, 0).unwrap();
        assert_eq!(fixed.sanitizer.private_ranges.len(), 4);
        assert_eq!(fixed.sanitizer.private_ranges[1], 32..64);
        assert!(fixed.sanitizer.shared_range.is_none());
        assert!(fixed.sanitizer.fragments.is_empty());

        let balanced = Balanced.compile(&funcs, 48, 0).unwrap();
        assert_eq!(balanced.sanitizer.private_ranges.len(), 4);
        assert!(balanced.sanitizer.shared_range.is_some());
        assert!(
            !balanced.sanitizer.fragments.is_empty(),
            "fragment tags must ride along for diagnostics"
        );
    }

    #[test]
    fn ladder_is_clean_where_balanced_fits() {
        let funcs = pu_funcs();
        let ladder = Ladder.compile(&funcs, 48, 0).unwrap();
        assert_eq!(ladder.degraded, 0, "no fallback needed at 48");
        let balanced = Balanced.compile(&funcs, 48, 0).unwrap();
        assert_eq!(ladder.threads, balanced.threads, "top rung IS balanced");
        assert_eq!(ladder.funcs, balanced.funcs);
    }

    #[test]
    fn ladder_degrades_instead_of_failing() {
        let funcs = pu_funcs();
        // Balanced alone is infeasible at 32 — the ladder reports a
        // degradation, never an error.
        assert!(Balanced.compile(&funcs, 32, 0).is_err());
        let c = Ladder.compile(&funcs, 32, 0).unwrap();
        assert!(c.degraded >= 1, "must record the forced transition");
        assert!(c.spills() > 0);
        assert!(c.registers_used <= 32);
        for f in &c.funcs {
            f.validate().unwrap();
        }
    }

    #[test]
    fn ladder_spill_areas_differ_per_pu() {
        let funcs = pu_funcs();
        let a = Ladder.compile(&funcs, 32, 0).unwrap();
        let b = Ladder.compile(&funcs, 32, 1).unwrap();
        assert_eq!(a.degraded, b.degraded);
        assert_ne!(a.funcs, b.funcs, "spill addresses must differ across PUs");
    }

    #[test]
    fn all_strategies_include_the_ladder() {
        let names: Vec<&str> = all_strategies().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["fixed-partition", "balanced", "balanced-spill", "ladder"]
        );
    }

    #[test]
    fn hybrid_spill_areas_differ_per_pu() {
        let funcs = pu_funcs();
        let a = BalancedSpill.compile(&funcs, 32, 0).unwrap();
        let b = BalancedSpill.compile(&funcs, 32, 1).unwrap();
        assert_eq!(a.spills(), b.spills());
        assert_ne!(a.funcs, b.funcs, "spill addresses must differ across PUs");
    }
}
