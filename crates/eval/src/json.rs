//! A minimal JSON value type with an emitter and a strict parser.
//!
//! The build environment is offline (no `serde`), so the harness
//! carries its own small JSON support: ordered objects (so report files
//! diff cleanly), pretty printing, and a recursive-descent parser that
//! is strict enough for CI to read `BENCH_EVAL.json` back and validate
//! it. The same value type backs `regbal alloc --json`, so every
//! machine-readable output of the toolchain shares one schema
//! vocabulary.

use std::fmt::Write as _;

/// A JSON document value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also used for non-finite floats, which JSON cannot carry).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with preserved key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An integer value.
    pub fn int(x: i64) -> Json {
        Json::Num(x as f64)
    }

    /// An unsigned value (u64 counters; precision capped at 2^53,
    /// far above any cycle count the simulator produces in one run).
    pub fn uint(x: u64) -> Json {
        Json::Num(x as f64)
    }

    /// A float value; non-finite becomes `null`.
    pub fn float(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(x)
        } else {
            Json::Null
        }
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|x| *x >= 0.0).map(|x| x as u64)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialises onto a single line with no trailing newline — the
    /// framing the line-delimited `regbal-serve/1` protocol needs
    /// (one document per line, `\n`-terminated by the transport).
    /// Parses back to the same value as [`Json::pretty`].
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => out.push_str(&fmt_num(*x)),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => out.push_str(&fmt_num(*x)),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    pad(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }
}

fn fmt_num(x: f64) -> String {
    if !x.is_finite() {
        return "null".into();
    }
    if x == x.trunc() && x.abs() < 9.0e15 {
        format!("{}", x as i64)
    } else {
        // Rust's Debug for f64 is the shortest round-trip form.
        format!("{x:?}")
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset on malformed input or
/// trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\r\n".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(format!("bad \\u escape at byte {start}"))?;
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the whole span up to the next quote or escape
                    // in one go (the input is a `&str`, so it is valid
                    // UTF-8 and `"`/`\` bytes never occur mid-character).
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] != b'"' && self.bytes[end] != b'\\'
                    {
                        end += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[self.pos..end])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b"+-.eE".contains(&b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_report_shaped_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("S1: md5 \"hot\" mix")),
            ("nreg".into(), Json::Arr(vec![Json::int(32), Json::int(128)])),
            ("throughput".into(), Json::float(1.25)),
            ("cpi".into(), Json::float(f64::INFINITY)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let text = doc.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back.get("name").unwrap().as_str().unwrap(), "S1: md5 \"hot\" mix");
        assert_eq!(back.get("nreg").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(back.get("throughput").unwrap().as_f64(), Some(1.25));
        assert_eq!(back.get("cpi"), Some(&Json::Null), "infinity maps to null");
        assert_eq!(back.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(back.get("empty").unwrap().as_arr(), Some(&[][..]));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::uint(12_345_678).pretty().trim(), "12345678");
        assert_eq!(Json::float(0.5).pretty().trim(), "0.5");
    }

    #[test]
    fn compact_is_single_line_and_round_trips() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("regbal-serve/1")),
            ("items".into(), Json::Arr(vec![Json::int(1), Json::Null])),
            ("nested".into(), Json::Obj(vec![("s".into(), Json::str("a\nb"))])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let line = doc.compact();
        assert!(!line.contains('\n'), "compact output must be one line: {line}");
        assert_eq!(parse(&line).unwrap(), doc);
        assert_eq!(parse(&line).unwrap(), parse(&doc.pretty()).unwrap());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escapes_survive() {
        let doc = Json::str("line\nquote\"tab\tbs\\end\u{1}");
        let back = parse(&doc.pretty()).unwrap();
        assert_eq!(back, doc);
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn nested_structures_parse() {
        let text = r#"{"a": [{"b": 1e3}, {"c": -0.25}], "d": {"e": []}}"#;
        let doc = parse(text).unwrap();
        let a = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].get("b").unwrap().as_f64(), Some(1000.0));
        assert_eq!(a[1].get("c").unwrap().as_f64(), Some(-0.25));
    }
}
